#!/usr/bin/env python3
"""The deployment story: everything an operator would actually do.

F²Tree's pitch (§I, Table I) is that it needs **no software changes** —
only cabling and configuration.  This example prints the complete
deployment artifact for the 4-port testbed: the cables to unplug, the
cables to add, and the static-route lines per switch, then verifies the
result against Table I's capacity accounting.

Run:  python examples/rewiring_work_order.py
"""

from repro.core.backup_routes import backup_routes_for
from repro.core.f2tree import rewire_fat_tree_prototype
from repro.core.scalability import (
    immediate_backup_links,
    render_table_one,
)
from repro.topology.fattree import fat_tree
from repro.topology.graph import NodeKind


def main() -> None:
    fat = fat_tree(4)
    f2, plan = rewire_fat_tree_prototype(fat)

    print("=== WORK ORDER: fat-tree-4 -> f2tree-prototype-4 ===\n")
    print(f"Step 1 - unplug {len(plan.removed)} cables:")
    for a, b in plan.removed:
        print(f"  - {a} <-> {b}")
    print(f"\nStep 2 - add {len(plan.added)} cables (the across rings):")
    for a, b in plan.added:
        print(f"  + {a} <-> {b}")
    print(f"\nStep 3 - racks no longer supported: {plan.unsupported_tors}")

    print("\nStep 4 - add static routes (the complete config change):")
    for switch in f2.nodes_of_kind(NodeKind.AGG, NodeKind.CORE):
        routes = backup_routes_for(f2, switch.name)
        for route in routes:
            print(f"  {switch.name}: {route}")

    print("\n=== what this buys (Table I / §II-A) ===\n")
    fat_links = immediate_backup_links(4, "fat-tree")
    f2_links = immediate_backup_links(4, "f2tree")
    print(f"immediate backup links per downward link: "
          f"{fat_links['downward']} -> {f2_links['downward']}")
    print(f"immediate backup links per upward link:   "
          f"{fat_links['upward']} -> {f2_links['upward']}\n")
    print(render_table_one(4))


if __name__ == "__main__":
    main()
