#!/usr/bin/env python3
"""F²Tree beyond the fat tree: Leaf-Spine and VL2 (§V, Fig 7).

The scheme — ring the layer whose downward links lack redundancy, add two
static backup routes per ringed switch — is topology-agnostic.  This demo
applies it to a 2-layer Leaf-Spine fabric and to VL2, and measures
recovery from a downward rack-link failure on each.

Run:  python examples/adapt_other_fabrics.py   (~30 s)
"""

from repro.core.backup_routes import backup_routes_for
from repro.experiments.other_topologies import figure_seven_topology
from repro.experiments.recovery import run_recovery
from repro.sim.units import to_milliseconds
from repro.topology.graph import NodeKind


def main() -> None:
    # show the entire configuration change for one spine switch
    f2ls = figure_seven_topology("f2-leaf-spine")
    spine = f2ls.nodes_of_kind(NodeKind.SPINE)[0].name
    print(f"F2 adaptation of {f2ls.name}: configuration on {spine}:")
    for route in backup_routes_for(f2ls, spine):
        print(f"  {route}")
    print()

    print(f"{'fabric':<16} {'outage (ms)':>12} {'pkts lost':>10}  mechanism")
    for kind in ("leaf-spine", "f2-leaf-spine", "vl2", "f2-vl2"):
        result = run_recovery(figure_seven_topology(kind), "udp")
        mechanism = (
            "local fast reroute (across ring)"
            if result.path_during and result.path_during[1]
            else "control-plane reconvergence"
        )
        print(
            f"{kind:<16} {to_milliseconds(result.connectivity_loss):>12.1f} "
            f"{result.packets_lost:>10}  {mechanism}"
        )
    print()
    print("paper (Fig 7): both fabrics lack immediate downward backups;")
    print("ringing one layer restores them without touching any software.")


if __name__ == "__main__":
    main()
