#!/usr/bin/env python3
"""Beyond OSPF: F²Tree under BGP and SDN control planes (§V, measured).

The paper argues — without measuring — that F²Tree's scheme helps DCNs
running BGP and centralized routing too, because the backup static routes
live *below* whatever the control plane installs.  This demo swaps the
control plane (same topology, same failure, same flow) and measures:

* path-vector / BGP: fat tree's recovery pays MRAI-gated path hunting;
* centralized / SDN: fat tree's recovery pays the report->compute->push
  loop;
* F²Tree: ~60 ms (the detection delay) under every control plane.

It also measures the future-work caveat: with interface-only (instead of
BFD-style) detection, a *unidirectional* downward failure is invisible to
the sending switch, and even F²Tree degrades to control-plane recovery —
local rerouting needs local detection.

Run:  python examples/beyond_ospf.py   (~1.5 minutes)
"""

from repro.experiments.extensions import (
    render_routing_comparison,
    render_unidirectional,
    run_centralized_comparison,
    run_pathvector_comparison,
    run_unidirectional,
)
from repro.sim.units import milliseconds


def main() -> None:
    print(
        render_routing_comparison(
            "BGP-style routing (valley-free path vector), downward failure:",
            run_pathvector_comparison(
                mrai_values=(milliseconds(30), milliseconds(100), milliseconds(300))
            ),
        )
    )
    print()
    print(
        render_routing_comparison(
            "Centralized (SDN-style) routing, downward failure:",
            run_centralized_comparison(
                control_latencies=(milliseconds(1), milliseconds(5), milliseconds(20))
            ),
        )
    )
    print()
    print(
        render_unidirectional(
            [run_unidirectional("bfd"), run_unidirectional("interface")]
        )
    )
    print()
    print("takeaways: the backup routes are control-plane-agnostic, and the")
    print("60 ms floor is exactly the local failure-detection delay.")


if __name__ == "__main__":
    main()
