#!/usr/bin/env python3
"""Quickstart: what F²Tree is and what it buys you, in ~30 seconds.

Builds the paper's §III testbed pair — the 4-port fat tree and the
F²Tree prototype obtained by rewiring two links per aggregation/core
switch — then tears down a downward rack link under a live UDP flow in
each and compares recovery (Table III).

Run:  python examples/quickstart.py
"""

from repro.core.backup_routes import render_routing_table
from repro.core.f2tree import rewire_fat_tree_prototype
from repro.experiments.common import build_bundle
from repro.experiments.testbed import run_testbed
from repro.sim.units import to_milliseconds
from repro.topology.fattree import fat_tree


def main() -> None:
    # 1. the rewiring: fat tree -> F2Tree, as a physical work order
    fat = fat_tree(4)
    f2, plan = rewire_fat_tree_prototype(fat)
    print(f"rewiring {fat.name} -> {f2.name}:")
    print(f"  links unplugged : {len(plan.removed)}")
    print(f"  links added     : {len(plan.added)} (the across rings)")
    print(f"  racks given up  : {len(plan.unsupported_tors)}"
          f" {plan.unsupported_tors}")
    print(f"  per-switch cost : 2 rewired links (e.g. agg-0-0:"
          f" {plan.rewired_links_of('agg-0-0')})")
    print()

    # 2. the configuration: two static backup routes per ring switch
    bundle = build_bundle(f2)
    bundle.converge()
    print(render_routing_table(bundle.network, "agg-3-1"))
    print()

    # 3. the payoff: recovery from a downward link failure (Table III)
    print("failing the downward rack link under a live UDP flow...")
    for kind in ("fat-tree", "f2tree"):
        result = run_testbed(kind, "udp")
        print(
            f"  {kind:<9} connectivity loss "
            f"{to_milliseconds(result.connectivity_loss):6.1f} ms, "
            f"{result.packets_lost} packets lost "
            f"(path during outage: "
            f"{'fast-rerouted' if result.path_during[1] else 'black hole'})"
        )
    print()
    print("paper (Table III): fat tree 272.8 ms / F2Tree 60.6 ms (-78%)")


if __name__ == "__main__":
    main()
