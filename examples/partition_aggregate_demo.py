#!/usr/bin/env python3
"""Partition-aggregate under random failures (the §IV-B experiment).

Front-end DCN traffic — each request fans out to 8 workers and waits for
2 KB responses, deadline 250 ms — runs over an 8-port fat tree and an
8-port F²Tree while links fail randomly (log-normal gaps and durations).

This is the paper's headline application result: F²Tree almost eliminates
deadline misses because its data plane reroutes within the failure
detection delay instead of waiting out OSPF's (exponentially backed-off)
SPF timers.

Run:  python examples/partition_aggregate_demo.py        (scaled, ~30 s)
      REPRO_FULL_SCALE=1 python examples/...             (paper scale)
"""

from repro.experiments.partition_aggregate import (
    PartitionAggregateConfig,
    run_partition_aggregate,
)
from repro.sim.units import milliseconds, seconds, to_seconds


def main() -> None:
    config = PartitionAggregateConfig.default(concurrent_failures=1)
    print(
        f"horizon {to_seconds(config.duration):.0f} s, "
        f"{config.n_requests} requests, "
        f"{config.n_background_flows} background flows, "
        f"~1 concurrent random failure\n"
    )
    results = {}
    for kind in ("fat-tree", "f2tree"):
        r = run_partition_aggregate(kind, config)
        results[kind] = r
        print(f"{kind}:")
        print(f"  link failures injected   : {r.n_failures} "
              f"(avg concurrency {r.average_concurrency:.2f})")
        print(f"  deadline (250 ms) misses : {r.deadline_miss_ratio:.3%}")
        for t in (milliseconds(100), milliseconds(600), seconds(1)):
            frac = r.stats.fraction_longer_than(t)
            print(f"  completions > {int(t/1e6):>4} ms    : {frac:.3%}")
        print(f"  99.9th pct completion    : "
              f"{r.stats.percentile(99.9)/1e6:.0f} ms")
        print()

    fat, f2 = results["fat-tree"], results["f2tree"]
    if fat.deadline_miss_ratio > 0:
        reduction = 1 - f2.deadline_miss_ratio / fat.deadline_miss_ratio
        print(f"F2Tree reduces deadline misses by {reduction:.1%} "
              f"(paper: 100% at 1 CF, 96.25% at 5 CF)")


if __name__ == "__main__":
    main()
