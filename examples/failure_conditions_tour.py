#!/usr/bin/env python3
"""A tour of the §II-C failure conditions (Table IV / Fig 3).

For each scenario C1-C7 on the 8-port F²Tree:

1. instantiate the scenario against the measured flow path,
2. *predict* the outcome with the analytical classifier
   (:mod:`repro.core.failure_analysis`),
3. run the packet-level simulation and compare.

The point: fast reroute succeeds exactly for conditions 1-3, costs
exactly the predicted number of extra hops, and condition 4 (C7)
ping-pongs until the control plane converges — prediction and
simulation agree everywhere.

Run:  python examples/failure_conditions_tour.py   (~1 minute)
"""

from repro.core.failure_analysis import analyze_scenario
from repro.experiments.conditions import run_condition
from repro.sim.units import milliseconds, seconds, to_milliseconds


def main() -> None:
    print(f"{'':>14} {'predicted':<34} {'simulated':<30}")
    print(
        f"{'scenario':<6} {'cond.':>7} {'fast?':>6} {'extra hops':>11} "
        f"{'outage (ms)':>14} {'extra hops':>11}   agree?"
    )
    for label in ("C1", "C2", "C3", "C4", "C5", "C6", "C7"):
        run = run_condition(
            "f2tree", label, "udp",
            flow_duration=seconds(1.5), drain=milliseconds(500),
        )
        analysis = run.analysis
        assert analysis is not None
        during, ok = run.result.path_during
        measured_extra = (
            len(during) - len(run.result.path_before) if ok else None
        )
        predicted_extra = (
            analysis.extra_hops if label != "C3" else 2  # both layers reroute
        )
        agree = (
            run.fast_rerouted == analysis.fast_reroute_succeeds
            and (not ok or measured_extra == predicted_extra)
        )
        print(
            f"{label:<6} {analysis.condition.value:>7} "
            f"{str(analysis.fast_reroute_succeeds):>6} "
            f"{str(predicted_extra):>11} "
            f"{to_milliseconds(run.result.connectivity_loss):>14.1f} "
            f"{str(measured_extra):>11}   {'yes' if agree else 'NO'}"
        )
        if label == "C7":
            print(
                "       (C7: packets bounce on the ring until OSPF converges"
                " - the paper's condition-4 degradation)"
            )


if __name__ == "__main__":
    main()
