"""The invariant catalog and its evaluator.

Six invariants, each with a precise statement of *when* it applies:

``loop-freedom``
    The effective forwarding graph toward any destination prefix never
    contains a cycle the data plane could actually walk.  During
    convergence the ring backup routes may transiently point "the wrong
    way", but the prefix-length fall-through rule guarantees a switch
    only uses a static ring route when every more-preferred ring
    neighbor is detected dead — so a cycle is a violation exactly when
    one of its static edges is *unjustified* (a more-preferred ring
    neighbor is still alive).  At quiescence the bar is higher: any
    cycle from which the destination is physically reachable is a
    violation, because converged routed state must win over statics.
``frr-window``
    Inside the fast-reroute window (after detection, before the first
    SPF install) the data plane must agree with the Section II-C
    analytical classifier: conditions 1-3 reroute on a simple path that
    is exactly ``extra_hops`` longer; condition 4 ping-pongs (the paper
    accepts the loss).
``blackhole-bound``
    If a physical path between the probe endpoints survives, end-to-end
    forwarding must work again within :func:`~repro.check.config.quiescence_bound`
    of a topology event (checked only when no other event lands inside
    the window).
``fib-consistency``
    ``Fib.matches`` enumerates exactly the entries containing the
    address in strictly longest-prefix-first order, and the switch's
    indexed resolver picks the first live match with the deterministic
    ECMP hash over its live next hops.
``convergence-agreement``
    At quiescence every link-state router's installed routes equal the
    routes a centralized global-SPF oracle computes from an idealized
    LSDB built out of ground-truth detected adjacency — the differential
    check between the distributed protocol and
    :func:`repro.routing.spf.compute_routes`.  Skipped when the
    detected switch graph is partitioned (SPF has no defined answer
    across a cut).
``sim-sanity``
    The engine itself: events fire at exactly their scheduled time, the
    clock never regresses, and every packet handed to a channel is
    accounted for (delivered + queue-dropped + down-dropped = sent).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, TYPE_CHECKING, Tuple

from ..core.backup_routes import ring_neighbors_of
from ..net.ecmp import select_next_hop
from ..net.fib import LOCAL, Fib, FibEntry
from ..net.packet import PROTO_UDP, Packet
from ..routing.lsdb import Lsa, Lsdb
from ..routing.spf_cache import compute_routes_cached
from ..sim.units import Time
from ..topology.graph import NodeKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..failures.scenarios import ConditionScenario
    from ..net.ip import IPv4Address
    from .execute import CheckEnv

LOOP_FREEDOM = "loop-freedom"
FRR_WINDOW = "frr-window"
BLACKHOLE_BOUND = "blackhole-bound"
FIB_CONSISTENCY = "fib-consistency"
CONVERGENCE_AGREEMENT = "convergence-agreement"
SIM_SANITY = "sim-sanity"

ALL_INVARIANTS = (
    LOOP_FREEDOM,
    FRR_WINDOW,
    BLACKHOLE_BOUND,
    FIB_CONSISTENCY,
    CONVERGENCE_AGREEMENT,
    SIM_SANITY,
)

#: source tag of the ring backup routes
_STATIC = "static"


@dataclass(frozen=True)
class Violation:
    """One invariant violation at one instant."""

    invariant: str
    at: Time
    subject: str
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "at": self.at,
            "subject": self.subject,
            "detail": self.detail,
        }


def canonical_violations(violations: Sequence[Violation]) -> str:
    """Canonical JSON of a violation list — the byte-identity currency of
    replay bundles."""
    return json.dumps(
        [v.to_dict() for v in violations],
        sort_keys=True,
        separators=(",", ":"),
    )


#: forwarding graph: switch name -> [(next hop, entry used)]
ForwardingEdges = Dict[str, List[Tuple[str, FibEntry]]]


def find_cycles(
    edges: ForwardingEdges, limit: int = 5
) -> List[List[Tuple[str, str, FibEntry]]]:
    """Cycles in a forwarding graph, as lists of (node, next hop, entry).

    Iterative colored DFS from every node in sorted order; deterministic
    and bounded (at most ``limit`` cycles reported).
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    cycles: List[List[Tuple[str, str, FibEntry]]] = []

    def entry_for(node: str, successor: str) -> FibEntry:
        for next_hop, entry in edges[node]:
            if next_hop == successor:
                return entry
        raise KeyError((node, successor))

    for root in sorted(edges):
        if color.get(root, WHITE) != WHITE:
            continue
        color[root] = GRAY
        path = [root]
        stack = [iter(edges[root])]
        while stack:
            advanced = False
            for next_hop, _entry in stack[-1]:
                state = color.get(next_hop, WHITE)
                if next_hop not in edges:
                    # terminal (host-facing or routeless) node
                    color[next_hop] = BLACK
                    continue
                if state == GRAY:
                    start = path.index(next_hop)
                    members = path[start:]
                    cycle = [
                        (node, members[(i + 1) % len(members)],
                         entry_for(node, members[(i + 1) % len(members)]))
                        for i, node in enumerate(members)
                    ]
                    cycles.append(cycle)
                    if len(cycles) >= limit:
                        return cycles
                elif state == WHITE:
                    color[next_hop] = GRAY
                    path.append(next_hop)
                    stack.append(iter(edges[next_hop]))
                    advanced = True
                    break
            if not advanced:
                color[path.pop()] = BLACK
                stack.pop()
    return cycles


class InvariantSuite:
    """Evaluates the catalog against one live check environment."""

    def __init__(self, env: "CheckEnv") -> None:
        self.env = env
        self.violations: List[Violation] = []
        self.checks_run: Dict[str, int] = {}
        topo = env.topo
        self._dests: List[Tuple[str, object]] = []
        for tor in topo.nodes_of_kind(NodeKind.TOR, NodeKind.LEAF):
            hosts = topo.host_of_tor(tor.name)
            if hosts:
                self._dests.append((hosts[0].name, hosts[0].ip))

    # -------------------------------------------------------------- helpers

    def _record(self, invariant: str, subject: str, detail: str) -> None:
        self.violations.append(
            Violation(invariant, self.env.sim.now, subject, detail)
        )

    def _count(self, invariant: str) -> None:
        self.checks_run[invariant] = self.checks_run.get(invariant, 0) + 1

    def _reference_chain(
        self, fib: Fib, address: "IPv4Address"
    ) -> List[FibEntry]:
        """Brute-force longest-prefix match chain, bypassing the (possibly
        instance-patched) trie walk."""
        matching = [e for e in fib.entries() if e.prefix.contains(address)]
        matching.sort(key=lambda e: -e.prefix.length)
        return matching

    def _forwarding_edges(self, address: "IPv4Address") -> ForwardingEdges:
        """The effective forwarding graph toward ``address``: for every
        switch, the live next hops of its first live match (the entries
        ECMP could spray over)."""
        edges: ForwardingEdges = {}
        for switch in self.env.network.switches():
            for entry in self._reference_chain(switch.fib, address):
                live = [
                    nh for nh in entry.next_hops
                    if nh == LOCAL or switch.neighbor_alive(nh)
                ]
                if live:
                    edges[switch.name] = [
                        (nh, entry) for nh in live if nh != LOCAL
                    ]
                    break
        return edges

    def _static_edge_unjustified(
        self, switch_name: str, next_hop: str, entry: FibEntry
    ) -> bool:
        """A static ring edge is unjustified when a more-preferred ring
        neighbor (earlier in the rightward-first order) is still alive —
        the prefix-length fall-through rule would never take it."""
        if entry.source != _STATIC:
            return False
        ring = ring_neighbors_of(self.env.topo, switch_name)
        if ring is None:
            return False
        node = self.env.network.switch(switch_name)
        for preferred in ring.ordered:
            if preferred == next_hop:
                return False
            if node.neighbor_alive(preferred):
                return True
        return False

    def _physical_component(self, start: str) -> Set[str]:
        """Node names reachable from ``start`` over links that are
        *actually* up (ground truth, not detector belief)."""
        network = self.env.network
        adjacency: Dict[str, List[str]] = {}
        for link in network.links:
            if not link.actually_up:
                continue
            a, b = link.spec.key
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for peer in adjacency.get(node, ()):
                if peer not in seen:
                    seen.add(peer)
                    queue.append(peer)
        return seen

    def _detected_switch_graph_connected(self) -> bool:
        """Whether the switch-to-switch graph is connected over links both
        endpoints currently detect as up."""
        network = self.env.network
        switches = [s.name for s in network.switches()]
        switch_set = set(switches)
        adjacency: Dict[str, List[str]] = {name: [] for name in switches}
        for link in network.links:
            a, b = link.spec.key
            if a in switch_set and b in switch_set:
                if link.detected_up_by(a) and link.detected_up_by(b):
                    adjacency[a].append(b)
                    adjacency[b].append(a)
        seen = {switches[0]}
        queue = deque([switches[0]])
        while queue:
            for peer in adjacency[queue.popleft()]:
                if peer not in seen:
                    seen.add(peer)
                    queue.append(peer)
        return len(seen) == len(switches)

    # ------------------------------------------------------- loop freedom

    def check_loop_freedom_during(self) -> None:
        """Mid-convergence loop check: flags cycles containing an
        unjustified static edge (see class docstring)."""
        self._count(LOOP_FREEDOM)
        for dest_host, dest_ip in self._dests:
            edges = self._forwarding_edges(dest_ip)
            for cycle in find_cycles(edges):
                bad = [
                    (node, nh) for node, nh, entry in cycle
                    if self._static_edge_unjustified(node, nh, entry)
                ]
                if bad:
                    self._record(
                        LOOP_FREEDOM,
                        dest_host,
                        "transient cycle with unjustified static edge(s) "
                        f"{bad} through {[node for node, _, _ in cycle]}",
                    )

    def check_loop_freedom_quiescent(self) -> None:
        """Post-convergence loop check: flags any cycle from which the
        destination is physically reachable."""
        self._count(LOOP_FREEDOM)
        for dest_host, dest_ip in self._dests:
            edges = self._forwarding_edges(dest_ip)
            for cycle in find_cycles(edges):
                members = [node for node, _, _ in cycle]
                if dest_host in self._physical_component(members[0]):
                    self._record(
                        LOOP_FREEDOM,
                        dest_host,
                        f"converged forwarding cycle through {members} while "
                        f"{dest_host} is physically reachable",
                    )

    # --------------------------------------------------------- frr window

    def check_frr_window(
        self, scenario: "ConditionScenario", path_before: List[str]
    ) -> None:
        """Differential check of the Section II-C classifier against the
        live data plane inside the fast-reroute window."""
        from ..core.failure_analysis import FailureCondition, analyze_scenario

        self._count(FRR_WINDOW)
        env = self.env
        analysis = analyze_scenario(
            env.topo,
            scenario.sx,
            scenario.dest_tor,
            frozenset(scenario.failed),
        )
        subject = f"{scenario.label}:{env.src}->{env.dst}"
        if analysis.condition is not scenario.expected_condition:
            self._record(
                FRR_WINDOW,
                subject,
                f"classifier says {analysis.condition.name}, scenario "
                f"expects {scenario.expected_condition.name}",
            )
            return
        path, completed = env.network.trace_route(
            env.src, env.dst, PROTO_UDP, env.probe_sport, env.probe_dport
        )
        if analysis.condition is FailureCondition.NO_DOWNWARD_FAILURE:
            if not completed or path != path_before:
                self._record(
                    FRR_WINDOW, subject,
                    f"untouched flow deviated: {path} (was {path_before})",
                )
        elif analysis.fast_reroute_succeeds:
            if not completed:
                self._record(
                    FRR_WINDOW, subject,
                    f"{analysis.condition.name} should fast-reroute but the "
                    f"probe died at {path[-1] if path else '?'}",
                )
                return
            if len(set(path)) != len(path):
                self._record(
                    FRR_WINDOW, subject, f"rerouted path revisits a node: {path}"
                )
            # the scenario's expected_extra_hops counts *every* detour hop
            # (including core-ring ones); the classifier's extra_hops only
            # counts the destination-pod relay
            expected_len = len(path_before) + scenario.expected_extra_hops
            if len(path) != expected_len:
                self._record(
                    FRR_WINDOW, subject,
                    f"rerouted path has {len(path)} hops, scenario "
                    f"predicts {expected_len}",
                )
            if analysis.egress is not None and analysis.egress not in path:
                self._record(
                    FRR_WINDOW, subject,
                    f"classifier egress {analysis.egress} not on the "
                    f"rerouted path {path}",
                )
        else:
            if completed:
                self._record(
                    FRR_WINDOW, subject,
                    f"{analysis.condition.name} predicts loss but the probe "
                    f"was delivered via {path}",
                )

    # ------------------------------------------------------ blackhole bound

    def check_blackhole(self, event_time: Time) -> None:
        """Quiescence-bound check: the probe pair must forward end to end
        if a physical path survives."""
        self._count(BLACKHOLE_BOUND)
        env = self.env
        if env.dst not in self._physical_component(env.src):
            return
        path, completed = env.network.trace_route(
            env.src, env.dst, PROTO_UDP, env.probe_sport, env.probe_dport,
            check_actual=True,
        )
        if not completed:
            self._record(
                BLACKHOLE_BOUND,
                f"{env.src}->{env.dst}",
                f"black hole outlived the quiescence bound of the event at "
                f"{event_time} ns (probe died after {path})",
            )

    # ------------------------------------------------------ fib consistency

    def check_fib_consistency(self) -> None:
        """LPM ordering, trie/entries agreement, and resolver/ECMP
        consistency on every switch for every probe destination."""
        self._count(FIB_CONSISTENCY)
        env = self.env
        for switch in env.network.switches():
            fib = switch.fib
            entries = list(fib.entries())
            if len(fib) != len(entries):
                self._record(
                    FIB_CONSISTENCY, switch.name,
                    f"len(fib)={len(fib)} but entries() yields {len(entries)}",
                )
            for dest_host, dest_ip in self._dests:
                reference = self._reference_chain(fib, dest_ip)
                chain = list(fib.matches(dest_ip))
                if chain != reference:
                    self._record(
                        FIB_CONSISTENCY, switch.name,
                        f"matches({dest_ip}) returned "
                        f"{[str(e.prefix) for e in chain]}, longest-prefix "
                        f"order is {[str(e.prefix) for e in reference]}",
                    )
                    break
                packet = Packet(
                    src=env.network.host(env.src).ip, dst=dest_ip,
                    protocol=PROTO_UDP, size_bytes=64,
                    sport=env.probe_sport, dport=env.probe_dport,
                )
                expected_entry = expected_hop = None
                expected_depth = 0
                for depth, entry in enumerate(reference):
                    live = [
                        nh for nh in entry.next_hops
                        if nh == LOCAL or switch.neighbor_alive(nh)
                    ]
                    if live:
                        expected_entry = entry
                        expected_hop = select_next_hop(
                            live, packet.flow_key, switch.salt
                        )
                        expected_depth = depth
                        break
                got_entry, got_hop, got_depth = switch._resolve_indexed(packet)
                if (got_entry, got_hop) != (expected_entry, expected_hop) or (
                    expected_entry is not None and got_depth != expected_depth
                ):
                    self._record(
                        FIB_CONSISTENCY, switch.name,
                        f"resolver chose ({got_entry}, {got_hop!r}, depth "
                        f"{got_depth}) for {dest_host}; reference resolution "
                        f"is ({expected_entry}, {expected_hop!r}, depth "
                        f"{expected_depth})",
                    )
                    break

    # ------------------------------------------------ convergence agreement

    def check_convergence_agreement(self) -> None:
        """Differential: installed link-state routes vs. a global-SPF
        oracle fed an idealized LSDB of detected adjacency."""
        self._count(CONVERGENCE_AGREEMENT)
        env = self.env
        if not self._detected_switch_graph_connected():
            return
        oracle = Lsdb()
        for switch in env.network.switches():
            protocol = env.protocols[switch.name]
            neighbors = tuple(
                sorted(
                    peer for peer in protocol.protocol_neighbors
                    if switch.neighbor_alive(peer)
                )
            )
            oracle.insert(
                Lsa(
                    origin=switch.name,
                    seq=1,
                    neighbors=neighbors,
                    prefixes=protocol.advertised,
                )
            )
        for switch in env.network.switches():
            protocol = env.protocols[switch.name]
            # memoized: the oracle LSDB is rebuilt per check but its
            # fingerprint repeats between topology events, so quiescent
            # stretches of a fuzz trial are one SPF per switch total
            expected = compute_routes_cached(switch.name, oracle)
            actual = {
                prefix: entry.next_hops
                for prefix, entry in protocol.routes.items()
            }
            if actual == expected:
                continue
            diff = []
            for prefix in sorted(set(expected) | set(actual)):
                want = expected.get(prefix)
                have = actual.get(prefix)
                if want != have:
                    diff.append(f"{prefix}: installed {have}, oracle {want}")
                if len(diff) >= 4:
                    break
            self._record(
                CONVERGENCE_AGREEMENT, switch.name,
                "installed routes disagree with the global SPF oracle: "
                + "; ".join(diff),
            )

    # ------------------------------------------------------------ sim sanity

    def check_sim_sanity(self) -> None:
        """Engine audit: timing discipline plus packet conservation on
        every channel."""
        self._count(SIM_SANITY)
        env = self.env
        for scheduled, fired, label in env.sim.timing_violations:
            self._record(
                SIM_SANITY, "engine",
                f"{label}: scheduled at {scheduled} ns, fired at {fired} ns",
            )
        for link in env.network.links:
            for channel in (link.channel_ab, link.channel_ba):
                stats = channel.stats
                accounted = (
                    stats.delivered + stats.dropped_queue + stats.dropped_down
                )
                if stats.sent != accounted:
                    self._record(
                        SIM_SANITY,
                        f"{channel.src.name}->{channel.dst.name}",
                        f"packet conservation broken: sent {stats.sent}, "
                        f"accounted {accounted} (delivered {stats.delivered}, "
                        f"queue-dropped {stats.dropped_queue}, down-dropped "
                        f"{stats.dropped_down})",
                    )

    # --------------------------------------------------------- quiescent set

    def run_quiescent_checks(self) -> None:
        self.check_loop_freedom_quiescent()
        self.check_fib_consistency()
        self.check_convergence_agreement()
        self.check_sim_sanity()
