"""Run one check trial: build, converge, inject, verify.

:func:`execute_check` is deliberately a pure function of its
``(config, mutant)`` arguments: the same pair always produces the same
:class:`CheckOutcome`, violations included, which is what makes replay
bundles byte-identical and delta-debugging sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from ..dataplane.network import Network
from ..failures.injector import FailureEvent, schedule_failures
from ..failures.scenarios import ConditionScenario, build_scenario
from ..net.packet import PROTO_UDP, WIRE_OVERHEAD
from ..obs import Observability
from ..sim.engine import (
    PRIORITY_NORMAL,
    EventHandle,
    SimulationError,
    Simulator,
)
from ..sim.units import Time, milliseconds
from ..topology.graph import Topology
from ..transport.udp import UdpSender, UdpSink
from .config import TrialConfig, build_topology, quiescence_bound
from .invariants import InvariantSuite, Violation

if TYPE_CHECKING:
    from ..experiments.common import Bundle
    from .mutants import FaultMutant

#: probe flow five-tuple constants (fixed so traces are comparable)
PROBE_SPORT = 10000
PROBE_DPORT = 7000

#: priority for invariant checks: after every control/data event at the
#: same timestamp (failures fire at PRIORITY_CONTROL=0, traffic at 10)
PRIORITY_CHECK = 90

#: offset of a scenario's (simultaneous) failures after warmup
SCENARIO_OFFSET: Time = milliseconds(100)


class CheckError(RuntimeError):
    """A check trial could not even be set up (distinct from a violation)."""


class CheckedSimulator(Simulator):
    """Simulator subclass that audits the engine while it runs.

    Every scheduled callback is wrapped to verify the two properties a
    discrete-event engine must never break: an event fires at exactly
    the time it was scheduled for, and the clock never moves backwards.
    Violations are collected in :attr:`timing_violations` for the
    ``sim-sanity`` invariant rather than raised, so one engine bug does
    not mask later ones.
    """

    def __init__(self, obs: Optional[Observability] = None) -> None:
        super().__init__(obs=obs)
        #: (scheduled time, fire time, description) triples
        self.timing_violations: List[Tuple[Time, Time, str]] = []
        self._last_fire: Time = 0

    def schedule_at(
        self,
        time: Time,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        def audited(*call_args: Any) -> None:
            now = self.now
            if now != time:
                self.timing_violations.append(
                    (time, now, f"event {_describe(callback)} fired off-schedule")
                )
            if now < self._last_fire:
                self.timing_violations.append(
                    (self._last_fire, now,
                     f"clock regressed before {_describe(callback)}")
                )
            self._last_fire = max(self._last_fire, now)
            return callback(*call_args)

        return super().schedule_at(time, audited, *args, priority=priority)

    def schedule(
        self,
        delay: Time,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        # the base class inlines schedule() for speed instead of routing
        # through schedule_at(), so the audit wrapper must be applied on
        # this path explicitly
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(
            self.now + delay, callback, *args, priority=priority
        )


def _describe(callback: Callable[..., None]) -> str:
    return getattr(callback, "__qualname__", repr(callback))


@dataclass
class CheckEnv:
    """Everything the invariant suite needs to interrogate one trial."""

    config: TrialConfig
    topo: Topology
    network: Network
    protocols: Dict[str, Any]
    sim: Simulator
    src: str
    dst: str
    probe_sport: int = PROBE_SPORT
    probe_dport: int = PROBE_DPORT


@dataclass
class CheckOutcome:
    """The deterministic result of one check trial."""

    config: TrialConfig
    violations: List[Violation]
    #: the resolved event sequence (scenario profiles get concrete events)
    events: Tuple[FailureEvent, ...]
    stats: Dict[str, Any]
    #: obs trace event dicts when executed with ``traced=True``
    trace: Optional[List[Dict[str, Any]]] = None
    #: causal span tree of the traced run (flight-recorder payload)
    spans: Optional[Dict[str, Any]] = None
    #: post-quiescence FIBs when executed with ``capture_fibs=True``:
    #: switch -> {prefix: sorted next hops} (not serialized into replay
    #: bundles — the differential harness compares them in memory)
    fibs: Optional[Dict[str, Dict[str, List[str]]]] = None

    @property
    def invariants_violated(self) -> List[str]:
        return sorted({v.invariant for v in self.violations})


def _resolve_scenario(
    config: TrialConfig, bundle: "Bundle", src: str, dst: str
) -> Tuple[ConditionScenario, List[str], Tuple[FailureEvent, ...]]:
    """Build the Table IV scenario on this bundle's converged best path."""
    path, completed = bundle.network.trace_route(
        src, dst, PROTO_UDP, PROBE_SPORT, PROBE_DPORT
    )
    if not completed:
        raise CheckError(
            f"converged network cannot route {src}->{dst}; "
            f"probe died after {path}"
        )
    if config.scenario is None:
        raise CheckError("scenario profile without a scenario label")
    scenario = build_scenario(config.scenario, bundle.topology, path)
    at = config.warmup + SCENARIO_OFFSET
    events = tuple(FailureEvent(at, a, b) for a, b in scenario.failed)
    return scenario, path, events


def execute_check(
    config: TrialConfig,
    mutant: Optional["FaultMutant"] = None,
    traced: bool = False,
    capture_fibs: bool = False,
) -> CheckOutcome:
    """Run one trial and evaluate the full invariant catalog.

    ``mutant`` (a :class:`~repro.check.mutants.FaultMutant`) seeds a
    deliberate fault into the system under test before events fire;
    ``traced`` attaches an unbounded obs trace for replay bundles;
    ``capture_fibs`` snapshots every switch's post-quiescence FIB into
    :attr:`CheckOutcome.fibs` for cross-backend comparison.

    The trial honors ``backend`` from the config's overrides: with
    ``backend=flow`` the probe traffic is a fluid CBR flow on the
    bundle's :class:`~repro.sim.flow.FluidTrafficModel` instead of
    discrete UDP packets — every invariant is evaluated through
    ``trace_route`` against live FIB/detection state, so the catalog is
    identical across backends.
    """
    from ..experiments.common import build_bundle, leftmost_host, rightmost_host

    topo = build_topology(config)
    params = config.params()
    obs = Observability(enabled=True, capacity=0) if traced else None
    sim = CheckedSimulator(obs=obs)
    bundle = build_bundle(
        topo,
        params=params,
        seed=config.seed,
        backup_tie_break=(
            mutant.backup_tie_break if mutant is not None else "prefix-length"
        ),
        sim=sim,
    )
    bundle.converge(until=config.warmup)
    if mutant is not None:
        mutant.apply(bundle)

    src, dst = leftmost_host(topo), rightmost_host(topo)
    env = CheckEnv(
        config=config, topo=topo, network=bundle.network,
        protocols=bundle.protocols, sim=sim, src=src, dst=dst,
    )
    suite = InvariantSuite(env)

    scenario = None
    path_before: Optional[List[str]] = None
    if config.profile == "scenario":
        scenario, path_before, events = _resolve_scenario(
            config, bundle, src, dst
        )
    else:
        events = tuple(
            FailureEvent(at, a, b, restore_at)
            for at, a, b, restore_at in config.events
        )
    schedule_failures(bundle.network, events)

    bound = quiescence_bound(params)
    detect = max(params.detection_delay, params.up_detection_delay)
    times = sorted(
        {e.at for e in events}
        | {e.restore_at for e in events if e.restore_at is not None}
    )
    last = times[-1] if times else config.warmup
    horizon = last + bound + milliseconds(20)

    # continuous probe traffic feeds the conservation invariant (and the
    # obs trace); it stops early enough that everything in flight drains
    probe_flow = None
    if params.backend == "flow":
        probe_flow = bundle.flow_model.add_cbr_flow(
            "check-probe", src, dst, dport=PROBE_DPORT, sport=PROBE_SPORT,
            packet_bytes=200 + WIRE_OVERHEAD, interval=milliseconds(1),
            start=config.warmup, stop=horizon - milliseconds(10),
        )
    else:
        sender = UdpSender(
            sim, bundle.network.host(src), bundle.network.host(dst).ip,
            PROBE_DPORT, sport=PROBE_SPORT, payload_bytes=200,
            interval=milliseconds(1),
        )
        sink = UdpSink(sim, bundle.network.host(dst), PROBE_DPORT)
        sender.start(at=config.warmup, stop_at=horizon - milliseconds(10))

    # mid-convergence loop checks: at each event instant (right after the
    # topology change, before any detection) and again just past the
    # detection window (backup routes engaged, SPF not yet installed)
    for t in times:
        sim.schedule_at(
            t, suite.check_loop_freedom_during, priority=PRIORITY_CHECK
        )
        sim.schedule_at(
            t + detect + milliseconds(1),
            suite.check_loop_freedom_during,
            priority=PRIORITY_CHECK,
        )
    # black-hole bound: only for events whose quiescence window is quiet
    for t in times:
        if all(not (t < other <= t + bound) for other in times):
            sim.schedule_at(
                t + bound, suite.check_blackhole, t, priority=PRIORITY_CHECK
            )
    # fast-reroute window: scenario profiles with backup routes in place
    if scenario is not None and bundle.backup_config is not None:
        sim.schedule_at(
            times[0] + detect + milliseconds(2),
            suite.check_frr_window,
            scenario,
            path_before,
            priority=PRIORITY_CHECK,
        )

    sim.run(until=horizon + milliseconds(1))
    suite.run_quiescent_checks()
    if probe_flow is not None:
        bundle.flow_model.finalize()

    # fold the fabric's FIB match-chain counters into the trial's metrics
    # so cache hit rates travel with the outcome (deterministic sums)
    chain_hits = 0
    chain_misses = 0
    for switch in bundle.network.switches():
        chain_hits += switch.fib.chain_hits
        chain_misses += switch.fib.chain_misses
    if chain_hits or chain_misses:
        sim.obs.metrics.counter("fib.chain.hits").inc(chain_hits)
        sim.obs.metrics.counter("fib.chain.misses").inc(chain_misses)
    snapshot = sim.obs.metrics.snapshot()

    if probe_flow is not None:
        probes_sent, probes_received = probe_flow.sent, probe_flow.received
    else:
        probes_sent, probes_received = sender.sent, sink.received
    stats: Dict[str, Any] = {
        "probes_sent": probes_sent,
        "probes_received": probes_received,
        "events_processed": sim.events_processed,
        "n_events": len(events),
        "checks": dict(sorted(suite.checks_run.items())),
        "caches": {
            "spf_cache": {
                "hits": int(snapshot.get("spf.cache.hits", 0)),
                "misses": int(snapshot.get("spf.cache.misses", 0)),
            },
            "fib_chain": {"hits": chain_hits, "misses": chain_misses},
        },
    }
    if probe_flow is not None:
        stats["flow_model"] = bundle.flow_model.stats()
    trace = None
    spans = None
    if traced:
        import json

        from ..obs.spans import SpanError, build_recovery_spans, counters_from_metrics

        trace = [json.loads(event.to_json()) for event in sim.obs.trace]
        try:
            spans = build_recovery_spans(
                sim.obs.trace,
                dst=dst,
                dport=PROBE_DPORT,
                counters=counters_from_metrics(snapshot),
                evicted=sim.obs.trace.evicted,
            ).to_dict()
        except SpanError:
            spans = None
    return CheckOutcome(
        config=config,
        violations=list(suite.violations),
        events=events,
        stats=stats,
        trace=trace,
        spans=spans,
        fibs=snapshot_fibs(bundle.network) if capture_fibs else None,
    )


def snapshot_fibs(network: Network) -> Dict[str, Dict[str, List[str]]]:
    """Every switch's FIB as plain sorted strings, for exact comparison.

    Next-hop *sets* are compared (sorted), not the ECMP tuple order —
    both backends install from the same deterministic route computation,
    but the comparison shouldn't depend on that implementation detail.
    """
    return {
        switch.name: {
            str(entry.prefix): sorted(str(hop) for hop in entry.next_hops)
            for entry in switch.fib.entries()
        }
        for switch in network.switches()
    }


def concretize(config: TrialConfig) -> TrialConfig:
    """Rewrite a scenario-profile config as an explicit events profile.

    Runs the warmup once to discover the converged best path the
    scenario builder anchors on, then pins the resulting link failures
    as absolute-time events.  Used by the shrinker (events are what it
    minimizes) and by mutants that need a Table IV failure pattern
    without the scenario-only FRR-window check.
    """
    from ..experiments.common import build_bundle, leftmost_host, rightmost_host

    if config.profile != "scenario":
        return config
    topo = build_topology(config)
    bundle = build_bundle(topo, params=config.params(), seed=config.seed)
    bundle.converge(until=config.warmup)
    src, dst = leftmost_host(topo), rightmost_host(topo)
    _, _, events = _resolve_scenario(config, bundle, src, dst)
    return config.with_events(
        tuple((e.at, e.a, e.b, e.restore_at) for e in events)
    )
