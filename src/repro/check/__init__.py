"""repro.check — invariant checking and differential fuzzing.

The subsystem has five moving parts:

``config``
    :class:`TrialConfig` — a fully pinned, JSON-serializable trial
    (topology family x size x NetworkParams overrides x failure/recovery
    event sequence) — and :func:`generate_config`, the seeded fuzzer
    that draws one.
``invariants``
    The invariant catalog (:data:`ALL_INVARIANTS`) and the
    :class:`InvariantSuite` that evaluates it against a live bundle.
``execute``
    :func:`execute_check` runs one config under the instrumented
    :class:`CheckedSimulator`, scheduling invariant checks around every
    topology event, and returns a :class:`CheckOutcome`.
``mutants``
    Seeded fault mutants — deliberate breakages of the system under
    test — each provably caught by exactly one invariant
    (:func:`check_mutant`, :func:`run_selftest`).
``shrink`` / ``bundle``
    Delta-debugging minimization of a violating event sequence and
    replay bundles that reproduce a violation byte-identically.
"""

from .bundle import load_bundle, replay_bundle, write_bundle
from .config import TrialConfig, build_topology, generate_config, quiescence_bound
from .execute import CheckedSimulator, CheckError, CheckOutcome, concretize, execute_check
from .invariants import (
    ALL_INVARIANTS,
    BLACKHOLE_BOUND,
    CONVERGENCE_AGREEMENT,
    FIB_CONSISTENCY,
    FRR_WINDOW,
    LOOP_FREEDOM,
    SIM_SANITY,
    InvariantSuite,
    Violation,
    canonical_violations,
    find_cycles,
)
from .mutants import MUTANTS, FaultMutant, MutantResult, check_mutant, render_selftest, run_selftest
from .shrink import shrink_config

__all__ = [
    "ALL_INVARIANTS",
    "BLACKHOLE_BOUND",
    "CONVERGENCE_AGREEMENT",
    "CheckError",
    "CheckOutcome",
    "CheckedSimulator",
    "FIB_CONSISTENCY",
    "FRR_WINDOW",
    "FaultMutant",
    "InvariantSuite",
    "LOOP_FREEDOM",
    "MUTANTS",
    "MutantResult",
    "SIM_SANITY",
    "TrialConfig",
    "Violation",
    "build_topology",
    "canonical_violations",
    "check_mutant",
    "concretize",
    "execute_check",
    "find_cycles",
    "generate_config",
    "load_bundle",
    "quiescence_bound",
    "render_selftest",
    "replay_bundle",
    "run_selftest",
    "shrink_config",
    "write_bundle",
]
