"""Differential cross-backend validation: flow vs packet.

The fluid backend (:mod:`repro.sim.flow`) earns its speed by replacing
per-packet events with analytic rate computation — which is only
admissible if it *agrees* with the packet backend everywhere the paper's
claims live.  This module pins that agreement:

* :func:`run_differential` executes one :class:`TrialConfig` on both
  backends and compares (a) the canonical invariant-violation list,
  (b) every switch's post-quiescence FIB, and (c) the probe delivery
  count (within a small in-flight-boundary tolerance) — any mismatch is
  a ``backend-agreement`` finding;
* :func:`compare_recovery` runs the single-flow recovery experiment on
  both backends and requires the same recovery-time *classification*
  (none / fast-reroute / convergence) and the same final-path outcome;
* the ``flow-fairshare-corrupted`` seeded mutant proves the harness has
  teeth: a corrupted fair-share solver must be caught by the probe-count
  comparison, exactly mirroring the ``spf-incremental-corrupted``
  diagonal of :mod:`repro.check.mutants`.

Known, deliberate differences the comparison must tolerate (DESIGN §11):
probe counts may differ by a few packets around failure/recovery
instants (the packet backend loses in-flight packets mid-link; the fluid
model switches rates at the event instant), and TCP collapse *durations*
differ where retransmission dynamics matter — which is why agreement is
asserted on classifications and converged state, not raw durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING, Tuple

from ..dataplane.params import NetworkParams
from ..sim.flow.fairshare import have_numpy as _have_numpy
from ..topology.graph import Topology
from ..sim.units import Time
from .config import TrialConfig, generate_config
from .execute import CheckOutcome, execute_check
from .invariants import canonical_violations
from .mutants import FaultMutant, MutantResult, _events_config

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.recovery import RecoveryResult

#: the cross-backend agreement pseudo-invariant (not part of the
#: single-backend catalog in :mod:`repro.check.invariants` — it only
#: exists between two executions)
BACKEND_AGREEMENT = "backend-agreement"

#: probe-count slack: packets in flight at a failure instant are lost by
#: the packet backend but not yet counted as delivered credit by the
#: fluid model (and vice versa at recovery); a handful per event, never
#: systematic drift
PROBE_TOLERANCE = 10


@dataclass
class DifferentialResult:
    """One config executed on both backends, compared."""

    config: TrialConfig
    packet: CheckOutcome
    flow: CheckOutcome
    #: human-readable mismatches, each prefixed with its kind
    disagreements: List[str]

    @property
    def ok(self) -> bool:
        return not self.disagreements

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Sorted unique disagreement kinds (``violations``/``fibs``/
        ``probes``)."""
        return tuple(sorted({d.split(":", 1)[0] for d in self.disagreements}))


def run_differential(
    config: TrialConfig,
    mutant: Optional[FaultMutant] = None,
    tolerance: int = PROBE_TOLERANCE,
) -> DifferentialResult:
    """Execute ``config`` on both backends and compare (see module doc).

    ``mutant`` is applied to *both* executions — a mutant that corrupts
    flow-only machinery (like the fair-share solver) no-ops on the
    packet side, which is exactly what makes the packet run the oracle.
    """
    packet = execute_check(
        config.with_backend("packet"), mutant=mutant, capture_fibs=True
    )
    flow = execute_check(
        config.with_backend("flow"), mutant=mutant, capture_fibs=True
    )
    disagreements: List[str] = []
    if canonical_violations(packet.violations) != canonical_violations(
        flow.violations
    ):
        disagreements.append(
            "violations: packet "
            f"{packet.invariants_violated or ['(clean)']} vs flow "
            f"{flow.invariants_violated or ['(clean)']}"
        )
    assert packet.fibs is not None and flow.fibs is not None
    if packet.fibs != flow.fibs:
        differing = sorted(
            name
            for name in set(packet.fibs) | set(flow.fibs)
            if packet.fibs.get(name) != flow.fibs.get(name)
        )
        disagreements.append(
            f"fibs: {len(differing)} switch(es) differ post-quiescence: "
            f"{differing[:5]}"
        )
    delta = abs(
        packet.stats["probes_received"] - flow.stats["probes_received"]
    )
    if (
        packet.stats["probes_sent"] != flow.stats["probes_sent"]
        or delta > tolerance
    ):
        disagreements.append(
            f"probes: packet {packet.stats['probes_sent']}/"
            f"{packet.stats['probes_received']} vs flow "
            f"{flow.stats['probes_sent']}/{flow.stats['probes_received']} "
            f"(tolerance {tolerance})"
        )
    return DifferentialResult(
        config=config, packet=packet, flow=flow, disagreements=disagreements
    )


def run_differential_fuzz(
    trials: int,
    start_seed: int = 0,
    tolerance: int = PROBE_TOLERANCE,
    progress: Optional[Callable[[int, DifferentialResult], None]] = None,
) -> List[DifferentialResult]:
    """Fuzz ``trials`` generated configs through :func:`run_differential`.

    The same deterministic config generator as single-backend fuzzing
    (:func:`repro.check.config.generate_config`), so a disagreeing seed
    replays exactly.
    """
    results: List[DifferentialResult] = []
    for index in range(trials):
        result = run_differential(
            generate_config(start_seed + index), tolerance=tolerance
        )
        results.append(result)
        if progress is not None:
            progress(start_seed + index, result)
    return results


def render_differential(results: List[DifferentialResult]) -> str:
    lines = []
    for result in results:
        config = result.config
        label = (
            f"{config.topology}/{config.ports} seed={config.seed} "
            f"{config.scenario or f'{len(config.events)} events'}"
        )
        if result.ok:
            lines.append(f"agree  {label}")
        else:
            lines.append(f"DIFFER {label}: {'; '.join(result.disagreements)}")
    agreed = sum(1 for r in results if r.ok)
    lines.append(f"{agreed}/{len(results)} trials agree across backends")
    return "\n".join(lines)


# ----------------------------------------------------- recovery agreement

#: recovery-time classes (Table III's qualitative split)
CLASS_NONE = "none"
CLASS_FRR = "fast-reroute"
CLASS_CONVERGENCE = "convergence"


def classify_recovery_time(
    loss: Optional[Time], params: NetworkParams, rto_quantized: bool = False
) -> str:
    """Bin a connectivity-loss (or collapse) duration into the paper's
    qualitative recovery classes.

    Fast reroute restores traffic right after failure *detection*
    (backup routes, no SPF); plain convergence additionally waits out the
    SPF initial timer — so the class boundary sits halfway into the SPF
    window, far from both modes for any sane parameter draw.

    ``rto_quantized`` classifies a *packet-backend TCP* collapse: that
    sender cannot resume before its retransmission timer fires even when
    fast reroute healed the path earlier, so its observed collapse is
    the heal time quantized up to the RTO backoff schedule (an FRR-window
    heal resumes at the first RTO, a convergence-window heal at the
    second backoff point).  Shifting the boundary by one initial RTO
    maps the quantized durations onto the same classes the un-quantized
    heal times (UDP loss, or the fluid model's collapse — it has no RTO
    dynamics) fall into.
    """
    if loss is None or loss <= 0:
        return CLASS_NONE
    boundary = params.detection_delay + params.spf_initial_delay // 2
    if rto_quantized:
        from ..transport.tcp import TcpParams

        boundary += TcpParams().rto_initial
    return CLASS_FRR if loss <= boundary else CLASS_CONVERGENCE


@dataclass
class RecoveryAgreement:
    """Both backends' recovery runs, reduced to what must match."""

    topology: str
    transport: str
    packet_class: str
    flow_class: str
    #: (loss-or-collapse duration, final path complete) per backend
    packet_outcome: Tuple[Optional[Time], bool]
    flow_outcome: Tuple[Optional[Time], bool]

    @property
    def ok(self) -> bool:
        return (
            self.packet_class == self.flow_class
            and self.packet_outcome[1] == self.flow_outcome[1]
        )


def compare_recovery(
    topology: Topology,
    transport: str = "udp",
    params: Optional[NetworkParams] = None,
    **kwargs: Any,
) -> RecoveryAgreement:
    """Run :func:`repro.experiments.recovery.run_recovery` on both
    backends and compare recovery-time classification and final path."""
    from ..experiments.recovery import run_recovery

    base = params if params is not None else NetworkParams()
    runs = {}
    for backend in ("packet", "flow"):
        backend_params = base.with_overrides(backend=backend)
        runs[backend] = run_recovery(
            topology, transport=transport, params=backend_params, **kwargs
        )

    def reduce(
        result: "RecoveryResult", backend: str
    ) -> Tuple[str, Tuple[Optional[Time], bool]]:
        duration = (
            result.connectivity_loss
            if transport == "udp"
            else result.collapse_duration
        )
        complete = (
            result.path_after[1] if result.path_after is not None else False
        )
        quantized = transport == "tcp" and backend == "packet"
        return (
            classify_recovery_time(duration, base, rto_quantized=quantized),
            (duration, complete),
        )

    packet_class, packet_outcome = reduce(runs["packet"], "packet")
    flow_class, flow_outcome = reduce(runs["flow"], "flow")
    return RecoveryAgreement(
        topology=topology.name,
        transport=transport,
        packet_class=packet_class,
        flow_class=flow_class,
        packet_outcome=packet_outcome,
        flow_outcome=flow_outcome,
    )


# ------------------------------------------------------------ flow mutants

#: seeded mutants whose breakage only the *cross-backend* comparison can
#: see — they live outside :data:`repro.check.mutants.MUTANTS` because
#: the single-backend selftest diagonal has no backend-agreement row
FLOW_MUTANTS: Dict[str, FaultMutant] = {}


def _corrupt_fair_share(bundle: Any) -> None:
    """Starve the fluid solver: every flow's fair share becomes zero, so
    the flow backend delivers nothing while its control plane (and the
    packet oracle) behave perfectly — only the probe-count comparison of
    the backend-agreement harness can catch it."""
    model = bundle.flow_model
    if model is None:  # packet side: the oracle stays healthy
        return
    original = model.solver

    def starved(
        paths: Any,
        capacity: Any,
        demand: Any = None,
        _original: Callable[..., Dict[object, float]] = original,
    ) -> Dict[object, float]:
        return {name: 0.0 for name in _original(paths, capacity, demand)}

    model.solver = starved


def _register(mutant: FaultMutant) -> FaultMutant:
    FLOW_MUTANTS[mutant.name] = mutant
    return mutant


_register(FaultMutant(
    name="flow-fairshare-corrupted",
    invariant=BACKEND_AGREEMENT,
    description="max-min fair-share solver returns all-zero rates; the "
                "fluid backend black-holes every flow while routing "
                "stays perfect, so only the cross-backend probe-count "
                "comparison can catch it",
    config_factory=lambda: _events_config("fat-tree", 4, "C1"),
    apply=_corrupt_fair_share,
))


def _corrupt_vector_engine(bundle: Any) -> None:
    """Break only the *vectorized* fair-share engine: the flow model is
    pinned to ``engine="numpy"`` and every solved rate is halved — the
    drift a compaction/scatter bug in the vector path would produce.
    The python engine (the bitwise oracle the hypothesis suite compares
    against) and the packet backend stay exact, so the corruption is
    observable only as the fluid flows undershooting their delivery —
    the cross-backend probe-count comparison."""
    model = bundle.flow_model
    if model is None:  # packet side: the oracle stays healthy
        return
    from ..sim.flow.fairshare import max_min_rates as _solve

    def drifted(
        paths: Any,
        capacity: Any,
        demand: Any = None,
    ) -> Dict[object, float]:
        rates = _solve(paths, capacity, demand, engine="numpy")
        return {name: rate * 0.5 for name, rate in sorted(rates.items())}

    model.solver = drifted


# the vector mutant needs the vectorized engine to corrupt; on a
# numpy-less interpreter there is no numpy path to diverge, so the row
# is (honestly) absent from the matrix rather than vacuously green —
# CI's fuzz job installs numpy precisely so the diagonal always runs
if _have_numpy():
    _register(FaultMutant(
        name="fairshare-vector-corrupted",
        invariant=BACKEND_AGREEMENT,
        description="vectorized fair-share engine halves every rate "
                    "while the python oracle stays exact; the fluid "
                    "backend under-delivers and only the cross-backend "
                    "probe-count comparison can catch it",
        config_factory=lambda: _events_config("fat-tree", 4, "C1"),
        apply=_corrupt_vector_engine,
    ))


def check_flow_mutant(name: str) -> MutantResult:
    """One flow mutant's diagonal: differential baseline clean, mutated
    differential caught as ``backend-agreement``."""
    mutant = FLOW_MUTANTS[name]
    config = mutant.config_factory()
    baseline = run_differential(config)
    mutated = run_differential(config, mutant=mutant)
    return MutantResult(
        name=name,
        expected=BACKEND_AGREEMENT,
        baseline=(
            () if baseline.ok else (BACKEND_AGREEMENT,) + baseline.kinds
        ),
        caught=(BACKEND_AGREEMENT,) if not mutated.ok else (),
    )


def run_flow_selftest() -> List[MutantResult]:
    """The flow-mutant matrix, in name order."""
    return [check_flow_mutant(name) for name in sorted(FLOW_MUTANTS)]
