"""Trial configurations for the invariant checker.

A :class:`TrialConfig` pins *everything* a check trial depends on —
topology family and size, ``NetworkParams`` overrides, and the failure/
recovery event sequence — as plain JSON-safe scalars, so a trial can be
replayed byte-identically from its serialized form alone.

:func:`generate_config` is the fuzzer: from a single integer seed it
draws one configuration deterministically (same seed, same config).
Event times are snapped to a coarse 100 ms grid so every event gets its
own quiet slot: LSAs are flooded once on adjacency change (no periodic
refresh), so two topology changes landing inside one flood window can
legitimately strand a router with a stale view — a property of the
modeled protocol, not a bug the fuzzer should report.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..dataplane.params import NetworkParams
from ..failures.scenarios import ALL_LABELS
from ..sim.randomness import RandomStreams
from ..sim.units import Time, milliseconds, seconds
from ..topology.graph import Topology

#: trial profiles: ``scenario`` replays a Table IV condition label,
#: ``events`` schedules an explicit failure/recovery sequence
PROFILES = ("scenario", "events")

#: spacing of the event-time grid (see module docstring)
EVENT_GRID: Time = milliseconds(100)
#: number of grid slots after warmup that events may occupy
EVENT_SLOTS = 12

#: (at, a, b, restore_at or None) with *absolute* simulation times in ns
EventTuple = Tuple[int, str, str, Optional[int]]


class ConfigError(ValueError):
    """An invalid or inconsistent trial configuration."""


@dataclass(frozen=True)
class TrialConfig:
    """One fully pinned check trial."""

    topology: str
    ports: int
    across_ports: int = 2
    profile: str = "events"
    #: Table IV label (C1..C7) when ``profile == 'scenario'``
    scenario: Optional[str] = None
    seed: int = 1
    #: sorted ``(field, value)`` NetworkParams overrides (values are the
    #: field's own type — ints for timers, ``str`` for ``backend``)
    overrides: Tuple[Tuple[str, Any], ...] = ()
    #: failure/recovery events when ``profile == 'events'``
    events: Tuple[EventTuple, ...] = ()
    warmup: Time = field(default=seconds(1))

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ConfigError(f"unknown profile {self.profile!r}")
        if self.profile == "scenario":
            if self.scenario is None:
                raise ConfigError("scenario profile needs a scenario label")
            if self.events:
                raise ConfigError("scenario profile must not carry events")
        elif self.scenario is not None:
            raise ConfigError("events profile must not carry a scenario label")
        for event in self.events:
            at, a, b, restore_at = event
            if at < self.warmup:
                raise ConfigError(f"event {event} fires before warmup")
            if restore_at is not None and restore_at <= at:
                raise ConfigError(f"event {event} restores before failing")

    def params(self) -> NetworkParams:
        """The NetworkParams this trial runs with."""
        return NetworkParams().with_overrides(**dict(self.overrides))

    # ------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        return {
            "topology": self.topology,
            "ports": self.ports,
            "across_ports": self.across_ports,
            "profile": self.profile,
            "scenario": self.scenario,
            "seed": self.seed,
            "overrides": [list(item) for item in self.overrides],
            "events": [list(event) for event in self.events],
            "warmup": self.warmup,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrialConfig":
        return cls(
            topology=data["topology"],
            ports=data["ports"],
            across_ports=data["across_ports"],
            profile=data["profile"],
            scenario=data["scenario"],
            seed=data["seed"],
            overrides=tuple((name, value) for name, value in data["overrides"]),
            events=tuple(
                (at, a, b, restore_at) for at, a, b, restore_at in data["events"]
            ),
            warmup=data["warmup"],
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def with_events(self, events: Tuple[EventTuple, ...]) -> "TrialConfig":
        return replace(self, profile="events", scenario=None, events=events)

    def with_backend(self, backend: str) -> "TrialConfig":
        """The same trial pinned to ``backend`` (packet/flow) — the
        differential harness runs a config through both."""
        kept = tuple(
            (name, value) for name, value in self.overrides if name != "backend"
        )
        return replace(
            self, overrides=tuple(sorted(kept + (("backend", backend),)))
        )


def build_topology(config: TrialConfig) -> Topology:
    """Instantiate the configured topology family at the configured size."""
    from ..campaign.trials import _build_topology

    return _build_topology(config.topology, config.ports, config.across_ports)


def quiescence_bound(params: NetworkParams) -> Time:
    """Upper bound on control-plane settling time after one topology event.

    detection (or up-detection) + a flooding/LSA-processing margin + the
    initial SPF timer + one full hold window + the FIB install delay + a
    final margin.  A black hole outliving this bound while a physical
    path survives is an invariant violation.
    """
    return (
        max(params.detection_delay, params.up_detection_delay)
        + milliseconds(5)
        + params.spf_initial_delay
        + params.spf_hold_max
        + params.fib_update_delay
        + milliseconds(5)
    )


# ------------------------------------------------------------------ fuzzer

#: (family, ports) pool the fuzzer draws from; kept small enough that a
#: single trial stays sub-second
_TOPOLOGIES: Tuple[Tuple[str, int], ...] = (
    ("fat-tree", 4),
    ("fat-tree", 6),
    ("f2tree", 6),
    ("f2tree", 8),
    ("leaf-spine", 4),
    ("vl2", 4),
)

#: timer overrides drawn per trial — much faster than the paper defaults
#: so a fuzz trial converges in simulated milliseconds, not seconds
_DETECTION_CHOICES = (milliseconds(1), milliseconds(5), milliseconds(10))
_SPF_INITIAL_CHOICES = (milliseconds(20), milliseconds(50))
_SPF_HOLD_CHOICES = (milliseconds(100), milliseconds(200))
_FIB_CHOICES = (milliseconds(2), milliseconds(10))

#: default warmup for generated trials: initial convergence plus every
#: hold window comfortably expired before the first event
_WARMUP: Time = seconds(1)


def fast_overrides(
    rng: Optional[random.Random] = None,
) -> Tuple[Tuple[str, int], ...]:
    """Draw (or, with ``rng=None``, pick the fastest) timer overrides."""
    if rng is None:
        detection = milliseconds(5)
        spf_initial = milliseconds(20)
        spf_hold = milliseconds(100)
        fib = milliseconds(2)
    else:
        detection = rng.choice(_DETECTION_CHOICES)
        spf_initial = rng.choice(_SPF_INITIAL_CHOICES)
        spf_hold = rng.choice(_SPF_HOLD_CHOICES)
        fib = rng.choice(_FIB_CHOICES)
    return tuple(
        sorted(
            {
                "detection_delay": detection,
                "up_detection_delay": detection,
                "spf_initial_delay": spf_initial,
                "spf_hold": spf_hold,
                "spf_hold_max": 2 * spf_hold,
                "fib_update_delay": fib,
            }.items()
        )
    )


def scenario_labels(topology: str, ports: int) -> Tuple[str, ...]:
    """Table IV labels buildable on this (family, size).

    C4/C5/C7 need an across ring of at least three switches; C6/C7 fail
    across links, which plain fat trees do not have.
    """
    ring = ports // 2
    if topology == "fat-tree":
        return ("C1", "C2", "C3") if ring < 3 else ("C1", "C2", "C3", "C4", "C5")
    if topology == "f2tree":
        return ("C1", "C2", "C3", "C6") if ring < 3 else ALL_LABELS
    return ()


def generate_config(seed: int) -> TrialConfig:
    """Draw one trial configuration deterministically from ``seed``."""
    rng = RandomStreams(seed).stream("check-config")
    topology, ports = _TOPOLOGIES[rng.randrange(len(_TOPOLOGIES))]
    overrides = fast_overrides(rng)
    labels = scenario_labels(topology, ports)
    if labels and rng.random() < 0.4:
        return TrialConfig(
            topology=topology,
            ports=ports,
            profile="scenario",
            scenario=labels[rng.randrange(len(labels))],
            seed=seed,
            overrides=overrides,
            warmup=_WARMUP,
        )
    from ..failures.injector import fabric_links

    config = TrialConfig(
        topology=topology,
        ports=ports,
        seed=seed,
        overrides=overrides,
        warmup=_WARMUP,
    )
    candidates = fabric_links(build_topology(config))
    n_events = rng.randint(1, min(3, len(candidates)))
    links = rng.sample(candidates, n_events)
    # 2n distinct grid slots, ascending: the first n are failure times,
    # the rest hand out strictly-later restore times
    slots = sorted(rng.sample(range(EVENT_SLOTS), 2 * n_events))
    events = []
    for index, (a, b) in enumerate(links):
        at = _WARMUP + (slots[index] + 1) * EVENT_GRID
        restore_at: Optional[Time] = None
        if rng.random() < 0.5:
            restore_at = _WARMUP + (slots[n_events + index] + 1) * EVENT_GRID
        events.append((at, a, b, restore_at))
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    return replace(config, events=tuple(events))
