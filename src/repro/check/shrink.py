"""Delta-debugging minimization of a violating trial.

Given a config whose execution violates some invariant set, the
shrinker looks for the smallest event sequence that still reproduces at
least one of those invariants: classic ddmin over the events (drop
complement chunks, refining the partition), then a pass that strips
restore times.  Every candidate is judged by actually re-executing it —
:func:`~repro.check.execute.execute_check` is deterministic, so
"reproduces" is well-defined.

Scenario-profile configs are first rewritten as explicit events via
:func:`~repro.check.execute.concretize`; if the violation does not
survive concretization (the ``frr-window`` invariant only exists for
scenario profiles), the original config is returned unshrunk.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING, Tuple

from .config import EventTuple, TrialConfig
from .execute import CheckOutcome, concretize, execute_check

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .mutants import FaultMutant


def shrink_config(
    config: TrialConfig,
    mutant: "Optional[FaultMutant]" = None,
    max_runs: int = 48,
) -> Tuple[TrialConfig, CheckOutcome]:
    """Minimize ``config``'s event sequence while preserving the violation.

    Returns the smallest reproducing config found within the ``max_runs``
    re-execution budget together with its outcome.  If the initial run
    has no violations, the config is returned untouched.
    """
    initial = execute_check(config, mutant=mutant)
    target = frozenset(v.invariant for v in initial.violations)
    if not target:
        return config, initial

    budget = [max_runs]

    def attempt(candidate: TrialConfig) -> Optional[CheckOutcome]:
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        outcome = execute_check(candidate, mutant=mutant)
        if target & {v.invariant for v in outcome.violations}:
            return outcome
        return None

    best_config, best_outcome = config, initial
    if config.profile == "scenario":
        concrete = concretize(config)
        outcome = attempt(concrete)
        if outcome is None:
            return config, initial
        best_config, best_outcome = concrete, outcome

    events: List[EventTuple] = list(best_config.events)

    # ddmin: try removing complement chunks, refining the partition
    chunks = 2
    while len(events) >= 2:
        size = -(-len(events) // chunks)  # ceil division
        subsets = [events[i:i + size] for i in range(0, len(events), size)]
        reduced = False
        for skip in range(len(subsets)):
            candidate_events = [
                event
                for index, subset in enumerate(subsets)
                for event in subset
                if index != skip
            ]
            outcome = attempt(
                best_config.with_events(tuple(candidate_events))
            )
            if outcome is not None:
                events = candidate_events
                best_config = best_config.with_events(tuple(events))
                best_outcome = outcome
                chunks = max(2, chunks - 1)
                reduced = True
                break
        if not reduced:
            if chunks >= len(events):
                break
            chunks = min(len(events), 2 * chunks)

    # can the violation survive with no events at all?  (quiescent-only
    # invariants like fib-consistency can)
    if events:
        outcome = attempt(best_config.with_events(()))
        if outcome is not None:
            events = []
            best_config = best_config.with_events(())
            best_outcome = outcome

    # strip restore times the violation does not depend on
    for index, event in enumerate(events):
        at, a, b, restore_at = event
        if restore_at is None:
            continue
        candidate_events = list(events)
        candidate_events[index] = (at, a, b, None)
        outcome = attempt(best_config.with_events(tuple(candidate_events)))
        if outcome is not None:
            events = candidate_events
            best_config = best_config.with_events(tuple(events))
            best_outcome = outcome

    return best_config, best_outcome
