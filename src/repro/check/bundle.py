"""Replay bundles: a violation, frozen.

A bundle is one JSON file carrying everything needed to reproduce a
violation byte-identically: the campaign-style spec (kind + seed), the
fully pinned :class:`~repro.check.config.TrialConfig`, the mutant name
(if the violation came from the self-test layer), the canonical
violation list, and the obs trace of the violating run.

``write_bundle`` re-executes the trial with tracing enabled and *fails*
if the re-execution does not reproduce the violations exactly — so a
bundle on disk is already proof of determinism.  ``replay_bundle`` is
the consumer side: load, re-execute, compare canonically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, TYPE_CHECKING, Tuple

from .config import TrialConfig
from .execute import CheckOutcome, execute_check
from .invariants import canonical_violations

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .mutants import FaultMutant

BUNDLE_VERSION = 1

#: flight-recorder depth: the last N trace events embedded alongside the
#: full trace so a refutation's immediate run-up is readable at a glance
FLIGHT_RING_EVENTS = 512


class BundleError(RuntimeError):
    """A bundle that cannot be written or does not reproduce."""


def flight_dict(outcome: CheckOutcome) -> Dict[str, Any]:
    """The flight-recorder section: last-N event ring + full span tree.

    ``ring`` is the tail of the traced run's event stream (bounded by
    :data:`FLIGHT_RING_EVENTS`, with ``ring_dropped`` counting what the
    bound cut); ``spans`` is the causal span tree of the failing trial,
    so a violation is debuggable offline without re-execution.
    """
    trace = outcome.trace or []
    return {
        "ring": trace[-FLIGHT_RING_EVENTS:],
        "ring_dropped": max(0, len(trace) - FLIGHT_RING_EVENTS),
        "spans": outcome.spans,
    }


def bundle_dict(
    config: TrialConfig,
    outcome: CheckOutcome,
    mutant_name: Optional[str] = None,
) -> Dict[str, Any]:
    return {
        "version": BUNDLE_VERSION,
        "spec": {"kind": "check", "seed": config.seed, "params": {}},
        "config": config.to_dict(),
        "mutant": mutant_name,
        "violations": [v.to_dict() for v in outcome.violations],
        "stats": outcome.stats,
        "trace": outcome.trace or [],
        "flight": flight_dict(outcome),
    }


def write_bundle(
    path: Path,
    config: TrialConfig,
    outcome: CheckOutcome,
    mutant: "Optional[FaultMutant]" = None,
) -> Path:
    """Write a replay bundle, verifying reproducibility on the way.

    The trial is re-executed with tracing enabled; if the re-execution's
    violations differ from ``outcome``'s, the bundle is *not* written
    and :class:`BundleError` is raised — a nondeterministic "violation"
    is a checker bug, not a finding.
    """
    traced = execute_check(config, mutant=mutant, traced=True)
    if canonical_violations(traced.violations) != canonical_violations(
        outcome.violations
    ):
        raise BundleError(
            f"violation did not reproduce under traced re-execution "
            f"(got {traced.invariants_violated}, "
            f"expected {outcome.invariants_violated})"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mutant_name = getattr(mutant, "name", None)
    path.write_text(
        json.dumps(bundle_dict(config, traced, mutant_name), indent=2,
                   sort_keys=True)
        + "\n"
    )
    return path


def load_bundle(path: Path) -> Dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if data.get("version") != BUNDLE_VERSION:
        raise BundleError(
            f"unsupported bundle version {data.get('version')!r}"
        )
    return data


def replay_bundle(path: Path) -> Tuple[bool, str]:
    """Re-execute a bundle and compare violations byte-for-byte.

    Returns ``(reproduced, human-readable summary)``.
    """
    from .mutants import MUTANTS

    data = load_bundle(path)
    config = TrialConfig.from_dict(data["config"])
    mutant = MUTANTS[data["mutant"]] if data.get("mutant") else None
    outcome = execute_check(config, mutant=mutant)
    expected = json.dumps(
        data["violations"], sort_keys=True, separators=(",", ":")
    )
    actual = canonical_violations(outcome.violations)
    if actual == expected:
        return True, (
            f"reproduced: {len(outcome.violations)} violation(s) "
            f"[{', '.join(outcome.invariants_violated)}] byte-identical "
            f"to {Path(path).name}"
        )
    return False, (
        f"MISMATCH: replay produced {outcome.invariants_violated} "
        f"({len(outcome.violations)} violations), bundle records "
        f"{sorted({v['invariant'] for v in data['violations']})} "
        f"({len(data['violations'])})"
    )
