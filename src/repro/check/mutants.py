"""Seeded fault mutants: the checker's self-test layer.

Each mutant deliberately breaks one mechanism of the system under test
and names the single invariant that must catch it.  The self-test
(:func:`run_selftest`) proves the diagonal: the unmutated configuration
is violation-free, and the mutated run is caught by *exactly* the
intended invariant — no more, no less.  A checker whose mutants all pass
this matrix is known to have teeth; a fuzzer that never fires could
otherwise just be checking nothing.

The mutants are pure instance patches (FIB withdrawals, bound-method
overrides on one protocol/link/channel object), so they perturb a single
trial without monkeypatching any module state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from ..sim.units import milliseconds
from ..topology.graph import NodeKind
from .config import TrialConfig, fast_overrides
from .execute import concretize, execute_check
from .invariants import (
    BLACKHOLE_BOUND,
    CONVERGENCE_AGREEMENT,
    FIB_CONSISTENCY,
    FRR_WINDOW,
    LOOP_FREEDOM,
    SIM_SANITY,
)

#: warmup for mutant trials — fast timers converge well inside this
_MUTANT_WARMUP = milliseconds(500)


@dataclass(frozen=True)
class FaultMutant:
    """One deliberate breakage and the invariant that must catch it."""

    name: str
    invariant: str
    description: str
    #: builds the (deterministic) trial config the mutant runs under
    config_factory: Callable[[], TrialConfig] = field(compare=False)
    #: patches the converged bundle just before events fire
    apply: Callable[[object], None] = field(compare=False)
    #: tie-break handed to ``configure_backup_routes`` at build time
    backup_tie_break: str = "prefix-length"


@dataclass(frozen=True)
class MutantResult:
    """One row of the self-test matrix."""

    name: str
    expected: str
    #: invariants violated by the *unmutated* baseline (must be empty)
    baseline: Tuple[str, ...]
    #: invariants violated by the mutated run (must be exactly (expected,))
    caught: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.baseline and self.caught == (self.expected,)


def _scenario_config(topology: str, ports: int, label: str) -> TrialConfig:
    return TrialConfig(
        topology=topology,
        ports=ports,
        profile="scenario",
        scenario=label,
        overrides=fast_overrides(),
        warmup=_MUTANT_WARMUP,
    )


_CONCRETE_CACHE: Dict[str, TrialConfig] = {}


def _events_config(topology: str, ports: int, label: str) -> TrialConfig:
    """A Table IV failure pattern as an explicit events profile (cached —
    concretizing runs a warmup)."""
    key = f"{topology}/{ports}/{label}"
    if key not in _CONCRETE_CACHE:
        _CONCRETE_CACHE[key] = concretize(_scenario_config(topology, ports, label))
    return _CONCRETE_CACHE[key]


def _quiet_config(topology: str, ports: int) -> TrialConfig:
    """No failures at all: only the quiescent checks exercise the fault."""
    return TrialConfig(
        topology=topology,
        ports=ports,
        overrides=fast_overrides(),
        warmup=_MUTANT_WARMUP,
    )


# ------------------------------------------------------------ apply hooks


def _withdraw_static_routes(bundle: Any) -> None:
    """Remove every ring backup route after convergence: condition 1
    should fast-reroute but the fall-through has nowhere to fall."""
    for switch in bundle.network.switches():
        for entry in [
            e for e in switch.fib.entries() if e.source == "static"
        ]:
            switch.fib.withdraw(entry.prefix)


def _no_patch(bundle: Any) -> None:
    """The fault is injected at build time (see ``backup_tie_break``)."""


def _invert_fib_tie_break(bundle: Any) -> None:
    """Make every FIB yield *shortest*-prefix-first: the resolver now
    prefers the /15-/16 statics over live routed /24s."""
    for switch in bundle.network.switches():
        fib = switch.fib

        def shortest_first(address: Any, _fib: Any = fib) -> Any:
            matching = [
                e for e in _fib.entries() if e.prefix.contains(address)
            ]
            matching.sort(key=lambda e: e.prefix.length)
            return iter(matching)

        fib.matches = shortest_first


def _drop_lsa_relays(bundle: Any) -> None:
    """Kill LSA relaying (direct floods from the originator still go
    out): routers far from a failure keep permanently stale LSDBs."""
    for protocol in bundle.protocols.values():
        original = protocol._flood

        def relay_blackout(
            lsas: Any, exclude: Any, _original: Any = original
        ) -> Any:
            if exclude is not None:
                return
            _original(lsas, exclude)

        protocol._flood = relay_blackout


def _disable_failure_detection(bundle: Any) -> None:
    """Blind every link-liveness detector: the control plane never hears
    about the failure, so the black hole outlives any bound."""
    for link in bundle.network.links:
        for detector in link._detectors.values():
            detector.observe = lambda up: None


def _corrupt_incremental_spf(bundle: Any) -> None:
    """Sabotage every protocol instance's incremental SPF updates: each
    successfully patched state has its ECMP route sets truncated to a
    single (valid shortest-path) member.  The truncation keeps forwarding
    loop-free and live — only the convergence-agreement differential can
    see it, because the global oracle (whose own incremental path lives
    in the *shared* cache, untouched by this instance-level patch) still
    computes the full ECMP sets."""
    from ..routing.spf_incremental import IncrementalSpfEngine, SpfState

    for protocol in bundle.protocols.values():
        engine = getattr(protocol, "_spf_engine", None)
        if engine is None:
            continue

        def corrupted(
            state: Any, new_fp: Any, delta: Any, _engine: Any = engine
        ) -> Any:
            result = IncrementalSpfEngine._update_state(
                _engine, state, new_fp, delta
            )
            if result is None:
                return None
            patched, touched = result
            routes = {
                prefix: hops if len(hops) <= 1 else (min(hops),)
                for prefix, hops in patched.routes.items()
            }
            return (
                SpfState(
                    patched.origin, patched.fingerprint,
                    patched.dist, patched.first_hops, routes,
                ),
                touched,
            )

        engine._update_state = corrupted


def _leak_one_channel(bundle: Any) -> None:
    """Make one directed channel swallow packets without accounting:
    conservation (sent = delivered + dropped) breaks on that channel."""
    topo = bundle.topology
    agg = topo.pod_members(NodeKind.AGG, 1)[0].name
    tor = topo.pod_members(NodeKind.TOR, 1)[0].name
    channel = bundle.network.link_between(agg, tor).channel_from(agg)
    channel._deliver = lambda packet, epoch: None


# ---------------------------------------------------------------- registry

MUTANTS: Dict[str, FaultMutant] = {}


def _register(mutant: FaultMutant) -> FaultMutant:
    MUTANTS[mutant.name] = mutant
    return mutant


_register(FaultMutant(
    name="backup-routes-disabled",
    invariant=FRR_WINDOW,
    description="ring backup routes withdrawn after convergence; "
                "condition 1 can no longer fast-reroute",
    config_factory=lambda: _scenario_config("f2tree", 6, "C1"),
    apply=_withdraw_static_routes,
))

_register(FaultMutant(
    name="backup-tiebreak-none",
    invariant=LOOP_FREEDOM,
    description="backup routes installed as one /16 ECMP group instead "
                "of the /16-right + /15-left prefix-length rule; the "
                "condition 4 pattern ping-pongs on the ring",
    config_factory=lambda: _events_config("f2tree", 6, "C4"),
    apply=_no_patch,
    backup_tie_break="none",
))

_register(FaultMutant(
    name="fib-tiebreak-inverted",
    invariant=FIB_CONSISTENCY,
    description="FIB match order inverted to shortest-prefix-first on "
                "every switch",
    config_factory=lambda: _quiet_config("f2tree", 6),
    apply=_invert_fib_tie_break,
))

_register(FaultMutant(
    name="lsa-flood-dropped",
    invariant=CONVERGENCE_AGREEMENT,
    description="LSA relaying disabled; distant routers converge on a "
                "stale LSDB that disagrees with the global SPF oracle",
    config_factory=lambda: _events_config("f2tree", 6, "C4"),
    apply=_drop_lsa_relays,
))

_register(FaultMutant(
    name="spf-incremental-corrupted",
    invariant=CONVERGENCE_AGREEMENT,
    description="incremental SPF subtree updates truncate every ECMP "
                "route to one next hop; installed routes disagree with "
                "the full-ECMP global SPF oracle after reconvergence",
    config_factory=lambda: _events_config("f2tree", 6, "C1"),
    apply=_corrupt_incremental_spf,
))

_register(FaultMutant(
    name="detection-disabled",
    invariant=BLACKHOLE_BOUND,
    description="link-failure detectors blinded; the black hole outlives "
                "the quiescence bound although a physical path survives",
    config_factory=lambda: _events_config("fat-tree", 4, "C1"),
    apply=_disable_failure_detection,
))

_register(FaultMutant(
    name="channel-leak",
    invariant=SIM_SANITY,
    description="one directed channel silently swallows packets, "
                "breaking per-channel packet conservation",
    config_factory=lambda: _events_config("fat-tree", 4, "C1"),
    apply=_leak_one_channel,
))


# ---------------------------------------------------------------- self-test

_BASELINE_CACHE: Dict[str, Tuple[str, ...]] = {}


def check_mutant(name: str) -> MutantResult:
    """Run one mutant's diagonal check (baseline clean, mutant caught)."""
    mutant = MUTANTS[name]
    config = mutant.config_factory()
    cache_key = config.canonical_json()
    if cache_key not in _BASELINE_CACHE:
        baseline = execute_check(config)
        _BASELINE_CACHE[cache_key] = tuple(baseline.invariants_violated)
    mutated = execute_check(config, mutant=mutant)
    return MutantResult(
        name=name,
        expected=mutant.invariant,
        baseline=_BASELINE_CACHE[cache_key],
        caught=tuple(mutated.invariants_violated),
    )


def run_selftest() -> List[MutantResult]:
    """The full mutant matrix, in name order."""
    return [check_mutant(name) for name in sorted(MUTANTS)]


def render_selftest(results: List[MutantResult]) -> str:
    lines = [
        f"{'mutant':<26} {'expected invariant':<24} {'caught':<34} verdict",
    ]
    for result in results:
        caught = ",".join(result.caught) or "(none)"
        verdict = "ok" if result.ok else (
            f"FAIL (baseline: {','.join(result.baseline) or 'clean'})"
        )
        lines.append(
            f"{result.name:<26} {result.expected:<24} {caught:<34} {verdict}"
        )
    passed = sum(1 for r in results if r.ok)
    lines.append(f"{passed}/{len(results)} mutants caught by exactly their invariant")
    return "\n".join(lines)
