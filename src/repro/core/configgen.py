"""Switch configuration generation (Quagga/FRR-style).

The paper's §III prototype "configured backup routes in Quagga for each
aggregation and core switch"; deployability — config-only change, no
software — is the whole pitch.  This module renders, per switch, the
configuration a production deployment would push:

* hostname and the bundled L3 interface (the §II-B convention: all ports
  in one interface, one IP);
* an ``router ospf`` stanza: network statement for the interface address,
  ``redistribute connected`` on ToRs (the rack subnet), and the SPF
  throttle timers the simulator models;
* for F²Tree ring switches, the two (or more) ``ip route`` backup statics
  — the complete F²Tree change.

Rendering is pure string generation from the topology + address plan, so
tests can assert the exact artifact operators would review.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..dataplane.params import NetworkParams
from ..topology.graph import NodeKind, Topology, TopologyError
from .backup_routes import backup_routes_for


@dataclass(frozen=True)
class ConfigOptions:
    """Rendering knobs."""

    ospf_process: int = 1
    #: area for all network statements (DCNs use a single area)
    area: str = "0.0.0.0"
    include_spf_throttle: bool = True


def _spf_throttle_line(params: NetworkParams) -> str:
    delay = params.spf_initial_delay // 1_000_000
    hold = params.spf_hold // 1_000_000
    hold_max = params.spf_hold_max // 1_000_000
    return f" timers throttle spf {delay} {hold} {hold_max}"


def render_switch_config(
    topo: Topology,
    switch: str,
    params: Optional[NetworkParams] = None,
    options: Optional[ConfigOptions] = None,
) -> str:
    """The complete configuration file for one switch."""
    params = params or NetworkParams()
    options = options or ConfigOptions()
    node = topo.node(switch)
    if node.kind is NodeKind.HOST:
        raise TopologyError(f"{switch} is a host; hosts have no switch config")
    if node.ip is None:
        raise TopologyError(f"{switch} has no address; run assign_addresses")

    lines: List[str] = [
        "!",
        f"hostname {switch}",
        "!",
        "interface bundle0",
        f" description all ports bundled (layer-3, {topo.degree(switch)} members)",
        f" ip address {node.ip}/32",
        "!",
    ]

    backups = backup_routes_for(topo, switch)
    if backups:
        lines.append("! F2Tree backup routes: shorter prefixes than any OSPF")
        lines.append("! route; used only when every longer match is dead")
        for route in backups:
            lines.append(f"ip route {route.prefix} {route.next_hop}")
        lines.append("!")

    lines.append(f"router ospf {options.ospf_process}")
    lines.append(f" network {node.ip}/32 area {options.area}")
    if node.subnet is not None:
        lines.append(" redistribute connected")
        lines.append(f" ! rack subnet {node.subnet}")
    if options.include_spf_throttle:
        lines.append(_spf_throttle_line(params))
    lines.append("!")
    return "\n".join(lines)


def render_fabric_configs(
    topo: Topology,
    params: Optional[NetworkParams] = None,
    options: Optional[ConfigOptions] = None,
) -> Dict[str, str]:
    """Configuration files for every switch of a fabric."""
    return {
        node.name: render_switch_config(topo, node.name, params, options)
        for node in topo.switches()
    }


def config_diff(before: Dict[str, str], after: Dict[str, str]) -> Dict[str, List[str]]:
    """Per-switch added lines between two fabric configurations.

    The F²Tree deployment review artifact: diffing a fat tree's configs
    against the rewired fabric's shows *only* the static backup routes
    (plus hostname/interface churn for renamed gear), demonstrating the
    "no software, no protocol changes" claim line by line.
    """
    added: Dict[str, List[str]] = {}
    for name, text in after.items():
        old_lines = set(before.get(name, "").splitlines())
        new_lines = [l for l in text.splitlines() if l not in old_lines]
        if new_lines:
            added[name] = new_lines
    return added
