"""Table I: scalability and deployment comparison.

Closed-form switch/node counts for 3-layer DCNs built from homogeneous
``N``-port switches, for every row of the paper's Table I, plus the
immediate-backup-link counts of §II-A/§II-B.  The builders in
:mod:`repro.topology` and :mod:`repro.core.f2tree` are validated against
these formulas in the test suite — the formulas and the constructions are
independent implementations that must agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ScalabilityRow:
    """One row of Table I."""

    solution: str
    switches: Optional[int]
    nodes: Optional[int]
    modifies_routing_protocol: Optional[bool]
    modifies_data_plane: Optional[bool]

    def as_tuple(self) -> tuple:
        return (
            self.solution,
            self.switches,
            self.nodes,
            self.modifies_routing_protocol,
            self.modifies_data_plane,
        )


def _exact(value: Fraction, what: str) -> int:
    if value.denominator != 1:
        raise ValueError(f"{what} = {value} is not an integer; invalid N")
    return int(value)


def fat_tree_row(ports: int) -> ScalabilityRow:
    n = Fraction(ports)
    return ScalabilityRow(
        "fat-tree",
        _exact(5 * n * n / 4, "switches"),
        _exact(n ** 3 / 4, "nodes"),
        None,
        None,
    )


def vl2_row(ports: int) -> ScalabilityRow:
    """The paper's VL2 accounting (5N/2 switches, N^2/2 nodes)."""
    n = Fraction(ports)
    return ScalabilityRow(
        "vl2",
        _exact(5 * n / 2, "switches"),
        _exact(n * n / 2, "nodes"),
        None,
        None,
    )


def f2tree_row(ports: int) -> ScalabilityRow:
    n = Fraction(ports)
    return ScalabilityRow(
        "f2tree",
        _exact(5 * n * n / 4 - 7 * n / 2 + 2, "switches"),
        _exact(n ** 3 / 4 - n * n + n, "nodes"),
        False,
        False,
    )


def aspen_row(ports: int, fault_tolerance: int) -> ScalabilityRow:
    if fault_tolerance < 1:
        raise ValueError("Table I's Aspen row requires f >= 1")
    n = Fraction(ports)
    f1 = Fraction(fault_tolerance + 1)
    return ScalabilityRow(
        f"aspen<f={fault_tolerance},0>",
        _exact(5 * n * n / (4 * f1), "switches"),
        _exact(n ** 3 / (4 * f1), "nodes"),
        True,
        False,
    )


def f10_row(ports: int) -> ScalabilityRow:
    n = Fraction(ports)
    return ScalabilityRow(
        "f10",
        _exact(5 * n * n / 4, "switches"),
        _exact(n ** 3 / 4, "nodes"),
        True,
        True,
    )


def ddc_row() -> ScalabilityRow:
    return ScalabilityRow("ddc", None, None, True, True)


def table_one(ports: int, aspen_fault_tolerance: int = 1) -> List[ScalabilityRow]:
    """All rows of Table I for ``ports``-port switches."""
    return [
        fat_tree_row(ports),
        vl2_row(ports),
        f2tree_row(ports),
        aspen_row(ports, aspen_fault_tolerance),
        f10_row(ports),
        ddc_row(),
    ]


def node_reduction_vs_fat_tree(ports: int) -> float:
    """Fractional loss of supported nodes, F²Tree vs fat tree (§II-D).

    ``(N^2 - N) / (N^3/4) = 4(N-1)/N^2`` — about 3 % at N = 128 (the paper
    rounds this to "about 2 %"); vanishes as the network scales.
    """
    return 4 * (ports - 1) / (ports * ports)


def immediate_backup_links(ports: int, solution: str) -> Dict[str, int]:
    """Immediate backup links per upward / downward link (§II-A, §II-B)."""
    half = ports // 2
    if solution == "fat-tree":
        return {"upward": half - 1, "downward": 0}
    if solution == "f2tree":
        # N/2 - 2 remaining ECMP uplinks + 2 across, and the 2 across down
        return {"upward": half, "downward": 2}
    raise ValueError(f"no backup-link accounting for {solution!r}")


def render_table_one(ports: int, aspen_fault_tolerance: int = 1) -> str:
    """ASCII rendering of Table I for a given port count."""
    rows = table_one(ports, aspen_fault_tolerance)
    fmt_bool = {True: "yes", False: "no", None: "n/a"}
    lines = [
        f"Table I @ N={ports}:",
        f"{'solution':<16} {'switches':>10} {'nodes':>10} "
        f"{'mod-routing':>12} {'mod-dataplane':>14}",
    ]
    for row in rows:
        switches = "n/a" if row.switches is None else str(row.switches)
        nodes = "n/a" if row.nodes is None else str(row.nodes)
        lines.append(
            f"{row.solution:<16} {switches:>10} {nodes:>10} "
            f"{fmt_bool[row.modifies_routing_protocol]:>12} "
            f"{fmt_bool[row.modifies_data_plane]:>14}"
        )
    return "\n".join(lines)
