"""Failure-condition taxonomy (§II-C).

Given a switch *Sx* whose downward link on a flow's path has failed, plus
the set of concurrently failed links, this module decides which of the
paper's four conditions holds and therefore whether F²Tree's fast reroute
succeeds — and at what path cost:

1. *Sx*'s right across link and the right neighbor's downward link work →
   reroute via the right neighbor (**+1 hop**);
2. a run of right neighbors also lost their downward links but the ring is
   intact up to some *Sy* with a working downward link → packets relay
   around the ring (**+k hops**);
3. *Sx*'s right across link failed, but its left across link and the left
   neighbor's downward link work → reroute leftward (**+1 hop**);
4. anything else — most famously *Sy*'s right across and downward links
   both failed — makes packets ping-pong on the ring until the control
   plane converges: fast reroute fails and recovery degrades to fat tree.

The classifier is *predictive*: experiments assert that the simulated
outcome (fast recovery or OSPF-time recovery, and the extra path length
during rerouting) matches what this module computed from the topology
alone.  The left walk is one hop at most by design: a left neighbor whose
own downward link failed would forward *rightward* (its longer-prefix
backup) straight back to Sx.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional, Tuple

from ..topology.graph import LinkKind, NodeKind, Topology, TopologyError

#: canonical (sorted) endpoint pair identifying a failed link
LinkKey = Tuple[str, str]


class FailureCondition(enum.Enum):
    """The §II-C condition a downward-failure scenario belongs to."""

    CONDITION_1 = 1
    CONDITION_2 = 2
    CONDITION_3 = 3
    CONDITION_4 = 4
    #: both across links of Sx failed — the parenthetical degradation case
    BOTH_ACROSS_FAILED = 5
    #: Sx's downward link is not actually failed
    NO_DOWNWARD_FAILURE = 6

    @property
    def fast_reroute_succeeds(self) -> bool:
        return self in (
            FailureCondition.CONDITION_1,
            FailureCondition.CONDITION_2,
            FailureCondition.CONDITION_3,
        )


@dataclass(frozen=True)
class FailureAnalysis:
    """Classification result."""

    condition: FailureCondition
    #: extra hops relative to the pre-failure path while fast rerouting
    #: (None when fast reroute fails)
    extra_hops: Optional[int]
    #: the ring switch that finally forwards downward (None on failure)
    egress: Optional[str]
    detail: str

    @property
    def fast_reroute_succeeds(self) -> bool:
        return self.condition.fast_reroute_succeeds


def _link_key(a: str, b: str) -> LinkKey:
    return (a, b) if a <= b else (b, a)


def classify_downward_failure(
    topo: Topology,
    sx: str,
    down_peer_of: Callable[[str], Optional[str]],
    failed: FrozenSet[LinkKey],
) -> FailureAnalysis:
    """Classify a downward-link failure at ``sx`` (see module docstring).

    ``down_peer_of(member)`` names the ring member's downward next hop
    toward the destination (None when no such link exists).
    """
    node = topo.node(sx)
    if node.pod is None:
        raise TopologyError(f"{sx} is not in a pod")
    ring = topo.pod_members(node.kind, node.pod)
    size = len(ring)
    index = next(i for i, n in enumerate(ring) if n.name == sx)

    def down_alive(member: str) -> bool:
        peer = down_peer_of(member)
        if peer is None or not topo.links_between(member, peer):
            return False
        return _link_key(member, peer) not in failed

    def across_alive(a: str, b: str) -> bool:
        links = [
            l for l in topo.links_between(a, b) if l.kind is LinkKind.ACROSS
        ]
        return bool(links) and _link_key(a, b) not in failed

    if down_alive(sx):
        return FailureAnalysis(
            FailureCondition.NO_DOWNWARD_FAILURE, 0, sx,
            f"{sx}'s downward link is up",
        )

    right = ring[(index + 1) % size].name
    left = ring[(index - 1) % size].name
    right_across_ok = across_alive(sx, right)
    left_across_ok = across_alive(sx, left)

    if not right_across_ok and not left_across_ok:
        return FailureAnalysis(
            FailureCondition.BOTH_ACROSS_FAILED, None, None,
            f"both across links of {sx} failed; degrades to fat tree",
        )

    if right_across_ok:
        # walk the ring rightward along consecutive across links
        previous = sx
        for step in range(1, size):
            current = ring[(index + step) % size].name
            if not across_alive(previous, current):
                break
            if down_alive(current):
                condition = (
                    FailureCondition.CONDITION_1
                    if step == 1
                    else FailureCondition.CONDITION_2
                )
                return FailureAnalysis(
                    condition, step, current,
                    f"rightward relay of {step} hop(s) reaches {current}",
                )
            previous = current
        return FailureAnalysis(
            FailureCondition.CONDITION_4, None, None,
            f"rightward walk from {sx} blocked before a working downward "
            f"link; packets ping-pong until the control plane converges",
        )

    # right across failed; F2Tree falls back to the left (shorter-prefix) route
    if down_alive(left):
        return FailureAnalysis(
            FailureCondition.CONDITION_3, 1, left,
            f"right across link failed; leftward reroute via {left}",
        )
    return FailureAnalysis(
        FailureCondition.CONDITION_4, None, None,
        f"left neighbor {left} has no working downward link and would "
        f"bounce packets back rightward",
    )


def agg_down_peer(topo: Topology, dest_tor: str) -> Callable[[str], Optional[str]]:
    """``down_peer_of`` for aggregation rings: every agg's downward next
    hop toward the destination is the destination ToR itself."""

    def down_peer(member: str) -> Optional[str]:
        return dest_tor if topo.links_between(member, dest_tor) else None

    return down_peer


def core_down_peer(topo: Topology, dest_pod: int) -> Callable[[str], Optional[str]]:
    """``down_peer_of`` for core rings: core group *g* reaches the
    destination pod through that pod's position-*g* aggregation switch."""

    def down_peer(member: str) -> Optional[str]:
        group = topo.node(member).pod
        assert group is not None
        candidates = [
            n.name
            for n in topo.pod_members(NodeKind.AGG, dest_pod)
            if n.position == group and topo.links_between(member, n.name)
        ]
        return candidates[0] if candidates else None

    return down_peer


def analyze_scenario(
    topo: Topology,
    sx: str,
    dest_tor: str,
    failed: FrozenSet[LinkKey],
) -> FailureAnalysis:
    """Convenience wrapper choosing the right ``down_peer_of`` for ``sx``."""
    node = topo.node(sx)
    if node.kind is NodeKind.CORE:
        dest_pod = topo.node(dest_tor).pod
        assert dest_pod is not None
        return classify_downward_failure(
            topo, sx, core_down_peer(topo, dest_pod), failed
        )
    return classify_downward_failure(topo, sx, agg_down_peer(topo, dest_tor), failed)
