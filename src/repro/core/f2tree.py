"""F²Tree topology construction (§II-B) — the paper's primary contribution.

Two entry points:

* :func:`f2tree` — the general ``N``-port, 3-layer F²Tree.  Each
  aggregation and core switch reserves two ports (one up, one down) for
  *across links* joining it to its pod neighbors, so the switches of every
  pod form a ring.  Working out the port arithmetic (with ``r`` reserved
  ports):

  - an agg has ``(N-r)/2`` downward and ``(N-r)/2`` upward ports, so a pod
    holds ``(N-r)/2`` ToRs and (from the ToRs' ``N/2`` uplinks) ``N/2``
    aggs;
  - a core has ``N-r`` pod-facing ports, so there are ``N-r`` pods, and
    core *group* ``i`` (the cores attached to agg ``i`` of every pod, a pod
    of the core layer by the paper's definition) has ``(N-r)/2`` members;
  - hosts: ``(N-r) * (N-r)/2 * N/2 = N(N-r)^2/4`` — with ``r = 2`` exactly
    Table I's ``N^3/4 - N^2 + N``.

* :func:`rewire_fat_tree_prototype` — the paper's *testbed* construction
  (Fig 1(b)): start from the standard 4-port fat tree and apply the
  literal rewiring, returning both the new topology and the
  :class:`RewiringPlan` (which links were unplugged and which were added —
  the operator's work order).  Each pod's two aggs give up one uplink and
  their downlink to one ToR (which becomes unsupported) and get a double
  across link; each core gives up two pod links and gets a double across
  link to its group partner.

``across_ports=4`` builds the §II-C extension: rings additionally link
neighbors at distance 2, tolerating the condition-4 pattern that defeats
the 2-port design (exercised by the ablation benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..topology.fattree import fat_tree
from ..topology.graph import Link, LinkKind, Node, NodeKind, Topology, TopologyError


@dataclass
class RewiringPlan:
    """The physical work order produced by a rewiring.

    ``removed``/``added`` are endpoint pairs; ``unsupported_tors`` lists
    ToRs whose uplinks were all consumed (their racks are the "nodes
    supported" cost in Table I).
    """

    removed: List[Tuple[str, str]] = field(default_factory=list)
    added: List[Tuple[str, str]] = field(default_factory=list)
    unsupported_tors: List[str] = field(default_factory=list)

    @property
    def links_touched(self) -> int:
        return len(self.removed) + len(self.added)

    def rewired_links_of(self, switch: str) -> int:
        """How many of this switch's links the plan touches (paper: 2)."""
        removed = sum(1 for a, b in self.removed if switch in (a, b))
        added = sum(1 for a, b in self.added if switch in (a, b))
        return max(removed, added)


def _ring_distances(across_ports: int) -> List[int]:
    if across_ports < 2 or across_ports % 2:
        raise TopologyError(
            f"across_ports must be a positive even number, got {across_ports}"
        )
    return list(range(1, across_ports // 2 + 1))


def _add_ring(topo: Topology, members: List[Node], distances: List[int]) -> None:
    """Link ring ``members`` (in position order) at the given distances.

    A ring of two at distance 1 yields the paper's *double* across link
    (Fig 1(b): "two links between S16 and S15 to form a ring").  Distance
    ``d`` links are skipped when the ring is too small for them to be
    distinct from the shorter-distance links (e.g. distance 2 in a ring of
    3 coincides with distance 1).
    """
    n = len(members)
    if n < 2:
        raise TopologyError("an across ring needs at least 2 members")
    for d in distances:
        if d > 1 and n <= 2 * (d - 1) + 1:
            continue  # coincides with a shorter distance: no distinct link
        if n == 2 and d == 1:
            # double link between the pair
            topo.add_link(members[0].name, members[1].name, LinkKind.ACROSS)
            topo.add_link(members[0].name, members[1].name, LinkKind.ACROSS)
            continue
        if n == 2 * d:
            # distance d connects opposite members: one link per pair
            for i in range(d):
                topo.add_link(
                    members[i].name, members[(i + d) % n].name, LinkKind.ACROSS
                )
            continue
        for i in range(n):
            topo.add_link(members[i].name, members[(i + d) % n].name, LinkKind.ACROSS)


def f2tree(
    ports: int,
    hosts_per_tor: Optional[int] = None,
    across_ports: int = 2,
) -> Topology:
    """Build an ``N``-port, 3-layer F²Tree directly.

    Node naming matches :func:`repro.topology.fattree.fat_tree`
    (``tor-<pod>-<t>``, ``agg-<pod>-<a>``, ``core-<group>-<c>``).
    """
    distances = _ring_distances(across_ports)
    r = across_ports
    if ports % 2 or ports - r < 2 or (ports - r) % 2:
        raise TopologyError(
            f"f2tree needs even ports with ports - across_ports >= 2, "
            f"got ports={ports}, across_ports={r}"
        )
    half = ports // 2
    pods = ports - r
    tors_per_pod = (ports - r) // 2
    cores_per_group = (ports - r) // 2
    if tors_per_pod < 1:
        raise TopologyError(f"{ports}-port f2tree supports no ToRs")
    if half < 2 or cores_per_group < 2:
        raise TopologyError(
            f"{ports}-port f2tree cannot form across rings "
            f"(agg ring {half}, core ring {cores_per_group}); "
            f"use rewire_fat_tree_prototype for the 4-port testbed"
        )
    if hosts_per_tor is None:
        hosts_per_tor = half
    if hosts_per_tor > half:
        raise TopologyError(
            f"{hosts_per_tor} hosts per ToR exceed the {half} free ports"
        )

    topo = Topology(
        f"f2tree-{ports}" + (f"-x{r}" if r != 2 else ""),
        params={
            "ports": ports,
            "hosts_per_tor": hosts_per_tor,
            "across_ports": r,
            "family": "f2tree",
        },
    )

    for pod in range(pods):
        for t in range(tors_per_pod):
            topo.add_node(Node(f"tor-{pod}-{t}", NodeKind.TOR, pod=pod, position=t))
        for a in range(half):
            topo.add_node(Node(f"agg-{pod}-{a}", NodeKind.AGG, pod=pod, position=a))
        for t in range(tors_per_pod):
            for h in range(hosts_per_tor):
                host = topo.add_node(
                    Node(f"host-{pod}-{t}-{h}", NodeKind.HOST, pod=pod, position=h)
                )
                topo.add_link(host.name, f"tor-{pod}-{t}", LinkKind.HOST)
        for t in range(tors_per_pod):
            for a in range(half):
                topo.add_link(f"tor-{pod}-{t}", f"agg-{pod}-{a}", LinkKind.TOR_AGG)
        _add_ring(topo, topo.pod_members(NodeKind.AGG, pod), distances)

    for group in range(half):
        for c in range(cores_per_group):
            topo.add_node(
                Node(f"core-{group}-{c}", NodeKind.CORE, pod=group, position=c)
            )
        for c in range(cores_per_group):
            core = f"core-{group}-{c}"
            for pod in range(pods):
                topo.add_link(f"agg-{pod}-{group}", core, LinkKind.AGG_CORE)
        _add_ring(topo, topo.pod_members(NodeKind.CORE, group), distances)

    # agg/core up+down usage must leave exactly the reserved across ports
    topo.validate_port_budget(ports, (NodeKind.TOR, NodeKind.AGG, NodeKind.CORE))
    return topo


def rewire_fat_tree_prototype(
    fat: Optional[Topology] = None,
) -> Tuple[Topology, RewiringPlan]:
    """Rewire a 4-port fat tree into the paper's testbed prototype
    (Fig 1(a) -> Fig 1(b)).

    In every pod, both aggs drop their link to the pod's position-0 ToR
    (that rack becomes unsupported; its hosts are removed from the
    topology), each agg drops one core uplink, and the agg pair gets a
    double across link.  In every core group, each core drops two pod
    links (complementarily, so every agg keeps exactly one uplink) and the
    core pair gets a double across link.  Within core group ``g``, the
    position-0 core keeps the outer pods {0, k-1} and the position-1 core
    keeps the middle pods — matching the surviving testbed paths
    (S1-S10-S20-S16-S8 before recovery, S1-S9-S17-S15-S8 after).
    """
    if fat is None:
        fat = fat_tree(4)
    ports = fat.params.get("ports")
    if ports != 4 or fat.params.get("family") != "fat-tree":
        raise TopologyError(
            "rewire_fat_tree_prototype expects the standard 4-port fat tree"
        )

    topo = Topology(
        "f2tree-prototype-4",
        params={
            "ports": 4,
            "hosts_per_tor": fat.params.get("hosts_per_tor", 2),
            "across_ports": 2,
            "family": "f2tree-prototype",
        },
    )
    plan = RewiringPlan()

    dropped_nodes: set[str] = set()
    for pod in range(4):
        orphan_tor = f"tor-{pod}-0"
        dropped_nodes.add(orphan_tor)
        plan.unsupported_tors.append(orphan_tor)
        for host in fat.host_of_tor(orphan_tor):
            dropped_nodes.add(host.name)

    for node in fat.nodes.values():
        if node.name in dropped_nodes:
            continue
        topo.add_node(
            Node(node.name, node.kind, pod=node.pod, position=node.position)
        )

    # Which pods each core keeps.  In Fig 1(b), S17 (core-0-0) and S20
    # (core-1-1) keep the outer pods {0, 3} while S18/S19 keep the middle
    # pods {1, 2}: outer iff group+position is even.
    def kept_pods(group: int, position: int) -> Tuple[int, int]:
        return (0, 3) if (group + position) % 2 == 0 else (1, 2)

    for link in fat.links.values():
        if link.a in dropped_nodes or link.b in dropped_nodes:
            plan.removed.append((link.a, link.b))
            continue
        if link.kind is LinkKind.AGG_CORE:
            agg, core = (
                (link.a, link.b) if link.a.startswith("agg") else (link.b, link.a)
            )
            agg_pod = fat.node(agg).pod
            core_node = fat.node(core)
            assert agg_pod is not None
            assert core_node.pod is not None and core_node.position is not None
            if agg_pod not in kept_pods(core_node.pod, core_node.position):
                plan.removed.append((link.a, link.b))
                continue
        topo.add_link(link.a, link.b, link.kind)

    for pod in range(4):
        aggs = topo.pod_members(NodeKind.AGG, pod)
        _add_ring(topo, aggs, [1])
        plan.added.append((aggs[0].name, aggs[1].name))
        plan.added.append((aggs[0].name, aggs[1].name))
    for group in range(2):
        cores = topo.pod_members(NodeKind.CORE, group)
        _add_ring(topo, cores, [1])
        plan.added.append((cores[0].name, cores[1].name))
        plan.added.append((cores[0].name, cores[1].name))

    topo.validate_port_budget(4, (NodeKind.TOR, NodeKind.AGG, NodeKind.CORE))
    return topo, plan


def across_links(topo: Topology) -> List[Link]:
    """All across (ring) links of an F²Tree-style topology."""
    return [l for l in topo.links.values() if l.kind is LinkKind.ACROSS]
