"""Pre-deployment validation of an F²Tree fabric.

An operator about to rewire a production DCN wants machine-checked
answers to "did we wire and configure this correctly?" before cutover.
:func:`validate_deployment` audits a topology + configured network against
every structural invariant the design depends on:

* every aggregation/core switch sits in a complete across ring
  (positions consecutive, wrap-around closed, no gaps);
* port budgets are respected;
* every ring switch carries its backup static routes, with prefixes that
  (a) nest correctly, (b) cover every host subnet, (c) are strictly
  shorter than any prefix the routing protocol can install, and (d) avoid
  covering switch loopbacks;
* the preference order is rightward-first (the §II-B loop-avoidance rule);
* the address plan is consistent (hosts inside their rack subnet, all
  addresses unique).

Each violated invariant yields a :class:`Finding` with severity and a
human-actionable message; an empty list means "safe to deploy".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from ..dataplane.network import Network
from ..net.fib import FibEntry
from ..topology.graph import LinkKind, NodeKind, Topology
from .backup_routes import ring_neighbors_of


class Severity(enum.Enum):
    ERROR = "error"  # fast reroute will not work
    WARNING = "warning"  # suspicious but survivable


@dataclass(frozen=True)
class Finding:
    severity: Severity
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.subject}: {self.message}"


def _check_rings(topo: Topology, findings: List[Finding]) -> None:
    for kind in (NodeKind.AGG, NodeKind.CORE, NodeKind.SPINE, NodeKind.INTERMEDIATE):
        for pod in topo.pods_of_kind(kind):
            members = topo.pod_members(kind, pod)
            with_across = [
                m for m in members
                if any(l.kind is LinkKind.ACROSS for l in topo.links_of(m.name))
            ]
            if not with_across:
                continue  # this layer is not ringed (e.g. plain fat tree)
            if len(with_across) != len(members):
                missing = {m.name for m in members} - {m.name for m in with_across}
                findings.append(
                    Finding(
                        Severity.ERROR, f"{kind.value} pod {pod}",
                        f"ring is incomplete: {sorted(missing)} have no across links",
                    )
                )
                continue
            size = len(members)
            for index, member in enumerate(members):
                right = members[(index + 1) % size]
                across = [
                    l
                    for l in topo.links_between(member.name, right.name)
                    if l.kind is LinkKind.ACROSS
                ]
                expected = 2 if size == 2 and index == 0 else (0 if size == 2 else 1)
                if size == 2 and index == 1:
                    continue  # the pair was checked from index 0
                if len(across) != expected:
                    findings.append(
                        Finding(
                            Severity.ERROR, member.name,
                            f"expected {expected} across link(s) to ring "
                            f"neighbor {right.name}, found {len(across)}",
                        )
                    )


def _check_ports(topo: Topology, findings: List[Finding]) -> None:
    ports = topo.params.get("ports")
    if ports is None:
        return
    for switch in topo.switches():
        degree = topo.degree(switch.name)
        if degree > ports:
            findings.append(
                Finding(
                    Severity.ERROR, switch.name,
                    f"uses {degree} ports but switches have {ports}",
                )
            )


def _check_addressing(topo: Topology, findings: List[Finding]) -> None:
    seen: Dict[int, str] = {}
    for node in topo.nodes.values():
        if node.ip is None:
            findings.append(
                Finding(Severity.ERROR, node.name, "no address assigned")
            )
            continue
        other = seen.get(node.ip.value)
        if other is not None:
            findings.append(
                Finding(
                    Severity.ERROR, node.name,
                    f"address {node.ip} collides with {other}",
                )
            )
        seen[node.ip.value] = node.name
    for tor in topo.nodes_of_kind(NodeKind.TOR, NodeKind.LEAF):
        if tor.subnet is None:
            findings.append(
                Finding(Severity.ERROR, tor.name, "rack has no subnet")
            )
            continue
        for host in topo.host_of_tor(tor.name):
            if host.ip is not None and host.ip not in tor.subnet:
                findings.append(
                    Finding(
                        Severity.ERROR, host.name,
                        f"address {host.ip} outside rack subnet {tor.subnet}",
                    )
                )


def _check_backup_routes(
    topo: Topology, network: Network, findings: List[Finding]
) -> None:
    rack_subnets = [
        t.subnet for t in topo.nodes_of_kind(NodeKind.TOR, NodeKind.LEAF)
        if t.subnet is not None
    ]
    loopbacks = [
        s.ip for s in topo.switches()
        if s.ip is not None and s.kind not in (NodeKind.TOR, NodeKind.LEAF)
    ]
    for spec in topo.switches():
        neighbors = ring_neighbors_of(topo, spec.name)
        if neighbors is None:
            continue
        switch = network.switch(spec.name)
        statics: List[FibEntry] = sorted(
            (e for e in switch.fib.entries() if e.source == "static"),
            key=lambda e: -e.prefix.length,
        )
        if not statics:
            findings.append(
                Finding(
                    Severity.ERROR, spec.name,
                    "ring switch has no backup static routes configured",
                )
            )
            continue
        expected = len(neighbors.ordered)
        if len(statics) != expected:
            findings.append(
                Finding(
                    Severity.ERROR, spec.name,
                    f"{len(statics)} backup route(s) for {expected} across "
                    f"neighbor(s)",
                )
            )
        # preference order must follow the rightward-first neighbor order
        for entry, neighbor in zip(statics, neighbors.ordered):
            if entry.next_hops != (neighbor,):
                findings.append(
                    Finding(
                        Severity.ERROR, spec.name,
                        f"backup {entry.prefix} points at "
                        f"{entry.next_hops}, expected ({neighbor},)",
                    )
                )
        # nesting: each shorter prefix must cover the longer one
        for longer, shorter in zip(statics, statics[1:]):
            if shorter.prefix.length >= longer.prefix.length:
                findings.append(
                    Finding(
                        Severity.ERROR, spec.name,
                        f"backup prefixes not strictly shortening: "
                        f"{longer.prefix} then {shorter.prefix}",
                    )
                )
            if not shorter.prefix.contains(longer.prefix):
                findings.append(
                    Finding(
                        Severity.ERROR, spec.name,
                        f"backup {shorter.prefix} does not cover "
                        f"{longer.prefix}",
                    )
                )
        primary = statics[0].prefix
        for subnet in rack_subnets:
            if not primary.contains(subnet):
                findings.append(
                    Finding(
                        Severity.ERROR, spec.name,
                        f"backup {primary} misses rack subnet {subnet}",
                    )
                )
            if subnet.length <= primary.length:
                findings.append(
                    Finding(
                        Severity.ERROR, spec.name,
                        f"rack subnet {subnet} not longer than backup "
                        f"{primary}: the protocol route would lose",
                    )
                )
        for loopback in loopbacks:
            for entry in statics:
                if loopback in entry.prefix:
                    findings.append(
                        Finding(
                            Severity.WARNING, spec.name,
                            f"backup {entry.prefix} also covers switch "
                            f"loopback {loopback}",
                        )
                    )
                    break


def validate_deployment(topo: Topology, network: Network) -> List[Finding]:
    """Run every check; empty result means the fabric is deploy-ready."""
    findings: List[Finding] = []
    _check_rings(topo, findings)
    _check_ports(topo, findings)
    _check_addressing(topo, findings)
    _check_backup_routes(topo, network, findings)
    return findings


def render_findings(findings: List[Finding]) -> str:
    if not findings:
        return "deployment validation: PASS (no findings)"
    lines = [f"deployment validation: {len(findings)} finding(s)"]
    lines.extend(f"  {finding}" for finding in findings)
    return "\n".join(lines)
