"""The paper's contribution: F²Tree construction, configuration, analysis.

* :mod:`~repro.core.f2tree` — topology builders and the rewiring plan;
* :mod:`~repro.core.backup_routes` — the two static backup routes per ring
  switch (Table II) and their installation;
* :mod:`~repro.core.failure_analysis` — the §II-C failure-condition
  taxonomy as an executable classifier;
* :mod:`~repro.core.scalability` — Table I's closed forms;
* :mod:`~repro.core.adapt` — the §V adaptations to Leaf-Spine and VL2.
"""

from .adapt import f2_leaf_spine, f2_vl2
from .configgen import (
    ConfigOptions,
    config_diff,
    render_fabric_configs,
    render_switch_config,
)
from .backup_routes import (
    RING_KINDS,
    RingNeighbors,
    backup_prefix_chain,
    backup_routes_for,
    configure_backup_routes,
    render_routing_table,
    ring_neighbors_of,
)
from .f2tree import RewiringPlan, across_links, f2tree, rewire_fat_tree_prototype
from .validation import (
    Finding,
    Severity,
    render_findings,
    validate_deployment,
)
from .failure_analysis import (
    FailureAnalysis,
    FailureCondition,
    agg_down_peer,
    analyze_scenario,
    classify_downward_failure,
    core_down_peer,
)
from .scalability import (
    ScalabilityRow,
    aspen_row,
    ddc_row,
    f10_row,
    f2tree_row,
    fat_tree_row,
    immediate_backup_links,
    node_reduction_vs_fat_tree,
    render_table_one,
    table_one,
    vl2_row,
)

__all__ = [
    "f2_leaf_spine",
    "f2_vl2",
    "ConfigOptions",
    "config_diff",
    "render_fabric_configs",
    "render_switch_config",
    "RING_KINDS",
    "RingNeighbors",
    "backup_prefix_chain",
    "backup_routes_for",
    "configure_backup_routes",
    "render_routing_table",
    "ring_neighbors_of",
    "RewiringPlan",
    "across_links",
    "f2tree",
    "rewire_fat_tree_prototype",
    "Finding",
    "Severity",
    "render_findings",
    "validate_deployment",
    "FailureAnalysis",
    "FailureCondition",
    "agg_down_peer",
    "analyze_scenario",
    "classify_downward_failure",
    "core_down_peer",
    "ScalabilityRow",
    "aspen_row",
    "ddc_row",
    "f10_row",
    "f2tree_row",
    "fat_tree_row",
    "immediate_backup_links",
    "node_reduction_vs_fat_tree",
    "render_table_one",
    "table_one",
    "vl2_row",
]
