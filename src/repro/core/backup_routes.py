"""Backup static-route configuration (§II-B, Table II).

For every switch in an across ring, F²Tree configures static routes:

* the **DCN prefix** (``10.11.0.0/16``, covering every host) via the
  *rightward* across neighbor, and
* the **covering prefix** (``10.10.0.0/15``) via the *leftward* neighbor.

The deliberate length asymmetry is the loop-avoidance trick of §II-B: when
two adjacent switches both lose their downward links (condition 2), both
prefer their *rightward* route, so packets travel around the ring in one
direction instead of ping-ponging.  Equal-length backups would loop — the
``tie_break='none'`` knob exists so tests can demonstrate exactly that.

With the 4-across-port extension the chain continues with ever-shorter
covering prefixes: right distance-2 gets ``/14``, left distance-2 ``/13``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dataplane.network import Network
from ..net.ip import Prefix
from ..routing.static import StaticRoute, install_static_routes
from ..topology.addressing import DCN_PREFIX
from ..topology.graph import LinkKind, NodeKind, Topology, TopologyError

#: Kinds of switch that participate in across rings.
RING_KINDS = (NodeKind.AGG, NodeKind.CORE, NodeKind.SPINE, NodeKind.INTERMEDIATE)


@dataclass(frozen=True)
class RingNeighbors:
    """A switch's across neighbors in backup-preference order.

    Preference goes *rightward first* — right distance 1, right distance 2,
    ... then left distance 1, 2, ...  For the 2-port design this is the
    paper's (right, left) pair; for the 4-port extension the
    rightward-first order is what lets a packet keep progressing around
    the ring past a switch whose own rightward links are dead (otherwise
    the condition-4 ping-pong would survive the extension).
    """

    #: neighbor names ordered by preference: right-1, right-2, ..., left-1,...
    ordered: tuple

    @property
    def right(self) -> str:
        return self.ordered[0]

    @property
    def left(self) -> str:
        return self.ordered[-1] if len(self.ordered) > 1 else self.ordered[0]


def ring_neighbors_of(topo: Topology, switch: str) -> Optional[RingNeighbors]:
    """Across neighbors of ``switch`` in preference order, or None when the
    switch has no across links.

    Rightward means increasing ring position (wrapping); the paper's
    "the leftmost switch is considered to be a neighbor to the rightmost
    one".  A two-member ring (double link) has right == left.
    """
    node = topo.node(switch)
    across = [l for l in topo.links_of(switch) if l.kind is LinkKind.ACROSS]
    if not across:
        return None
    if node.pod is None or node.position is None:
        raise TopologyError(f"{switch} has across links but no pod/position")
    ring = topo.pod_members(node.kind, node.pod)
    size = len(ring)
    index = next(i for i, n in enumerate(ring) if n.name == switch)
    neighbor_names = {l.other(switch) for l in across}

    ordered: List[str] = []
    for distance in range(1, size):
        right = ring[(index + distance) % size].name
        if right in neighbor_names and right not in ordered:
            ordered.append(right)
    for distance in range(1, size):
        left = ring[(index - distance) % size].name
        if left in neighbor_names and left not in ordered:
            ordered.append(left)
    if set(ordered) != neighbor_names:
        raise TopologyError(
            f"{switch}: across links {sorted(neighbor_names)} do not follow "
            f"ring positions {[n.name for n in ring]}"
        )
    return RingNeighbors(tuple(ordered))


def backup_prefix_chain(count: int, dcn_prefix: Prefix = DCN_PREFIX) -> List[Prefix]:
    """``count`` nested prefixes, each one bit shorter than the previous,
    starting at the DCN prefix.  Entry *i* backs across neighbor *i* in
    preference order — shorter prefix == lower preference."""
    chain = [dcn_prefix]
    while len(chain) < count:
        chain.append(chain[-1].supernet())
    return chain


def backup_routes_for(
    topo: Topology,
    switch: str,
    dcn_prefix: Prefix = DCN_PREFIX,
    tie_break: str = "prefix-length",
) -> List[StaticRoute]:
    """The static backup routes F²Tree configures on one switch.

    ``tie_break='prefix-length'`` is the paper's design (each neighbor gets
    a distinct prefix length).  ``tie_break='none'`` gives the right and
    left neighbors the *same* prefix as an ECMP pair — the flawed variant
    that loops under condition 2, kept for the loop-avoidance test.
    """
    neighbors = ring_neighbors_of(topo, switch)
    if neighbors is None:
        return []
    if tie_break == "prefix-length":
        chain = backup_prefix_chain(len(neighbors.ordered), dcn_prefix)
        return [
            StaticRoute(prefix, neighbor)
            for prefix, neighbor in zip(chain, neighbors.ordered)
        ]
    if tie_break == "none":
        # one route, ECMP over both immediate neighbors
        unique = list(dict.fromkeys(neighbors.ordered[:2]))
        return [StaticRoute(dcn_prefix, nh) for nh in unique]
    raise ValueError(f"unknown tie_break {tie_break!r}")


def configure_backup_routes(
    network: Network,
    dcn_prefix: Prefix = DCN_PREFIX,
    tie_break: str = "prefix-length",
    on_error: str = "raise",
) -> Dict[str, List[StaticRoute]]:
    """Install F²Tree backup routes on every ring switch of a network.

    Returns the per-switch configuration — the complete set of changes an
    operator would deploy (together with the rewiring plan, this *is*
    F²Tree).  ``on_error='skip'`` tolerates switches whose ring cannot be
    derived (miswired across links): they simply get no backup routes,
    like a deployment whose config push failed there — the mode the
    static verifier uses to replay miswiring counterexamples.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"unknown on_error {on_error!r}")
    configured: Dict[str, List[StaticRoute]] = {}
    for spec in network.topology.switches():
        try:
            routes = backup_routes_for(
                network.topology, spec.name, dcn_prefix, tie_break
            )
        except TopologyError:
            if on_error == "raise":
                raise
            continue
        if not routes:
            continue
        if tie_break == "none":
            # merge the equal-prefix routes into one ECMP entry
            from ..net.fib import FibEntry

            next_hops = tuple(r.next_hop for r in routes)
            network.switch(spec.name).fib.install(
                FibEntry(dcn_prefix, next_hops, source="static")
            )
        else:
            install_static_routes(network.switch(spec.name), routes)
        configured[spec.name] = routes
    return configured


def render_routing_table(network: Network, switch: str, limit: int = 14) -> str:
    """A Table II-style rendering of one switch's FIB (destination,
    next hops, source): rack subnets first, loopbacks after, static
    backups last (ordered right /16 before left /15, as in the paper)."""
    sw = network.switch(switch)

    def order(e: FibEntry) -> Tuple[int, int, int]:
        if e.source == "static":
            return (1, -e.prefix.length, e.prefix.network)
        return (0, e.prefix.length, e.prefix.network)

    entries = sorted(sw.fib.entries(), key=order)
    lines = [f"Routing table of {switch} ({sw.ip}):"]
    lines.append(f"{'No.':>3}  {'Destination':<22} {'Next hops':<40} Source")
    statics = [e for e in entries if e.source == "static"]
    dynamic = [e for e in entries if e.source != "static"]
    if len(entries) > limit:
        shown = dynamic[: limit - len(statics)] + statics
    else:
        shown = entries
    for index, entry in enumerate(shown, start=1):
        hops = ", ".join(str(nh) for nh in entry.next_hops)
        lines.append(
            f"{index:>3}  {str(entry.prefix):<22} {hops:<40} {entry.source}"
        )
    return "\n".join(lines)
