"""F²Tree for other multi-rooted topologies (§V, Fig 7).

The scheme — ring the layer that lacks downward redundancy, configure the
two backup static routes — carries over directly:

* **Leaf-Spine** (Fig 7(a)): a spine's downward link toward a leaf has no
  backup; we ring the spine layer.
* **VL2** (Fig 7(b)): the dense agg↔intermediate mesh already protects
  intermediate→agg downward links, but each agg reaches a given ToR over
  exactly one link; we ring the aggregation layer.

The builders below add the across links to a freshly built topology (the
paper omits the per-switch port bookkeeping for these variants; we assume
the reserved ports exist, having demonstrated exact port-neutral rewiring
on the fat tree).  Backup routes are configured at network setup via
:func:`repro.core.backup_routes.configure_backup_routes`, which discovers
rings of any switch kind.
"""

from __future__ import annotations

from ..topology.graph import NodeKind, Topology
from ..topology.leafspine import leaf_spine
from ..topology.vl2 import vl2
from .f2tree import _add_ring


def f2_leaf_spine(n_leaf: int, n_spine: int, hosts_per_leaf: int = 2) -> Topology:
    """Leaf-Spine with the spine layer ringed (F²Tree for Leaf-Spine)."""
    topo = leaf_spine(n_leaf, n_spine, hosts_per_leaf)
    topo.name = f"f2-{topo.name}"
    topo.params["family"] = "f2-leaf-spine"
    _add_ring(topo, topo.pod_members(NodeKind.SPINE, 0), [1])
    return topo


def f2_vl2(d_a: int, d_i: int, hosts_per_tor: int = 2) -> Topology:
    """VL2 with the aggregation layer ringed (F²Tree for VL2)."""
    topo = vl2(d_a, d_i, hosts_per_tor)
    topo.name = f"f2-{topo.name}"
    topo.params["family"] = "f2-vl2"
    _add_ring(topo, topo.pod_members(NodeKind.AGG, 0), [1])
    return topo
