"""Production-scale recovery trials on the fluid backend.

The packet backend's cost is dominated by per-packet events — initial
LSA flooding alone is O(V·E) control packets, and probe traffic adds a
packet per 100 us per flow — which caps it around k=8 fat trees.  This
module composes the three scale mechanisms of :mod:`repro.sim.flow`
into one runnable trial at production scale — k=32 (1280 switches) by
default, k=48 (2880 switches, 3.3M warm-started FIB entries) in the
bench gate:

1. :func:`~repro.sim.flow.warmstart.warm_start_linkstate` builds the
   converged control plane directly (no initial flooding events) and
   backs every instance's SPF with one shared batch oracle;
2. the :class:`~repro.sim.flow.FluidTrafficModel` carries the probe
   flow analytically (a handful of recompute events instead of tens of
   thousands of packet events);
3. the post-failure reconvergence — detection, flooding of the *change*,
   SPF throttling, FIB deltas — stays fully event-driven, so the
   recovery timeline is the mechanism under study, not an analytic
   shortcut.

:func:`repro.bench.bench_flow_backend` wall-clocks this trial against
the packet backend's measured small-k cost and gates the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..dataplane.network import Network
from ..dataplane.params import NetworkParams
from ..failures.injector import FailureEvent, LinkKey, schedule_failures
from ..metrics.timeseries import connectivity_loss_duration
from ..net.packet import PROTO_UDP, WIRE_OVERHEAD
from ..sim.engine import Simulator
from ..sim.flow import FluidTrafficModel
from ..sim.flow.warmstart import BatchRouteOracle, warm_start_linkstate
from ..sim.units import Time, microseconds, milliseconds, seconds
from ..topology.fattree import fat_tree
from .common import leftmost_host, rightmost_host
from .recovery import UDP_PORT, UDP_SPORT, default_failed_links


@dataclass
class FlowScaleResult:
    """One warm-started fluid recovery trial at scale."""

    topology: str
    n_switches: int
    n_links: int
    src: str
    dst: str
    failed_links: Tuple[LinkKey, ...]
    failure_time: Time
    connectivity_loss: Optional[Time]
    packets_sent: int
    packets_received: int
    path_after_complete: bool
    #: engine economics: total events processed, batch SPF runs vs
    #: cache hits, and fluid recompute count
    events_processed: int
    batch_spf_runs: int
    batch_spf_hits: int
    flow_recomputes: int


def run_packet_control_trial(
    ports: int,
    hosts_per_tor: int = 1,
    reconverge: Time = seconds(1),
) -> Tuple[int, int, int]:
    """Cold-start packet-backend control-plane trial, no data traffic.

    Builds a k-ary fat tree, lets the event-driven control plane
    converge from scratch (initial LSA flooding is the Θ(V·E) term that
    caps the packet backend), then fails the recovery trial's rack link
    and runs ``reconverge`` of simulated reconvergence.  Returns
    ``(switches, links, events processed)`` — the deterministic scaling
    observable :func:`repro.bench.bench_flow_backend` fits its packet
    cost projection on.
    """
    from .common import build_bundle

    topology = fat_tree(ports, hosts_per_tor=hosts_per_tor)
    bundle = build_bundle(topology)
    bundle.converge()
    src, dst = leftmost_host(topology), rightmost_host(topology)
    path, complete = bundle.network.trace_route(
        src, dst, PROTO_UDP, UDP_SPORT, UDP_PORT
    )
    if not complete:
        raise RuntimeError(f"converged network cannot route {src} -> {dst}")
    schedule_failures(
        bundle.network,
        [
            FailureEvent(bundle.sim.now + milliseconds(100), a, b)
            for a, b in default_failed_links(path)
        ],
    )
    bundle.sim.run(until=bundle.sim.now + reconverge)
    return (
        sum(1 for _ in bundle.network.switches()),
        len(bundle.network.links),
        bundle.sim.events_processed,
    )


def run_flow_scale_trial(
    ports: int = 32,
    hosts_per_tor: int = 1,
    params: Optional[NetworkParams] = None,
    warmup: Time = milliseconds(200),
    fail_offset: Time = milliseconds(380),
    flow_duration: Time = seconds(2.5),
    drain: Time = seconds(1),
    engine: str = "auto",
) -> FlowScaleResult:
    """One single-flow recovery trial on a warm-started k-ary fat tree.

    Mirrors :func:`repro.experiments.recovery.run_recovery`'s UDP shape
    (1500-byte wire packets every 100 us, leftmost -> rightmost host,
    downward rack link failing at ``warmup + fail_offset``) so the
    measured recovery is directly comparable — but the control plane is
    warm-started, so ``warmup`` only needs to cover probe settling, not
    O(V·E) initial flooding.  One host per ToR keeps the prefix count at
    the switch subnets (the fabric is unchanged).
    """
    topology = fat_tree(ports, hosts_per_tor=hosts_per_tor)
    base = params if params is not None else NetworkParams()
    base = base.with_overrides(backend="flow")

    sim = Simulator()
    network = Network(topology, sim, base)
    oracle = BatchRouteOracle(engine=engine)
    warm_start_linkstate(network, oracle=oracle)
    # attach the fluid model only after the bulk FIB load: the warm
    # start's V install batches would otherwise fan out V notifications
    model = FluidTrafficModel(network)

    src, dst = leftmost_host(topology), rightmost_host(topology)
    path_before, complete = network.trace_route(
        src, dst, PROTO_UDP, UDP_SPORT, UDP_PORT
    )
    if not complete:
        raise RuntimeError(
            f"warm-started network cannot route {src} -> {dst}: {path_before}"
        )
    links = default_failed_links(path_before)

    flow_start = warmup
    failure_time = flow_start + fail_offset
    flow_end = flow_start + flow_duration
    stop_at = flow_end + drain
    schedule_failures(
        network, [FailureEvent(failure_time, a, b) for a, b in links]
    )
    flow = model.add_cbr_flow(
        "scale-probe", src, dst, dport=UDP_PORT, sport=UDP_SPORT,
        protocol=PROTO_UDP, packet_bytes=1448 + WIRE_OVERHEAD,
        interval=microseconds(100), start=flow_start, stop=flow_end,
    )
    path_after: List[object] = [None]

    def probe_after() -> None:
        path_after[0] = network.trace_route(src, dst, PROTO_UDP, UDP_SPORT, UDP_PORT)

    sim.schedule_at(stop_at - milliseconds(1), probe_after)
    sim.run_until(stop_at)
    model.finalize()

    arrivals = flow.arrivals()
    loss = connectivity_loss_duration(
        [received_at for _, _, received_at, _ in arrivals], failure_time
    )
    after = path_after[0]
    return FlowScaleResult(
        topology=topology.name,
        n_switches=sum(1 for _ in network.switches()),
        n_links=len(network.links),
        src=src,
        dst=dst,
        failed_links=links,
        failure_time=failure_time,
        connectivity_loss=loss,
        packets_sent=flow.sent,
        packets_received=len(arrivals),
        path_after_complete=bool(after[1]) if after is not None else False,
        events_processed=sim.events_processed,
        batch_spf_runs=oracle.batch_runs,
        batch_spf_hits=oracle.hits,
        flow_recomputes=model.recomputes,
    )
