"""Ablations of F²Tree's design choices.

The paper argues for each design decision in prose; these harnesses turn
the arguments into measurements:

* **SPF-timer sensitivity** (§III discussion): shortening OSPF's initial
  SPF delay shrinks fat tree's outage — but the outage always tracks the
  timer, while F²Tree's outage is pinned at the detection delay regardless
  (and real networks *lengthen* the timer for stability).
* **Detection-delay sensitivity**: F²Tree's recovery time is exactly the
  detection delay, so faster BFD directly buys faster recovery.
* **Prefix-length tie-break** (§II-B): giving both backup routes the same
  prefix (ECMP pair) lets condition-2 failures bounce packets between
  adjacent switches; the paper's longer-prefix-rightward rule forwards
  them around the ring in one direction.
* **Four across ports** (§II-C): reserving 4 ports per switch survives the
  condition-4 pattern (C7) that defeats the 2-port design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..campaign.runner import run_campaign
from ..campaign.sweeps import (
    DEFAULT_DETECTION_DELAYS,
    DEFAULT_SPF_DELAYS,
    detection_delay_specs,
    effective_workers,
    spf_timer_specs,
)
from ..core.f2tree import f2tree
from ..failures.scenarios import build_scenario
from ..net.packet import PROTO_UDP
from ..sim.units import Time, milliseconds, to_milliseconds
from .common import DEFAULT_WARMUP, build_bundle, leftmost_host, rightmost_host
from .conditions import run_condition
from .recovery import UDP_PORT, UDP_SPORT


@dataclass
class SpfTimerPoint:
    """One point of the SPF-timer sweep."""

    spf_initial_delay_ms: float
    fat_tree_loss_ms: float
    f2tree_loss_ms: float


def run_spf_timer_sweep(
    delays: Sequence[Time] = DEFAULT_SPF_DELAYS,
    ports: int = 8,
    seed: int = 1,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List[SpfTimerPoint]:
    """Single downward failure (C1) under varying SPF initial delays.

    Runs as a campaign: each (delay, topology) pair is one independent
    trial, fanned out over ``workers`` processes (default: serial, or
    ``REPRO_SWEEP_WORKERS``).  Results are identical for any worker count.
    """
    specs = spf_timer_specs(delays, ports=ports, seed=seed, timeout=timeout)
    report = run_campaign(
        specs, name="spf-timer", workers=effective_workers(workers),
        timeout=timeout,
    ).require_success()
    points: List[SpfTimerPoint] = []
    for fat_spec, f2_spec in zip(specs[::2], specs[1::2]):
        fat = report.payload_for(fat_spec)
        f2 = report.payload_for(f2_spec)
        delay = fat_spec.param_dict()["net_spf_initial_delay"]
        points.append(
            SpfTimerPoint(
                spf_initial_delay_ms=to_milliseconds(delay),
                fat_tree_loss_ms=fat["connectivity_loss_ms"],
                f2tree_loss_ms=f2["connectivity_loss_ms"],
            )
        )
    return points


@dataclass
class DetectionDelayPoint:
    detection_delay_ms: float
    f2tree_loss_ms: float


def run_detection_delay_sweep(
    delays: Sequence[Time] = DEFAULT_DETECTION_DELAYS,
    ports: int = 8,
    seed: int = 1,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List[DetectionDelayPoint]:
    """F²Tree recovery time as a function of the BFD-style detection delay.

    Campaign-backed like :func:`run_spf_timer_sweep` (one trial per delay).
    """
    specs = detection_delay_specs(delays, ports=ports, seed=seed, timeout=timeout)
    report = run_campaign(
        specs, name="detection-delay", workers=effective_workers(workers),
        timeout=timeout,
    ).require_success()
    points: List[DetectionDelayPoint] = []
    for spec in specs:
        payload = report.payload_for(spec)
        delay = spec.param_dict()["net_detection_delay"]
        points.append(
            DetectionDelayPoint(
                detection_delay_ms=to_milliseconds(delay),
                f2tree_loss_ms=payload["connectivity_loss_ms"],
            )
        )
    return points


@dataclass
class TieBreakOutcome:
    """Loop census during fast rerouting under condition 2 (C4)."""

    tie_break: str
    flows_traced: int
    flows_looping: int
    flows_delivered: int


def count_c4_loops(
    tie_break: str, ports: int = 8, n_flows: int = 64, seed: int = 1
) -> TieBreakOutcome:
    """Trace many flows mid-fast-reroute under C4 and count loops.

    Uses offline path tracing inside the fast-reroute window (after
    detection, before the control plane's FIB update), so the outcome is a
    pure function of the forwarding design being ablated.
    """
    topology = f2tree(ports)
    bundle = build_bundle(topology, seed=seed, backup_tie_break=tie_break)
    bundle.converge(DEFAULT_WARMUP)
    src, dst = leftmost_host(topology), rightmost_host(topology)
    path, complete = bundle.network.trace_route(
        src, dst, PROTO_UDP, UDP_SPORT, UDP_PORT
    )
    assert complete
    scenario = build_scenario("C4", topology, path)
    fail_at = DEFAULT_WARMUP + milliseconds(10)
    for a, b in scenario.failed:
        bundle.network.schedule_link_failure(a, b, fail_at)
    # inside the window: detection done (+60 ms), SPF not installed (+270 ms)
    bundle.sim.run(until=fail_at + milliseconds(150))

    looping = delivered = 0
    for dport in range(20000, 20000 + n_flows):
        _path, ok = bundle.network.trace_route(src, dst, PROTO_UDP, UDP_SPORT, dport)
        if ok:
            delivered += 1
        else:
            looping += 1
    return TieBreakOutcome(tie_break, n_flows, looping, delivered)


@dataclass
class FourAcrossOutcome:
    """C7 with 2 vs 4 across ports."""

    across_ports: int
    connectivity_loss_ms: float
    fast_rerouted: bool


def run_four_across_c7(
    ports: int = 8, seed: int = 1
) -> Tuple[FourAcrossOutcome, FourAcrossOutcome]:
    """C7 (condition 4) on the 2-port design vs the 4-port extension."""
    outcomes = []
    for across in (2, 4):
        run = run_condition(
            "f2tree", "C7", "udp", ports=ports, across_ports=across, seed=seed
        )
        loss = run.result.connectivity_loss
        assert loss is not None
        outcomes.append(
            FourAcrossOutcome(
                across_ports=across,
                connectivity_loss_ms=to_milliseconds(loss),
                fast_rerouted=loss <= milliseconds(100),
            )
        )
    return outcomes[0], outcomes[1]
