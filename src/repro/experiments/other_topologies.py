"""§V / Fig 7: F²Tree's scheme on Leaf-Spine and VL2.

For each fabric we fail the downward link above the destination rack and
compare the original topology (control-plane recovery) with its F²
adaptation (ring + backup routes, local fast reroute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.adapt import f2_leaf_spine, f2_vl2
from ..dataplane.params import NetworkParams
from ..sim.units import to_milliseconds
from ..topology.graph import Topology
from ..topology.leafspine import leaf_spine
from ..topology.vl2 import vl2
from .recovery import run_recovery


def figure_seven_topology(kind: str) -> Topology:
    """The Fig 7 fabrics (sizes chosen to match the figure's scale)."""
    if kind == "leaf-spine":
        return leaf_spine(n_leaf=8, n_spine=4)
    if kind == "f2-leaf-spine":
        return f2_leaf_spine(n_leaf=8, n_spine=4)
    if kind == "vl2":
        return vl2(d_a=4, d_i=4)
    if kind == "f2-vl2":
        return f2_vl2(d_a=4, d_i=4)
    raise ValueError(f"unknown Fig 7 kind {kind!r}")


@dataclass
class FigureSevenRow:
    """Recovery from a downward rack-link failure on one fabric."""

    kind: str
    connectivity_loss_ms: float
    packets_lost: int
    fast_rerouted: bool


def run_figure_seven(
    kinds: Optional[List[str]] = None,
    params: Optional[NetworkParams] = None,
    seed: int = 1,
) -> List[FigureSevenRow]:
    """All four Fig 7 comparisons (UDP probe flow)."""
    rows: List[FigureSevenRow] = []
    for kind in kinds or ("leaf-spine", "f2-leaf-spine", "vl2", "f2-vl2"):
        result = run_recovery(figure_seven_topology(kind), "udp", params=params, seed=seed)
        assert result.connectivity_loss is not None
        rows.append(
            FigureSevenRow(
                kind=kind,
                connectivity_loss_ms=to_milliseconds(result.connectivity_loss),
                packets_lost=result.packets_lost,
                fast_rerouted=result.connectivity_loss <= 100_000_000,
            )
        )
    return rows


def render_figure_seven(rows: List[FigureSevenRow]) -> str:
    lines = [
        "Fig 7: F2Tree scheme on other multi-rooted fabrics (downward rack"
        " link failure)",
        f"{'fabric':<16} {'conn. loss (ms)':>16} {'pkts lost':>10} "
        f"{'fast reroute':>13}",
    ]
    for row in rows:
        lines.append(
            f"{row.kind:<16} {row.connectivity_loss_ms:>16.1f} "
            f"{row.packets_lost:>10d} {str(row.fast_rerouted):>13}"
        )
    return "\n".join(lines)
