"""§III testbed experiment: Fig 2 and Table III.

The 4-port, 3-layer fat tree (Fig 1(a)) versus the rewired F²Tree
prototype (Fig 1(b)); one UDP and one TCP flow from the leftmost host to
the rightmost; the downward ToR<->aggregation link on the forwarding path
is torn down mid-flow.  Reported exactly as Table III: duration of
connectivity loss, packets lost, duration of throughput collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.f2tree import rewire_fat_tree_prototype
from ..dataplane.params import NetworkParams
from ..obs import Observability
from ..sim.units import to_microseconds
from ..topology.fattree import fat_tree
from ..topology.graph import Topology
from .recovery import RecoveryResult, run_recovery


def testbed_topology(kind: str) -> Topology:
    """The §III prototypes: ``fat-tree`` or ``f2tree`` (rewired)."""
    if kind == "fat-tree":
        return fat_tree(4)
    if kind == "f2tree":
        topo, _plan = rewire_fat_tree_prototype(fat_tree(4))
        return topo
    raise ValueError(f"unknown testbed kind {kind!r}")


def run_testbed(
    kind: str,
    transport: str,
    params: Optional[NetworkParams] = None,
    seed: int = 1,
    obs: Optional[Observability] = None,
) -> RecoveryResult:
    """One §III run (one topology, one transport)."""
    return run_recovery(
        testbed_topology(kind), transport, params=params, seed=seed, obs=obs
    )


@dataclass
class TableThreeRow:
    """One row of Table III."""

    topology: str
    connectivity_loss_us: float
    packets_lost: int
    collapse_us: float


def run_table_three(
    params: Optional[NetworkParams] = None, seed: int = 1
) -> Dict[str, TableThreeRow]:
    """Both rows of Table III (each row needs a UDP run and a TCP run)."""
    rows: Dict[str, TableThreeRow] = {}
    for kind in ("fat-tree", "f2tree"):
        udp = run_testbed(kind, "udp", params=params, seed=seed)
        tcp = run_testbed(kind, "tcp", params=params, seed=seed)
        assert udp.connectivity_loss is not None
        assert tcp.collapse_duration is not None
        rows[kind] = TableThreeRow(
            topology=kind,
            connectivity_loss_us=to_microseconds(udp.connectivity_loss),
            packets_lost=udp.packets_lost,
            collapse_us=to_microseconds(tcp.collapse_duration),
        )
    return rows


def render_table_three(rows: Dict[str, TableThreeRow]) -> str:
    """Table III rendering (paper reference values in the header)."""
    lines = [
        "Table III: failure of one downward ToR<->agg link (paper: fat tree"
        " 272847 us / 1302 pkts / 700000 us; F2Tree 60619 us / 310 pkts /"
        " 220000 us)",
        f"{'topology':<12} {'conn. loss (us)':>16} {'packets lost':>13} "
        f"{'collapse (us)':>14}",
    ]
    for row in rows.values():
        lines.append(
            f"{row.topology:<12} {row.connectivity_loss_us:>16.0f} "
            f"{row.packets_lost:>13d} {row.collapse_us:>14.0f}"
        )
    return "\n".join(lines)
