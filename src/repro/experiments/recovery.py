"""The single-flow failure-recovery experiment (the paper's workhorse).

One flow runs from the leftmost to the rightmost host; at a fixed offset a
set of links fails; we measure what Table III / Fig 4 / Fig 5 measure:

* UDP — duration of connectivity loss, packets lost, end-to-end delay
  series (delay jumps by 17 us per extra hop during fast rerouting);
* TCP — duration of throughput collapse (20 ms bins, below half the
  pre-failure average).

The links to fail default to the flow's downward rack link — the
``(aggregation, destination-ToR)`` pair, or ``(spine, leaf)`` on 2-layer
fabrics — and can be overridden with an explicit list or a Table IV
scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..dataplane.params import NetworkParams
from ..failures.injector import FailureEvent, LinkKey, schedule_failures
from ..failures.scenarios import ConditionScenario
from ..metrics.timeseries import (
    ThroughputBin,
    connectivity_loss_duration,
    throughput_collapse_duration,
    throughput_series,
)
from ..net.packet import PROTO_TCP, PROTO_UDP, WIRE_OVERHEAD
from ..obs import Observability, RecoveryBreakdown, analyze_recovery
from ..sim.units import Time, microseconds, milliseconds, seconds
from ..topology.graph import Topology
from ..transport.apps import PacedTcpSender, TcpSinkServer
from ..transport.udp import UdpSender, UdpSink
from .common import DEFAULT_WARMUP, build_bundle, leftmost_host, rightmost_host

UDP_PORT = 7000
TCP_PORT = 7001
UDP_SPORT = 10001


@dataclass
class RecoveryResult:
    """Everything measured in one single-flow recovery run."""

    topology: str
    transport: str
    src: str
    dst: str
    path_before: List[str]
    failed_links: Tuple[LinkKey, ...]
    failure_time: Time
    flow_start: Time
    flow_end: Time
    # UDP metrics
    connectivity_loss: Optional[Time] = None
    packets_sent: int = 0
    packets_received: int = 0
    #: (received_at, end-to-end delay, hop count) per received probe
    delay_samples: List[Tuple[Time, Time, int]] = field(default_factory=list)
    # TCP metrics
    collapse_duration: Optional[Time] = None
    throughput: List[ThroughputBin] = field(default_factory=list)
    # path evolution
    path_during: Optional[Tuple[List[str], bool]] = None
    path_after: Optional[Tuple[List[str], bool]] = None
    #: per-phase recovery attribution (set when the run was traced)
    breakdown: Optional[RecoveryBreakdown] = None

    @property
    def packets_lost(self) -> int:
        return self.packets_sent - self.packets_received


def default_failed_links(path: Sequence[str]) -> Tuple[LinkKey, ...]:
    """The downward link above the destination rack (C1-equivalent)."""
    if len(path) < 5:
        raise ValueError(f"path too short to pick a downward link: {path}")
    a, b = path[-3], path[-2]
    return ((a, b) if a <= b else (b, a),)


def run_recovery(
    topology: Topology,
    transport: str = "udp",
    scenario: Optional[ConditionScenario] = None,
    scenario_label: Optional[str] = None,
    failed_links: Optional[Sequence[LinkKey]] = None,
    params: Optional[NetworkParams] = None,
    seed: int = 1,
    warmup: Time = DEFAULT_WARMUP,
    fail_offset: Time = milliseconds(380),
    flow_duration: Time = seconds(2.5),
    drain: Time = seconds(1),
    backup_tie_break: str = "prefix-length",
    src: Optional[str] = None,
    dst: Optional[str] = None,
    routing: str = "linkstate",
    routing_options: Optional[object] = None,
    obs: Optional[Observability] = None,
) -> RecoveryResult:
    """Run one recovery experiment end to end.

    Exactly one of ``scenario``, ``scenario_label``, ``failed_links`` may
    be given; all omitted means the default single downward-link failure
    (the testbed experiment of §III, at the paper's 380 ms offset).
    ``routing`` selects the control plane (see
    :func:`repro.experiments.common.build_bundle`).  Passing an *enabled*
    ``obs`` records a trace and fills ``result.breakdown`` with the
    per-phase recovery attribution.
    """
    if transport not in ("udp", "tcp"):
        raise ValueError(f"unknown transport {transport!r}")
    bundle = build_bundle(
        topology, params=params, seed=seed, backup_tie_break=backup_tie_break,
        routing=routing, routing_options=routing_options, obs=obs,
    )
    bundle.converge(warmup)

    src = src or leftmost_host(topology)
    dst = dst or rightmost_host(topology)
    network = bundle.network
    sim = bundle.sim

    if transport == "udp":
        sport, dport, proto = UDP_SPORT, UDP_PORT, PROTO_UDP
    else:
        # the first ephemeral port the sender's stack will allocate
        sport, dport, proto = 33000, TCP_PORT, PROTO_TCP
    path_before, complete = network.trace_route(src, dst, proto, sport, dport)
    if not complete:
        raise RuntimeError(f"no converged path {src} -> {dst}: {path_before}")

    given = sum(x is not None for x in (scenario, scenario_label, failed_links))
    if given > 1:
        raise ValueError("give at most one of scenario/scenario_label/failed_links")
    if scenario_label is not None:
        from ..failures.scenarios import build_scenario

        scenario = build_scenario(scenario_label, topology, path_before)
    if scenario is not None:
        links = tuple(scenario.failed)
    elif failed_links is not None:
        links = tuple(failed_links)
    else:
        links = default_failed_links(path_before)

    flow_start = warmup
    failure_time = flow_start + fail_offset
    flow_end = flow_start + flow_duration
    stop_at = flow_end + drain

    result = RecoveryResult(
        topology=topology.name,
        transport=transport,
        src=src,
        dst=dst,
        path_before=path_before,
        failed_links=links,
        failure_time=failure_time,
        flow_start=flow_start,
        flow_end=flow_end,
    )

    schedule_failures(
        network, [FailureEvent(failure_time, a, b) for a, b in links]
    )

    # trace the in-reroute path just after detection, and the final path
    detect_probe_at = failure_time + network.params.detection_delay + milliseconds(5)

    def probe_during() -> None:
        result.path_during = network.trace_route(src, dst, proto, sport, dport)

    def probe_after() -> None:
        result.path_after = network.trace_route(src, dst, proto, sport, dport)

    sim.schedule_at(detect_probe_at, probe_during)
    sim.schedule_at(stop_at - milliseconds(1), probe_after)

    if network.params.backend == "flow":
        _run_fluid(result, bundle, transport, src, dst, sport, stop_at)
    elif transport == "udp":
        sink = UdpSink(sim, network.host(dst), UDP_PORT)
        sender = UdpSender(
            sim, network.host(src), network.host(dst).ip, UDP_PORT, sport=UDP_SPORT
        )
        sender.start(at=flow_start, stop_at=flow_end)
        sim.run_until(stop_at)
        result.packets_sent = sender.sent
        result.packets_received = sink.received
        arrival_times = [a.received_at for a in sink.arrivals]
        result.connectivity_loss = connectivity_loss_duration(
            arrival_times, failure_time
        )
        result.delay_samples = [
            (a.received_at, a.delay, a.hops) for a in sink.arrivals
        ]
        result.throughput = throughput_series(
            [(a.received_at, 1448) for a in sink.arrivals], flow_start, flow_end
        )
    else:
        sink_server = TcpSinkServer(sim, network.host(dst), TCP_PORT)
        sender = PacedTcpSender(
            sim, network.host(src), network.host(dst).ip, TCP_PORT
        )
        sender.start(at=flow_start, stop_at=flow_end)
        sim.run_until(stop_at)
        result.collapse_duration = throughput_collapse_duration(
            sink_server.deliveries, flow_start, failure_time, flow_end
        )
        result.throughput = throughput_series(
            sink_server.deliveries, flow_start, flow_end
        )
    if obs is not None and obs.enabled and network.params.backend == "packet":
        # per-phase attribution reads packet delivery events off the
        # trace, which the fluid backend doesn't generate
        result.breakdown = analyze_recovery(
            obs.trace,
            dst=dst,
            dport=dport,
            failure_time=failure_time,
        )
    if obs is not None:
        # aggregate FIB match-chain cache counters across the fabric so
        # cache hit rates show up next to spf.cache.* in reports (cold
        # path: once per run, deterministic sums)
        chain_hits = 0
        chain_misses = 0
        for switch in network.switches():
            chain_hits += switch.fib.chain_hits
            chain_misses += switch.fib.chain_misses
        if chain_hits or chain_misses:
            obs.metrics.counter("fib.chain.hits").inc(chain_hits)
            obs.metrics.counter("fib.chain.misses").inc(chain_misses)
    return result


def _run_fluid(
    result: RecoveryResult,
    bundle: object,
    transport: str,
    src: str,
    dst: str,
    sport: int,
    stop_at: Time,
) -> None:
    """The fluid-backend body of :func:`run_recovery`.

    Same flow shape as the packet transports (1448-byte payloads every
    100 us; UDP flows carry the 52-byte wire overhead so the analytic
    path delay matches the packet backend's, TCP deliveries count
    application bytes like ``TcpSinkServer``), and the synthesized
    arrival/delivery logs feed the *same* metric functions — so
    recovery classification differs only where the models do.
    """
    model = bundle.flow_model  # type: ignore[attr-defined]
    sim = bundle.sim  # type: ignore[attr-defined]
    flow_start, flow_end = result.flow_start, result.flow_end
    failure_time = result.failure_time
    if transport == "udp":
        flow = model.add_cbr_flow(
            "recovery-udp", src, dst, dport=UDP_PORT, sport=UDP_SPORT,
            protocol=PROTO_UDP, packet_bytes=1448 + WIRE_OVERHEAD,
            interval=microseconds(100), start=flow_start, stop=flow_end,
        )
        sim.run_until(stop_at)
        model.finalize()
        arrivals = flow.arrivals()
        result.packets_sent = flow.sent
        result.packets_received = len(arrivals)
        arrival_times = [received_at for _, _, received_at, _ in arrivals]
        result.connectivity_loss = connectivity_loss_duration(
            arrival_times, failure_time
        )
        result.delay_samples = [
            (received_at, received_at - sent_at, hops)
            for _, sent_at, received_at, hops in arrivals
        ]
        result.throughput = throughput_series(
            [(received_at, 1448) for received_at in arrival_times],
            flow_start, flow_end,
        )
    else:
        flow = model.add_paced_flow(
            "recovery-tcp", src, dst, dport=TCP_PORT, sport=sport,
            protocol=PROTO_TCP, packet_bytes=1448,
            interval=microseconds(100), start=flow_start, stop=flow_end,
        )
        sim.run_until(stop_at)
        model.finalize()
        deliveries = flow.deliveries()
        result.collapse_duration = throughput_collapse_duration(
            deliveries, flow_start, failure_time, flow_end
        )
        result.throughput = throughput_series(deliveries, flow_start, flow_end)


def reroute_delay_microseconds(
    result: RecoveryResult,
) -> Tuple[float, float, float]:
    """(before, during-reroute, after-convergence) mean e2e delay in us.

    "During reroute" means samples between failure detection and the
    control plane's FIB update; Fig 5 shows 100 us -> 117 us -> 100 us for
    C1 (one extra 17 us hop while fast rerouting).  A traced run knows the
    *actual* detection instant from its breakdown; untraced runs fall back
    to the paper's nominal 60 ms detection delay.
    """
    if not result.delay_samples:
        raise ValueError("no UDP delay samples (TCP run?)")
    if result.breakdown is not None and result.breakdown.detected_time is not None:
        detection = result.breakdown.detected_time
    else:
        detection = result.failure_time + milliseconds(60)

    def mean(samples: List[Time]) -> float:
        return sum(samples) / len(samples) / 1000.0 if samples else float("nan")

    before = [d for t, d, _ in result.delay_samples if t < result.failure_time]
    # take a slice well inside the reroute window
    during = [
        d
        for t, d, _ in result.delay_samples
        if detection + milliseconds(5) <= t <= detection + milliseconds(100)
    ]
    after = [
        d
        for t, d, _ in result.delay_samples
        if t >= result.flow_end - milliseconds(300)
    ]
    return mean(before), mean(during), mean(after)
