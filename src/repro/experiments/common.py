"""Shared experiment machinery.

Builds a ready-to-run bundle from a topology description: simulator,
runtime network, a link-state protocol instance per switch, and — when the
topology has across links — the F²Tree backup-route configuration.  Also
provides the paper's host-selection convention ("from the leftmost end
host to the rightmost one").
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.backup_routes import configure_backup_routes
from ..dataplane.network import Network
from ..dataplane.params import NetworkParams
from ..obs import Observability
from ..routing.centralized import (
    CentralizedController,
    ControllerParams,
    deploy_centralized,
)
from ..routing.linkstate import deploy_linkstate
from ..routing.pathvector import PathVectorParams, deploy_pathvector
from ..routing.static import StaticRoute
from ..sim.engine import Simulator
from ..sim.randomness import RandomStreams
from ..sim.units import Time, seconds
from ..topology.graph import LinkKind, Topology

#: default settling time before traffic starts: initial flooding + SPF +
#: FIB install finish well within a second; 3 s also lets the SPF hold
#: window expire so a later failure sees the paper's 200 ms initial timer
DEFAULT_WARMUP: Time = seconds(3)


def full_scale() -> bool:
    """Whether to run paper-scale experiment sizes (REPRO_FULL_SCALE=1)."""
    return os.environ.get("REPRO_FULL_SCALE", "").strip() in ("1", "true", "yes")


@dataclass
class Bundle:
    """Everything needed to run an experiment on one network."""

    topology: Topology
    sim: Simulator
    network: Network
    #: per-switch routing agents (link-state, path-vector or centralized)
    protocols: Dict[str, object]
    backup_config: Optional[Dict[str, List[StaticRoute]]]
    streams: RandomStreams
    routing: str = "linkstate"
    #: the global controller when ``routing == 'centralized'``
    controller: Optional[CentralizedController] = None
    #: the fluid data plane when ``params.backend == 'flow'``
    #: (a :class:`repro.sim.flow.FluidTrafficModel`)
    flow_model: Optional[object] = None

    def converge(self, until: Time = DEFAULT_WARMUP) -> None:
        """Run the control plane until the network has settled."""
        self.sim.run(until=until)

    @property
    def obs(self) -> Observability:
        """The simulator's observability facade (trace + metrics)."""
        return self.sim.obs


def build_bundle(
    topology: Topology,
    params: Optional[NetworkParams] = None,
    seed: int = 1,
    backup_tie_break: str = "prefix-length",
    routing: str = "linkstate",
    routing_options: Optional[object] = None,
    obs: Optional[Observability] = None,
    sim: Optional[Simulator] = None,
    backup_on_error: str = "raise",
) -> Bundle:
    """Instantiate a network with a control plane (and backup routes if
    F²-style).

    ``routing`` selects the control plane: ``linkstate`` (the paper's
    OSPF setting), ``pathvector`` (the §V BGP setting;
    ``routing_options`` is a :class:`~repro.routing.pathvector.PathVectorParams`),
    or ``centralized`` (the §V SDN setting; ``routing_options`` is a
    :class:`~repro.routing.centralized.ControllerParams`).
    ``obs`` attaches an :class:`~repro.obs.Observability` facade to the
    simulator (pass ``Observability(enabled=True)`` to record a trace);
    omitted, the bundle gets the disabled no-op default.
    ``sim`` substitutes a pre-built simulator (e.g. the instrumented
    :class:`~repro.check.execute.CheckedSimulator`); ``obs`` is ignored
    in that case — the provided simulator keeps its own facade.
    ``backup_on_error='skip'`` tolerates switches with underivable ring
    configs (used to replay miswiring counterexamples on deliberately
    broken topologies).
    """
    if sim is None:
        sim = Simulator(obs=obs)
    network = Network(topology, sim, params)
    backend = network.params.backend
    if backend not in ("packet", "flow"):
        raise ValueError(f"unknown backend {backend!r} (use 'packet' or 'flow')")
    controller: Optional[CentralizedController] = None
    if routing == "linkstate":
        protocols: Dict[str, object] = dict(deploy_linkstate(network))
    elif routing == "pathvector":
        options = routing_options
        if options is not None and not isinstance(options, PathVectorParams):
            raise TypeError("pathvector routing expects PathVectorParams options")
        protocols = dict(deploy_pathvector(network, options))
    elif routing == "centralized":
        options = routing_options
        if options is not None and not isinstance(options, ControllerParams):
            raise TypeError("centralized routing expects ControllerParams options")
        controller, agents = deploy_centralized(network, options)
        protocols = dict(agents)
    else:
        raise ValueError(f"unknown routing {routing!r}")
    has_across = any(
        link.kind is LinkKind.ACROSS for link in topology.links.values()
    )
    backup_config = (
        configure_backup_routes(
            network, tie_break=backup_tie_break, on_error=backup_on_error
        )
        if has_across
        else None
    )
    flow_model = None
    if backend == "flow":
        # local import: the fluid backend is optional machinery layered
        # on top of the dataplane, not a dependency of every experiment
        from ..sim.flow import FluidTrafficModel

        flow_model = FluidTrafficModel(network)
    return Bundle(
        topology=topology,
        sim=sim,
        network=network,
        protocols=protocols,
        backup_config=backup_config,
        streams=RandomStreams(seed),
        routing=routing,
        controller=controller,
        flow_model=flow_model,
    )


def _host_sort_key(name: str) -> tuple:
    return tuple(int(part) if part.isdigit() else part for part in name.split("-"))


def hosts_left_to_right(topology: Topology) -> List[str]:
    """Host names in the left-to-right order of the paper's figures."""
    return sorted((h.name for h in topology.hosts()), key=_host_sort_key)


def leftmost_host(topology: Topology) -> str:
    return hosts_left_to_right(topology)[0]


def rightmost_host(topology: Topology) -> str:
    return hosts_left_to_right(topology)[-1]
