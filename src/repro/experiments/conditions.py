"""§IV-A: the C1-C7 failure-condition experiments (Table IV, Fig 4, Fig 5).

8-port, 3-layer fat tree vs F²Tree; a UDP and a TCP flow from leftmost to
rightmost host; each Table IV scenario is instantiated against the traced
forwarding path.  For every run we also classify the scenario with
:mod:`repro.core.failure_analysis` and check the simulated outcome against
the analytical prediction (fast reroute iff condition 1-3; extra path
length during reroute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..core.f2tree import f2tree
from ..core.failure_analysis import FailureAnalysis, analyze_scenario
from ..dataplane.params import NetworkParams
from ..failures.scenarios import (
    ALL_LABELS,
    FAT_TREE_LABELS,
    ConditionScenario,
    build_scenario,
)
from ..net.packet import PROTO_UDP
from ..sim.units import to_milliseconds
from ..topology.fattree import fat_tree
from ..topology.graph import Topology
from .common import leftmost_host, rightmost_host
from .recovery import (
    RecoveryResult,
    UDP_PORT,
    UDP_SPORT,
    reroute_delay_microseconds,
    run_recovery,
)


def conditions_topology(kind: str, ports: int = 8, across_ports: int = 2) -> Topology:
    """The §IV emulation topologies (8-port by default)."""
    if kind == "fat-tree":
        return fat_tree(ports)
    if kind == "f2tree":
        return f2tree(ports, across_ports=across_ports)
    raise ValueError(f"unknown conditions kind {kind!r}")


@dataclass
class ConditionRun:
    """One (topology, condition, transport) run plus its classification."""

    kind: str
    scenario: ConditionScenario
    result: RecoveryResult
    #: analytical classification (F²-style topologies only)
    analysis: Optional[FailureAnalysis] = None

    @property
    def fast_rerouted(self) -> bool:
        """Whether the data plane recovered without the control plane.

        Fast reroute caps the outage at the failure-detection delay; a
        control-plane recovery additionally waits for the SPF timer and
        FIB update (>= 200 ms more).  We split the difference at detection
        delay + 40 ms.
        """
        loss = self.result.connectivity_loss
        if loss is None:
            raise ValueError("fast_rerouted needs a UDP run")
        from ..sim.units import milliseconds

        return loss <= milliseconds(100)


def plan_scenario(
    topology: Topology, label: str, transport: str = "udp"
) -> Tuple[ConditionScenario, List[str]]:
    """Instantiate scenario ``label`` against the converged flow path.

    Uses a throwaway bundle to trace the path the experiment's flow will
    hash onto (tracing is deterministic for a given topology and seed).
    ECMP hashes the five-tuple, so the UDP probe flow and the TCP flow
    take different paths — the scenario must target the path of the flow
    actually being measured.
    """
    from ..net.packet import PROTO_TCP
    from .common import build_bundle
    from .recovery import TCP_PORT

    bundle = build_bundle(topology)
    bundle.converge()
    src, dst = leftmost_host(topology), rightmost_host(topology)
    if transport == "udp":
        proto, sport, dport = PROTO_UDP, UDP_SPORT, UDP_PORT
    else:
        proto, sport, dport = PROTO_TCP, 33000, TCP_PORT
    path, complete = bundle.network.trace_route(src, dst, proto, sport, dport)
    if not complete:
        raise RuntimeError(f"no converged path for scenario planning: {path}")
    return build_scenario(label, topology, path), path


def run_condition(
    kind: str,
    label: str,
    transport: str = "udp",
    ports: int = 8,
    across_ports: int = 2,
    params: Optional[NetworkParams] = None,
    seed: int = 1,
    **recovery_kwargs: Any,
) -> ConditionRun:
    """Run one Table IV condition on one topology.

    Extra keyword arguments (``flow_duration``, ``drain``, ...) pass
    through to :func:`repro.experiments.recovery.run_recovery`.
    """
    if kind == "fat-tree" and label not in FAT_TREE_LABELS:
        raise ValueError(f"{label} involves across links; fat tree has none")
    topology = conditions_topology(kind, ports, across_ports)
    scenario, _path = plan_scenario(topology, label, transport)
    result = run_recovery(
        topology, transport, scenario=scenario, params=params, seed=seed,
        **recovery_kwargs,
    )
    analysis = None
    if kind == "f2tree":
        analysis = analyze_scenario(
            topology, scenario.sx, scenario.dest_tor, frozenset(scenario.failed)
        )
    return ConditionRun(kind=kind, scenario=scenario, result=result, analysis=analysis)


@dataclass
class FigureFourRow:
    """One bar group of Fig 4 (per condition, per topology)."""

    label: str
    kind: str
    connectivity_loss_ms: float
    packets_lost: int
    collapse_ms: float


def run_figure_four(
    labels: Sequence[str] = ALL_LABELS,
    ports: int = 8,
    params: Optional[NetworkParams] = None,
    seed: int = 1,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List[FigureFourRow]:
    """All Fig 4 bars: C1-C5 on both topologies, C6-C7 on F²Tree only.

    Each (condition, topology) cell is one campaign trial (its UDP and
    TCP runs together), so the whole matrix parallelizes across
    ``workers`` processes with results independent of the worker count.
    """
    from ..campaign.runner import run_campaign
    from ..campaign.sweeps import effective_workers, figure_four_specs

    specs = figure_four_specs(
        labels, ports=ports, params=params, seed=seed, timeout=timeout
    )
    report = run_campaign(
        specs, name="figure-four", workers=effective_workers(workers),
        timeout=timeout,
    ).require_success()
    rows: List[FigureFourRow] = []
    for spec in specs:
        payload = report.payload_for(spec)
        rows.append(
            FigureFourRow(
                label=payload["label"],
                kind=payload["kind"],
                connectivity_loss_ms=payload["connectivity_loss_ms"],
                packets_lost=payload["packets_lost"],
                collapse_ms=payload["collapse_ms"],
            )
        )
    return rows


def render_figure_four(rows: Sequence[FigureFourRow]) -> str:
    lines = [
        "Fig 4: recovery under failure conditions C1-C7 (paper: F2Tree ~60 ms"
        " loss for C1-C6, fat-tree ~270 ms; C7 degrades to fat tree)",
        f"{'cond':<6} {'topology':<10} {'conn. loss (ms)':>16} "
        f"{'pkts lost':>10} {'TCP collapse (ms)':>18}",
    ]
    for row in rows:
        lines.append(
            f"{row.label:<6} {row.kind:<10} {row.connectivity_loss_ms:>16.1f} "
            f"{row.packets_lost:>10d} {row.collapse_ms:>18.1f}"
        )
    return "\n".join(lines)


@dataclass
class DelayProfile:
    """Fig 5: one condition's end-to-end delay profile."""

    label: str
    kind: str
    before_us: float
    during_reroute_us: float
    after_us: float
    loss_window_ms: float


def run_figure_five(
    labels: Sequence[str] = ("C1", "C4", "C5", "C7"),
    ports: int = 8,
    params: Optional[NetworkParams] = None,
    seed: int = 1,
    include_fat_tree_c1: bool = True,
) -> List[DelayProfile]:
    """The Fig 5 delay profiles (UDP runs)."""
    profiles: List[DelayProfile] = []
    runs: List[Tuple[str, str]] = []
    if include_fat_tree_c1:
        runs.append(("fat-tree", "C1"))
    runs.extend(("f2tree", label) for label in labels)
    for kind, label in runs:
        run = run_condition(kind, label, "udp", ports, params=params, seed=seed)
        before, during, after = reroute_delay_microseconds(run.result)
        assert run.result.connectivity_loss is not None
        profiles.append(
            DelayProfile(
                label=label,
                kind=kind,
                before_us=before,
                during_reroute_us=during,
                after_us=after,
                loss_window_ms=to_milliseconds(run.result.connectivity_loss),
            )
        )
    return profiles


def render_figure_five(profiles: Sequence[DelayProfile]) -> str:
    lines = [
        "Fig 5: end-to-end delay around recovery (paper: 100 us baseline,"
        " 117 us during 1-extra-hop fast reroute)",
        f"{'cond':<6} {'topology':<10} {'before (us)':>12} "
        f"{'during (us)':>12} {'after (us)':>12} {'loss window (ms)':>17}",
    ]
    for p in profiles:
        lines.append(
            f"{p.label:<6} {p.kind:<10} {p.before_us:>12.1f} "
            f"{p.during_reroute_us:>12.1f} {p.after_us:>12.1f} "
            f"{p.loss_window_ms:>17.1f}"
        )
    return "\n".join(lines)
