"""Extension experiments: the §V discussion and future work, measured.

The paper *argues* (without measuring) that F²Tree helps DCNs running BGP
and centralized (SDN) routing, and defers unidirectional failures to
future work.  These harnesses turn each claim into an experiment:

* **path-vector routing** (:func:`run_pathvector_comparison`): fat tree's
  recovery waits for withdrawal propagation and MRAI-gated path hunting —
  it grows with the MRAI setting — while F²Tree's stays at the detection
  delay;
* **centralized routing** (:func:`run_centralized_comparison`): fat
  tree's recovery includes the report→compute→push round trip, growing
  with controller distance/load; F²Tree bridges the whole window locally;
* **unidirectional failures** (:func:`run_unidirectional`): with
  BFD-style bidirectional detection F²Tree fast-reroutes as usual, but
  with interface-only (loss-of-signal) detection the *sending* switch
  never notices a dead downward direction — local rerouting needs local
  detection, quantifying how load-bearing the paper's BFD assumption is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..dataplane.params import NetworkParams
from ..net.packet import PROTO_UDP
from ..routing.centralized import ControllerParams
from ..routing.pathvector import PathVectorParams
from ..sim.units import Time, milliseconds, seconds, to_milliseconds
from ..topology.fattree import fat_tree
from ..core.f2tree import f2tree
from ..metrics.timeseries import connectivity_loss_duration
from ..transport.udp import UdpSender, UdpSink
from .common import DEFAULT_WARMUP, build_bundle, leftmost_host, rightmost_host
from .recovery import UDP_PORT, UDP_SPORT, RecoveryResult, run_recovery


@dataclass
class RoutingComparisonRow:
    """Recovery from a downward failure under some control plane setting."""

    setting: str
    fat_tree_loss_ms: float
    f2tree_loss_ms: float

    @property
    def reduction(self) -> float:
        if self.fat_tree_loss_ms <= 0:
            return 0.0
        return 1 - self.f2tree_loss_ms / self.fat_tree_loss_ms


def _loss_ms(result: RecoveryResult) -> float:
    assert result.connectivity_loss is not None
    return to_milliseconds(result.connectivity_loss)


def run_pathvector_comparison(
    mrai_values: Sequence[Time] = (
        milliseconds(30),
        milliseconds(100),
        milliseconds(300),
    ),
    ports: int = 8,
    seed: int = 1,
) -> List[RoutingComparisonRow]:
    """Single downward failure under BGP-style routing, per MRAI value."""
    rows = []
    for mrai in mrai_values:
        options = PathVectorParams(mrai=mrai)
        fat = run_recovery(
            fat_tree(ports), "udp",
            routing="pathvector", routing_options=options, seed=seed,
            warmup=seconds(5),
        )
        f2 = run_recovery(
            f2tree(ports), "udp",
            routing="pathvector", routing_options=options, seed=seed,
            warmup=seconds(5),
        )
        rows.append(
            RoutingComparisonRow(
                setting=f"mrai={to_milliseconds(mrai):.0f}ms",
                fat_tree_loss_ms=_loss_ms(fat),
                f2tree_loss_ms=_loss_ms(f2),
            )
        )
    return rows


def run_centralized_comparison(
    control_latencies: Sequence[Time] = (
        milliseconds(1),
        milliseconds(5),
        milliseconds(20),
    ),
    computation_delay: Time = milliseconds(20),
    ports: int = 8,
    seed: int = 1,
) -> List[RoutingComparisonRow]:
    """Single downward failure under SDN-style routing, per control RTT."""
    rows = []
    for latency in control_latencies:
        options = ControllerParams(
            report_latency=latency,
            push_latency=latency,
            computation_delay=computation_delay,
        )
        fat = run_recovery(
            fat_tree(ports), "udp",
            routing="centralized", routing_options=options, seed=seed,
        )
        f2 = run_recovery(
            f2tree(ports), "udp",
            routing="centralized", routing_options=options, seed=seed,
        )
        rows.append(
            RoutingComparisonRow(
                setting=f"ctrl-latency={to_milliseconds(latency):.0f}ms",
                fat_tree_loss_ms=_loss_ms(fat),
                f2tree_loss_ms=_loss_ms(f2),
            )
        )
    return rows


def render_routing_comparison(title: str, rows: Sequence[RoutingComparisonRow]) -> str:
    lines = [
        title,
        f"{'setting':<22} {'fat-tree loss (ms)':>19} {'f2tree loss (ms)':>17} "
        f"{'reduction':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.setting:<22} {row.fat_tree_loss_ms:>19.1f} "
            f"{row.f2tree_loss_ms:>17.1f} {row.reduction:>10.1%}"
        )
    return "\n".join(lines)


@dataclass
class UnidirectionalOutcome:
    """F²Tree recovery from a one-direction downward failure."""

    detection_mode: str
    connectivity_loss_ms: float
    fast_rerouted: bool


def run_unidirectional(
    detection_mode: str,
    ports: int = 8,
    seed: int = 1,
) -> UnidirectionalOutcome:
    """Fail only the downward *direction* of the rack link on an F²Tree.

    A bespoke runner (rather than :func:`run_recovery`) because the
    failure is directional: only ``agg -> tor`` dies; the reverse channel
    keeps delivering.
    """
    params = NetworkParams(detection_mode=detection_mode)
    topology = f2tree(ports)
    bundle = build_bundle(topology, params=params, seed=seed)
    bundle.converge()
    src, dst = leftmost_host(topology), rightmost_host(topology)
    network = bundle.network
    path, ok = network.trace_route(src, dst, PROTO_UDP, UDP_SPORT, UDP_PORT)
    assert ok, path
    agg_d, tor_d = path[-3], path[-2]

    flow_start = DEFAULT_WARMUP
    failure_time = flow_start + milliseconds(380)
    flow_end = flow_start + seconds(1.5)
    network.schedule_directional_failure(agg_d, tor_d, failure_time)

    sink = UdpSink(network.sim, network.host(dst), UDP_PORT)
    sender = UdpSender(
        network.sim, network.host(src), network.host(dst).ip, UDP_PORT,
        sport=UDP_SPORT,
    )
    sender.start(at=flow_start, stop_at=flow_end)
    network.sim.run(until=flow_end + milliseconds(500))

    loss = connectivity_loss_duration(
        [a.received_at for a in sink.arrivals], failure_time
    )
    return UnidirectionalOutcome(
        detection_mode=detection_mode,
        connectivity_loss_ms=to_milliseconds(loss),
        fast_rerouted=loss <= milliseconds(100),
    )


def render_unidirectional(outcomes: Sequence[UnidirectionalOutcome]) -> str:
    lines = [
        "Extension: unidirectional downward failure on F2Tree "
        "(paper future work)",
        f"{'detection mode':<16} {'outage (ms)':>12} {'fast reroute':>13}",
    ]
    for o in outcomes:
        lines.append(
            f"{o.detection_mode:<16} {o.connectivity_loss_ms:>12.1f} "
            f"{str(o.fast_rerouted):>13}"
        )
    return "\n".join(lines)
