"""§IV-B: partition-aggregate under random failures (Fig 6).

8-port fat tree vs F²Tree; partition-aggregate requests (fan-out 8, 2 KB
responses, 250 ms deadline) plus log-normal background flows; random
link failures with log-normal gaps/durations at average concurrency 1 or 5.

The paper runs 600 s with >3000 requests, 1500 background flows and ~40 /
~100 failures.  That runs in minutes in this simulator; the default here
is a 1/10-scale run (same rates, shorter horizon) so the benchmark suite
stays fast — set ``REPRO_FULL_SCALE=1`` for the paper-scale run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..dataplane.params import NetworkParams
from ..failures.injector import (
    concurrency_profile,
    generate_random_failures,
    paper_failure_pattern,
    schedule_failures,
)
from ..metrics.requests import DEFAULT_DEADLINE, RequestStats, reduction_ratio
from ..sim.units import Time, milliseconds, seconds, to_milliseconds
from ..workloads.background import BackgroundTraffic
from ..workloads.partition_aggregate import PartitionAggregateWorkload
from .common import DEFAULT_WARMUP, build_bundle, full_scale
from .conditions import conditions_topology


@dataclass(frozen=True)
class PartitionAggregateConfig:
    """Sizing of one Fig 6 run."""

    duration: Time = seconds(60)
    n_requests: int = 300
    n_background_flows: int = 150
    concurrent_failures: int = 1
    ports: int = 8
    seed: int = 7

    @classmethod
    def paper_scale(cls, concurrent_failures: int = 1, seed: int = 7) -> "PartitionAggregateConfig":
        """The full §IV-B sizing (600 s, >3000 requests, 1500 flows)."""
        return cls(
            duration=seconds(600),
            n_requests=3000,
            n_background_flows=1500,
            concurrent_failures=concurrent_failures,
            seed=seed,
        )

    @classmethod
    def default(cls, concurrent_failures: int = 1, seed: int = 7) -> "PartitionAggregateConfig":
        if full_scale():
            return cls.paper_scale(concurrent_failures, seed)
        return cls(concurrent_failures=concurrent_failures, seed=seed)


@dataclass
class PartitionAggregateResult:
    """One Fig 6 data point (one topology, one failure level)."""

    kind: str
    config: PartitionAggregateConfig
    stats: RequestStats
    n_failures: int
    average_concurrency: float
    background_completed: int
    background_total: int

    @property
    def deadline_miss_ratio(self) -> float:
        return self.stats.deadline_miss_ratio(DEFAULT_DEADLINE)


def run_partition_aggregate(
    kind: str,
    config: Optional[PartitionAggregateConfig] = None,
    params: Optional[NetworkParams] = None,
) -> PartitionAggregateResult:
    """Run one (topology, concurrency) cell of Fig 6."""
    config = config or PartitionAggregateConfig.default()
    topology = conditions_topology(kind, config.ports)
    bundle = build_bundle(topology, params=params, seed=config.seed)
    bundle.converge(DEFAULT_WARMUP)

    workload = PartitionAggregateWorkload(
        bundle.network, bundle.streams, n_requests=config.n_requests
    )
    background = BackgroundTraffic(bundle.network, bundle.streams)

    start = DEFAULT_WARMUP
    workload.schedule(start, config.duration)
    background.schedule(config.n_background_flows, start, config.duration)

    pattern = paper_failure_pattern(config.concurrent_failures, config.duration)
    events = generate_random_failures(
        topology, pattern, config.duration, bundle.streams, start=start
    )
    schedule_failures(bundle.network, events)
    n_failures, avg_concurrency = concurrency_profile(
        [e for e in events], config.duration
    )

    # drain long enough for OSPF backoff timers (up to 10 s) and TCP
    # retries of the last requests to settle
    end = start + config.duration + seconds(15)
    bundle.sim.run(until=end)
    workload.stats.censored_at = end

    return PartitionAggregateResult(
        kind=kind,
        config=config,
        stats=workload.stats,
        n_failures=n_failures,
        average_concurrency=avg_concurrency,
        background_completed=background.completed,
        background_total=len(background.flows),
    )


def run_flow_partition_aggregate(
    kind: str,
    config: Optional[PartitionAggregateConfig] = None,
    params: Optional[NetworkParams] = None,
) -> PartitionAggregateResult:
    """One Fig 6 cell on the **fluid backend**.

    Same topology, failure schedule and request/background draws as
    :func:`run_partition_aggregate` (the workloads mirror the packet
    twins' random streams draw for draw — see
    :mod:`repro.workloads.flow_partition_aggregate`), but responses and
    transfers are reliable fluid flows, so the run scales to request
    counts and fabrics the per-packet backend cannot reach.  Returns
    the same :class:`PartitionAggregateResult` shape; completion times
    are read analytically after the drain.
    """
    from ..sim.flow.model import FluidTrafficModel
    from ..workloads.flow_partition_aggregate import (
        FlowBackgroundTraffic,
        FlowPartitionAggregateWorkload,
    )

    config = config or PartitionAggregateConfig.default()
    topology = conditions_topology(kind, config.ports)
    flow_params = (params or NetworkParams()).with_overrides(backend="flow")
    bundle = build_bundle(topology, params=flow_params, seed=config.seed)
    bundle.converge(DEFAULT_WARMUP)
    model = bundle.flow_model
    assert isinstance(model, FluidTrafficModel)

    workload = FlowPartitionAggregateWorkload(
        bundle.network, model, bundle.streams, n_requests=config.n_requests
    )
    background = FlowBackgroundTraffic(bundle.network, model, bundle.streams)

    start = DEFAULT_WARMUP
    workload.schedule(start, config.duration)
    background.schedule(config.n_background_flows, start, config.duration)

    pattern = paper_failure_pattern(config.concurrent_failures, config.duration)
    events = generate_random_failures(
        topology, pattern, config.duration, bundle.streams, start=start
    )
    schedule_failures(bundle.network, events)
    n_failures, avg_concurrency = concurrency_profile(
        [e for e in events], config.duration
    )

    # same drain as the packet run: OSPF backoff settles and reliable
    # backlogs accumulated during outages get time to drain
    end = start + config.duration + seconds(15)
    bundle.sim.run(until=end)
    model.finalize()
    workload.collect()
    background.collect()
    workload.stats.censored_at = end

    return PartitionAggregateResult(
        kind=kind,
        config=config,
        stats=workload.stats,
        n_failures=n_failures,
        average_concurrency=avg_concurrency,
        background_completed=background.completed,
        background_total=len(background.flows),
    )


@dataclass
class FigureSixData:
    """Both panels of Fig 6 for one failure level."""

    concurrent_failures: int
    fat_tree: PartitionAggregateResult
    f2tree: PartitionAggregateResult

    @property
    def miss_reduction(self) -> float:
        """The paper's headline: F²Tree reduces deadline misses by >96 %."""
        return reduction_ratio(
            self.fat_tree.deadline_miss_ratio, self.f2tree.deadline_miss_ratio
        )


def run_figure_six(
    concurrent_failures: int = 1,
    config: Optional[PartitionAggregateConfig] = None,
    params: Optional[NetworkParams] = None,
) -> FigureSixData:
    """One failure level of Fig 6, both topologies."""
    config = config or PartitionAggregateConfig.default(concurrent_failures)
    fat = run_partition_aggregate("fat-tree", config, params)
    f2 = run_partition_aggregate("f2tree", config, params)
    return FigureSixData(concurrent_failures, fat, f2)


def render_figure_six(data: List[FigureSixData]) -> str:
    lines = [
        "Fig 6(a): deadline(250 ms)-miss ratio (paper: fat tree 0.4 % @1CF /"
        " 1.6 % @5CF; F2Tree 0 % / ~0.06 %)",
        f"{'CF':>3} {'topology':<10} {'requests':>9} {'miss ratio':>11} "
        f"{'failures':>9} {'avg conc.':>10}",
    ]
    for d in data:
        for r in (d.fat_tree, d.f2tree):
            lines.append(
                f"{d.concurrent_failures:>3} {r.kind:<10} {r.stats.total:>9} "
                f"{r.deadline_miss_ratio:>11.4%} {r.n_failures:>9} "
                f"{r.average_concurrency:>10.2f}"
            )
        lines.append(
            f"    -> F2Tree reduces deadline misses by {d.miss_reduction:.1%}"
        )
    lines.append("")
    lines.append("Fig 6(b): completion-time tail (fraction of requests > t)")
    for d in data:
        for r in (d.fat_tree, d.f2tree):
            tail = ", ".join(
                f">{int(to_milliseconds(t))}ms: {r.stats.fraction_longer_than(t):.4%}"
                for t in (
                    milliseconds(100),
                    milliseconds(200),
                    milliseconds(600),
                    seconds(1),
                )
            )
            lines.append(f"  CF={d.concurrent_failures} {r.kind:<10} {tail}")
    return "\n".join(lines)
