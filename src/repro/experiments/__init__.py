"""Experiment harnesses: one module per table/figure of the paper.

==============================  ==========================================
paper artifact                  harness
==============================  ==========================================
Fig 2 / Table III (testbed)     :mod:`repro.experiments.testbed`
Table IV / Fig 4 / Fig 5        :mod:`repro.experiments.conditions`
Fig 6 (partition-aggregate)     :mod:`repro.experiments.partition_aggregate`
Fig 7 (Leaf-Spine / VL2)        :mod:`repro.experiments.other_topologies`
Table I                         :mod:`repro.core.scalability`
Table II                        :mod:`repro.core.backup_routes`
design ablations                :mod:`repro.experiments.ablations`
==============================  ==========================================
"""

from .aspen import AspenRow, render_aspen_comparison, run_aspen_comparison
from .congestion import (
    CongestionResult,
    render_congestion,
    run_congestion_sweep,
    run_reroute_congestion,
)
from .ablations import (
    DetectionDelayPoint,
    FourAcrossOutcome,
    SpfTimerPoint,
    TieBreakOutcome,
    count_c4_loops,
    run_detection_delay_sweep,
    run_four_across_c7,
    run_spf_timer_sweep,
)
from .common import (
    DEFAULT_WARMUP,
    Bundle,
    build_bundle,
    full_scale,
    hosts_left_to_right,
    leftmost_host,
    rightmost_host,
)
from .extensions import (
    RoutingComparisonRow,
    UnidirectionalOutcome,
    render_routing_comparison,
    render_unidirectional,
    run_centralized_comparison,
    run_pathvector_comparison,
    run_unidirectional,
)
from .conditions import (
    ConditionRun,
    DelayProfile,
    FigureFourRow,
    conditions_topology,
    plan_scenario,
    render_figure_five,
    render_figure_four,
    run_condition,
    run_figure_five,
    run_figure_four,
)
from .other_topologies import (
    FigureSevenRow,
    figure_seven_topology,
    render_figure_seven,
    run_figure_seven,
)
from .partition_aggregate import (
    FigureSixData,
    PartitionAggregateConfig,
    PartitionAggregateResult,
    render_figure_six,
    run_figure_six,
    run_partition_aggregate,
)
from .recovery import (
    RecoveryResult,
    default_failed_links,
    reroute_delay_microseconds,
    run_recovery,
)
from .testbed import (
    TableThreeRow,
    render_table_three,
    run_table_three,
    run_testbed,
    testbed_topology,
)

__all__ = [
    "AspenRow",
    "render_aspen_comparison",
    "run_aspen_comparison",
    "CongestionResult",
    "render_congestion",
    "run_congestion_sweep",
    "run_reroute_congestion",
    "DetectionDelayPoint",
    "FourAcrossOutcome",
    "SpfTimerPoint",
    "TieBreakOutcome",
    "count_c4_loops",
    "run_detection_delay_sweep",
    "run_four_across_c7",
    "run_spf_timer_sweep",
    "DEFAULT_WARMUP",
    "Bundle",
    "build_bundle",
    "full_scale",
    "hosts_left_to_right",
    "leftmost_host",
    "rightmost_host",
    "RoutingComparisonRow",
    "UnidirectionalOutcome",
    "render_routing_comparison",
    "render_unidirectional",
    "run_centralized_comparison",
    "run_pathvector_comparison",
    "run_unidirectional",
    "ConditionRun",
    "DelayProfile",
    "FigureFourRow",
    "conditions_topology",
    "plan_scenario",
    "render_figure_five",
    "render_figure_four",
    "run_condition",
    "run_figure_five",
    "run_figure_four",
    "FigureSevenRow",
    "figure_seven_topology",
    "render_figure_seven",
    "run_figure_seven",
    "FigureSixData",
    "PartitionAggregateConfig",
    "PartitionAggregateResult",
    "render_figure_six",
    "run_figure_six",
    "run_partition_aggregate",
    "RecoveryResult",
    "default_failed_links",
    "reroute_delay_microseconds",
    "run_recovery",
    "TableThreeRow",
    "render_table_three",
    "run_table_three",
    "run_testbed",
    "testbed_topology",
]
