"""Aspen-tree baseline experiment (§VI / Table I critique, measured).

The paper's related-work argument against Aspen trees [3]: they add
fault tolerance *between chosen layers only* — an ``<f, 0>`` Aspen tree
duplicates agg↔core links, so a core-layer downward failure has an
immediate parallel backup, but a ToR↔agg failure still waits for the
control plane; and the duplication halves (for f = 1) the supported
hosts, versus F²Tree's low-order-term cost.

This harness measures exactly that:

* failing **one of the parallel** agg↔core links on an Aspen tree —
  recovery within the detection delay (the surviving parallel link is an
  immediate backup);
* failing the **rack link** on the same Aspen tree — full control-plane
  recovery, because the fault-tolerant layer doesn't help there;
* the same two failures on an equal-port F²Tree — both fast, at a far
  smaller capacity cost (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.f2tree import f2tree
from ..dataplane.params import NetworkParams
from ..metrics.timeseries import connectivity_loss_duration
from ..net.packet import PROTO_UDP
from ..sim.units import milliseconds, seconds, to_milliseconds
from ..topology.aspen import aspen_tree
from ..topology.graph import Topology
from ..transport.udp import UdpSender, UdpSink
from .common import DEFAULT_WARMUP, build_bundle, leftmost_host, rightmost_host
from .recovery import UDP_PORT, UDP_SPORT, run_recovery


@dataclass
class AspenRow:
    """One (topology, failure layer) measurement."""

    topology: str
    failure: str
    connectivity_loss_ms: float
    fast_recovery: bool
    hosts_supported: int


def _run_single_parallel_failure(
    topology: Topology, seed: int = 1
) -> float:
    """Fail exactly ONE of the parallel agg<->core links on the flow path
    (a bespoke runner: the stock injector fails whole bundles)."""
    bundle = build_bundle(topology, seed=seed)
    bundle.converge()
    network = bundle.network
    src, dst = leftmost_host(topology), rightmost_host(topology)
    path, ok = network.trace_route(src, dst, PROTO_UDP, UDP_SPORT, UDP_PORT)
    assert ok, path
    core, agg_d = path[-4], path[-3]
    parallels = network.links_between(core, agg_d)
    assert len(parallels) >= 2, "not a fault-tolerant layer"
    # fail exactly the parallel member this flow is hashed onto
    flow_key = (
        network.host(src).ip.value,
        network.host(dst).ip.value,
        PROTO_UDP,
        UDP_SPORT,
        UDP_PORT,
    )
    victim = network.switch(core).link_for(agg_d, flow_key)

    flow_start = DEFAULT_WARMUP
    failure_time = flow_start + milliseconds(380)
    flow_end = flow_start + seconds(1.5)
    network.sim.schedule_at(failure_time, victim.fail)

    sink = UdpSink(network.sim, network.host(dst), UDP_PORT)
    sender = UdpSender(
        network.sim, network.host(src), network.host(dst).ip, UDP_PORT,
        sport=UDP_SPORT,
    )
    sender.start(at=flow_start, stop_at=flow_end)
    network.sim.run(until=flow_end + milliseconds(500))
    return to_milliseconds(
        connectivity_loss_duration(
            [a.received_at for a in sink.arrivals], failure_time
        )
    )


def run_aspen_comparison(
    ports: int = 8,
    fault_tolerance: int = 1,
    params: Optional[NetworkParams] = None,
    seed: int = 1,
) -> List[AspenRow]:
    """The four Aspen-vs-F²Tree measurements (see module docstring)."""
    rows: List[AspenRow] = []

    aspen = aspen_tree(ports, fault_tolerance)
    loss = _run_single_parallel_failure(aspen, seed=seed)
    rows.append(
        AspenRow(
            topology=aspen.name,
            failure="one parallel agg<->core link",
            connectivity_loss_ms=loss,
            fast_recovery=loss <= 100,
            hosts_supported=len(aspen.hosts()),
        )
    )

    rack = run_recovery(
        aspen_tree(ports, fault_tolerance), "udp", params=params, seed=seed,
        flow_duration=seconds(1.5), drain=milliseconds(500),
    )
    assert rack.connectivity_loss is not None
    rows.append(
        AspenRow(
            topology=aspen.name,
            failure="rack (ToR<->agg) link",
            connectivity_loss_ms=to_milliseconds(rack.connectivity_loss),
            fast_recovery=rack.connectivity_loss <= milliseconds(100),
            hosts_supported=len(aspen.hosts()),
        )
    )

    f2 = f2tree(ports)
    for label in ("C2", "C1"):
        from .conditions import run_condition

        run = run_condition(
            "f2tree", label, "udp", ports=ports, seed=seed,
            flow_duration=seconds(1.5), drain=milliseconds(500),
        )
        loss_ns = run.result.connectivity_loss
        assert loss_ns is not None
        rows.append(
            AspenRow(
                topology=f2.name,
                failure=(
                    "agg<->core link" if label == "C2" else "rack (ToR<->agg) link"
                ),
                connectivity_loss_ms=to_milliseconds(loss_ns),
                fast_recovery=loss_ns <= milliseconds(100),
                hosts_supported=len(f2.hosts()),
            )
        )
    return rows


def render_aspen_comparison(rows: List[AspenRow]) -> str:
    lines = [
        "Baseline: Aspen tree <f=1,0> vs F2Tree (paper §VI: Aspen protects"
        " only its fault-tolerant layer, at half the capacity)",
        f"{'topology':<14} {'failure':<30} {'loss (ms)':>10} "
        f"{'fast?':>6} {'hosts':>6}",
    ]
    for row in rows:
        lines.append(
            f"{row.topology:<14} {row.failure:<30} "
            f"{row.connectivity_loss_ms:>10.1f} {str(row.fast_recovery):>6} "
            f"{row.hosts_supported:>6}"
        )
    return "\n".join(lines)
