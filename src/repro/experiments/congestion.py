"""Backup-path congestion under fast reroute (a critical-evaluation probe).

F²Tree concentrates all traffic of a failed downward link onto (at most)
two across links.  The paper treats the across links purely as *backup
capacity* and does not evaluate what happens when the rerouted load
exceeds one link's rate; this harness measures it honestly.

Method: we select CBR flows (by probing source ports) whose converged
paths all enter the destination rack through the **same** aggregation
switch, then fail that switch's rack link.  During the fast-reroute
window every one of those flows must share the single rightward across
link, so the offered load crosses the 1 Gbps boundary deterministically:

* aggregate rerouted load <= 1 link: fast reroute is loss-free after
  detection;
* aggregate rerouted load > 1 link: the across link saturates, its queue
  fills, and the excess drops until the control plane converges and
  re-spreads the flows — a *real* F²Tree limitation the reproduction
  surfaces (the price of local rerouting is local capacity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING, Tuple

from ..core.backup_routes import ring_neighbors_of
from ..core.f2tree import f2tree
from ..dataplane.params import NetworkParams
from ..net.packet import PROTO_UDP
from ..sim.units import Time, microseconds, milliseconds, seconds
from ..topology.graph import NodeKind
from ..transport.udp import UdpSender, UdpSink
from .common import DEFAULT_WARMUP, build_bundle, hosts_left_to_right

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability


@dataclass
class CongestionResult:
    """One load level of the reroute-congestion experiment."""

    n_hot_flows: int
    offered_mbps_per_flow: float
    #: fraction of the load offered during the reroute window delivered
    reroute_delivery_ratio: float
    #: fraction delivered after the control plane re-spread the flows
    post_convergence_delivery_ratio: float
    #: across-link transmit utilization during the reroute window
    across_utilization: float
    #: packets dropped at the across link's queue
    across_queue_drops: int

    @property
    def saturated(self) -> bool:
        return self.across_utilization > 0.98


def run_reroute_congestion(
    hot_flows: int,
    per_flow_interval: Time = microseconds(50),
    ports: int = 8,
    seed: int = 1,
    params: Optional[NetworkParams] = None,
    obs: "Optional[Observability]" = None,
) -> CongestionResult:
    """Run ``hot_flows`` CBR flows through one aggregation switch into one
    rack, fail the rack link, and measure the fast-reroute window.

    At the default interval each flow offers 1448 B / 50 us ~= 232 Mbps,
    so 4 hot flows fill the 1 Gbps across link and 5+ oversubscribe it.
    ``obs`` attaches an observability facade (campaign trials snapshot
    its metrics into their report).
    """
    topology = f2tree(ports)
    bundle = build_bundle(topology, params=params, seed=seed, obs=obs)
    bundle.converge()
    network = bundle.network

    dest_pod = topology.pods_of_kind(NodeKind.TOR)[-1]
    dest_tor = topology.pod_members(NodeKind.TOR, dest_pod)[-1]
    dest_hosts = topology.host_of_tor(dest_tor.name)
    sources = [
        h for h in hosts_left_to_right(topology)
        if topology.node(h).pod != dest_pod
    ]

    # probe flows until `hot_flows` of them enter via the same agg
    victim_agg: Optional[str] = None
    flows: List[Tuple[str, str, int, int]] = []
    probe_index = 0
    while len(flows) < hot_flows:
        probe_index += 1
        if probe_index > 500:
            raise RuntimeError("could not find enough co-routed flows")
        src = sources[probe_index % len(sources)]
        dst = dest_hosts[probe_index % len(dest_hosts)].name
        sport, dport = 11000 + probe_index, 7100 + probe_index
        path, ok = network.trace_route(src, dst, PROTO_UDP, sport, dport)
        if not ok:
            continue
        agg = path[-3]
        if victim_agg is None:
            victim_agg = agg
        if agg == victim_agg:
            flows.append((src, dst, sport, dport))
    assert victim_agg is not None

    flow_start = DEFAULT_WARMUP
    failure_time = flow_start + milliseconds(200)
    flow_end = flow_start + seconds(0.8)
    network.schedule_link_failure(victim_agg, dest_tor.name, failure_time)

    sinks: List[UdpSink] = []
    for src, dst, sport, dport in flows:
        sink = UdpSink(network.sim, network.host(dst), dport)
        sinks.append(sink)
        sender = UdpSender(
            network.sim, network.host(src), network.host(dst).ip, dport,
            sport=sport, interval=per_flow_interval,
        )
        sender.start(at=flow_start, stop_at=flow_end)

    neighbors = ring_neighbors_of(topology, victim_agg)
    assert neighbors is not None
    across_channel = network.link_between(
        victim_agg, neighbors.right
    ).channel_from(victim_agg)

    # fast-reroute window: detection -> new routes installed
    window_start = failure_time + network.params.detection_delay
    window_end = (
        window_start
        + network.params.spf_initial_delay
        + network.params.fib_update_delay
    )
    network.sim.run_until(window_start)
    busy_start = across_channel.stats.busy_ns
    received_start = sum(s.received for s in sinks)
    network.sim.run_until(window_end)
    busy_end = across_channel.stats.busy_ns
    received_end = sum(s.received for s in sinks)

    # post-convergence window of the same width, for comparison
    post_start = window_end + milliseconds(50)
    post_end = post_start + (window_end - window_start)
    network.sim.run_until(post_start)
    post_received_start = sum(s.received for s in sinks)
    network.sim.run_until(post_end)
    post_received_end = sum(s.received for s in sinks)
    network.sim.run_until(flow_end + milliseconds(300))

    window = window_end - window_start
    offered_per_window = hot_flows * (window // per_flow_interval)
    delivered = received_end - received_start
    post_delivered = post_received_end - post_received_start

    return CongestionResult(
        n_hot_flows=hot_flows,
        offered_mbps_per_flow=1448 * 8 * 1000.0 / per_flow_interval,
        reroute_delivery_ratio=(
            delivered / offered_per_window if offered_per_window else 0.0
        ),
        post_convergence_delivery_ratio=(
            post_delivered / offered_per_window if offered_per_window else 0.0
        ),
        across_utilization=(busy_end - busy_start) / window,
        across_queue_drops=across_channel.stats.dropped_queue,
    )


def run_congestion_sweep(
    flow_counts: Tuple[int, ...] = (2, 4, 6),
    ports: int = 8,
    seed: int = 1,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List[CongestionResult]:
    """Sweep offered load across the across-link capacity boundary.

    Campaign-backed: one trial per load level, fanned out over
    ``workers`` processes (default serial / ``REPRO_SWEEP_WORKERS``).
    """
    from ..campaign.runner import run_campaign
    from ..campaign.sweeps import congestion_specs, effective_workers

    specs = congestion_specs(flow_counts, ports=ports, seed=seed, timeout=timeout)
    report = run_campaign(
        specs, name="congestion", workers=effective_workers(workers),
        timeout=timeout,
    ).require_success()
    return [
        CongestionResult(
            n_hot_flows=payload["n_hot_flows"],
            offered_mbps_per_flow=payload["offered_mbps_per_flow"],
            reroute_delivery_ratio=payload["reroute_delivery_ratio"],
            post_convergence_delivery_ratio=payload[
                "post_convergence_delivery_ratio"
            ],
            across_utilization=payload["across_utilization"],
            across_queue_drops=payload["across_queue_drops"],
        )
        for payload in (report.payload_for(spec) for spec in specs)
    ]


def render_congestion(results: List[CongestionResult]) -> str:
    lines = [
        "Backup-path congestion during fast reroute (hot flows share one"
        " across link; 1 Gbps links)",
        f"{'flows':>6} {'offered/flow':>13} {'delivered':>10} "
        f"{'post-conv':>10} {'across util':>12} {'queue drops':>12}",
    ]
    for r in results:
        lines.append(
            f"{r.n_hot_flows:>6} {r.offered_mbps_per_flow:>8.0f} Mbps "
            f"{r.reroute_delivery_ratio:>10.1%} "
            f"{r.post_convergence_delivery_ratio:>10.1%} "
            f"{r.across_utilization:>12.1%} {r.across_queue_drops:>12}"
        )
    return "\n".join(lines)
