"""Bisection bandwidth and oversubscription analysis (§II-D).

The paper claims F²Tree "keeps the merits of fat tree such as no
oversubscription and rich path diversity, only trading a little bisection
bandwidth".  These functions make the claim checkable:

* :func:`bisection_bandwidth` — max-flow between the left and right
  halves of the hosts (the classic bisection);
* :func:`host_capacity` — max-flow between one host pair (1 link's worth
  everywhere in a non-oversubscribed fabric);
* :func:`rack_uplink_oversubscription` — rack downlink:uplink ratio
  (1:1 = non-oversubscribed).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..topology.graph import LinkKind, Topology
from .maxflow import FlowNetwork

#: synthetic terminals for multi-source/multi-sink flows
_SOURCE = ("__source__",)
_SINK = ("__sink__",)


def _flow_network(topo: Topology, link_capacity: float = 1.0) -> FlowNetwork:
    net = FlowNetwork()
    for link in topo.links.values():
        net.add_undirected(link.a, link.b, link_capacity)
    return net


def host_capacity(
    topo: Topology, src: str, dst: str, link_capacity: float = 1.0
) -> float:
    """Max-flow between two hosts (bounded by their single uplinks)."""
    return _flow_network(topo, link_capacity).max_flow(src, dst)


def bisection_bandwidth(
    topo: Topology,
    left: Optional[Sequence[str]] = None,
    right: Optional[Sequence[str]] = None,
    link_capacity: float = 1.0,
) -> float:
    """Max-flow between two host sets (defaults: left/right halves).

    The default split takes hosts in the paper's left-to-right figure
    order, so for pod-structured fabrics it cuts through the core — the
    worst (classic) bisection.
    """
    from ..experiments.common import hosts_left_to_right

    hosts = hosts_left_to_right(topo)
    if left is None or right is None:
        half = len(hosts) // 2
        left, right = hosts[:half], hosts[half:]
    if not left or not right:
        raise ValueError("both sides of the bisection need hosts")
    if set(left) & set(right):
        raise ValueError("bisection sides overlap")
    net = _flow_network(topo, link_capacity)
    for host in left:
        net.add_edge(_SOURCE, host, float("inf"))
    for host in right:
        net.add_edge(host, _SINK, float("inf"))
    return net.max_flow(_SOURCE, _SINK)


def full_bisection(topo: Topology, link_capacity: float = 1.0) -> float:
    """The non-blocking ideal: half the hosts sending at line rate."""
    n_hosts = len(topo.hosts())
    return (n_hosts // 2) * link_capacity


def rack_uplink_oversubscription(topo: Topology, tor: str) -> float:
    """downlink:uplink capacity ratio at a rack (1.0 = non-oversubscribed)."""
    links = topo.links_of(tor)
    down = sum(1 for l in links if l.kind is LinkKind.HOST)
    up = len(links) - down
    if up == 0:
        raise ValueError(f"{tor} has no uplinks")
    return down / up


def bisection_report(topologies: Sequence[Topology]) -> str:
    """Comparative table (used by the §II-D ablation benchmark)."""
    lines = [
        f"{'topology':<22} {'hosts':>6} {'bisection':>10} {'ideal':>7} "
        f"{'fraction':>9}"
    ]
    for topo in topologies:
        measured = bisection_bandwidth(topo)
        ideal = full_bisection(topo)
        fraction = measured / ideal if ideal else float("nan")
        lines.append(
            f"{topo.name:<22} {len(topo.hosts()):>6} {measured:>10.0f} "
            f"{ideal:>7.0f} {fraction:>9.1%}"
        )
    return "\n".join(lines)
