"""Runtime path auditing: loops and path inflation.

The paper warns that in larger networks, convergence causes "path
inflation and temporary loops".  :class:`PathAuditor` taps every switch's
forwarding hook and reconstructs, per packet, the sequence of switches it
visited — so experiments can *measure* loops (a packet revisiting a
switch), stretch (hops beyond the baseline), and where packets died.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..dataplane.network import Network
from ..net.packet import Packet


@dataclass
class PacketTrace:
    """The forwarding history of one packet."""

    uid: int
    visited: List[str] = field(default_factory=list)

    @property
    def looped(self) -> bool:
        return len(set(self.visited)) < len(self.visited)

    @property
    def hops(self) -> int:
        return len(self.visited)


class PathAuditor:
    """Records every forwarding operation in a network.

    Attach before traffic starts; query after.  Auditing every packet is
    O(1) per hop, so it is cheap enough to leave on in experiments that
    want loop/stretch evidence (e.g. the C7 ping-pong).
    """

    def __init__(self, network: Network, protocols: Tuple[int, ...] = ()) -> None:
        self.network = network
        #: restrict auditing to these IP protocols (empty = all)
        self.protocols = protocols
        self._traces: Dict[int, PacketTrace] = {}
        for switch in network.switches():
            switch.forward_taps.append(self._on_forward)

    def _on_forward(self, packet: Packet, switch_name: str) -> None:
        if self.protocols and packet.protocol not in self.protocols:
            return
        trace = self._traces.get(packet.uid)
        if trace is None:
            trace = PacketTrace(uid=packet.uid)
            self._traces[packet.uid] = trace
        trace.visited.append(switch_name)

    # -------------------------------------------------------------- queries

    @property
    def packets_seen(self) -> int:
        return len(self._traces)

    def traces(self) -> List[PacketTrace]:
        return list(self._traces.values())

    def looped_packets(self) -> List[PacketTrace]:
        """Packets that visited some switch more than once."""
        return [t for t in self._traces.values() if t.looped]

    def loop_ratio(self) -> float:
        if not self._traces:
            return 0.0
        return len(self.looped_packets()) / len(self._traces)

    def hop_histogram(self) -> Counter:
        """Distribution of per-packet switch-visit counts."""
        return Counter(t.hops for t in self._traces.values())

    def max_stretch(self, baseline_hops: int) -> int:
        """Worst extra hops observed relative to a baseline path length."""
        if not self._traces:
            return 0
        return max(t.hops for t in self._traces.values()) - baseline_hops

    def bounce_census(self) -> Counter:
        """How often each (a, b) switch pair bounced a packet a->b->a —
        the §II-C condition-4 signature."""
        bounces: Counter = Counter()
        for trace in self._traces.values():
            for first, second, third in zip(
                trace.visited, trace.visited[1:], trace.visited[2:]
            ):
                if first == third and first != second:
                    pair = tuple(sorted((first, second)))
                    bounces[pair] += 1
        return bounces
