"""Immediate-backup-link accounting, measured from live FIBs (§II-A/§II-B).

The paper defines an **immediate backup link** for link L at switch S: a
link S can keep forwarding on, using only local information, when L fails.
Instead of trusting the closed forms (fat tree: ``N/2-1`` upward, ``0``
downward; F²Tree: ``N/2`` upward, ``2`` downward), this module counts them
from a converged network's actual forwarding state: walk the FIB match
chain for the destination, drop the failed peer, and count the surviving
distinct next hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from ..dataplane.network import Network
from ..net.fib import LOCAL
from ..net.ip import IPv4Address


def immediate_backups(
    network: Network,
    switch: str,
    destination: IPv4Address,
    failed_peer: str,
) -> int:
    """Surviving forwarding choices at ``switch`` toward ``destination``
    if the adjacency to ``failed_peer`` died (local information only).

    Counts distinct next hops over the whole longest-prefix match chain —
    exactly the set the data plane's fall-through can reach — excluding
    the failed peer.
    """
    sw = network.switch(switch)
    survivors: Set[str] = set()
    for entry in sw.fib.matches(destination):
        for next_hop in entry.next_hops:
            if next_hop == LOCAL or next_hop == failed_peer:
                continue
            if sw.neighbor_alive(str(next_hop)):
                survivors.add(str(next_hop))
    return len(survivors)


@dataclass
class BackupProfile:
    """Backup-link counts for one switch, §II-A style."""

    switch: str
    #: surviving choices if the downward (destination-side) peer fails
    downward: int
    #: surviving choices if one upward peer fails
    upward: int


def profile_agg_switch(
    network: Network,
    agg: str,
    down_peer: str,
    local_destination: IPv4Address,
    remote_destination: IPv4Address,
    up_peer: str,
) -> BackupProfile:
    """The two §II-A numbers for one aggregation switch.

    ``local_destination`` must live under ``down_peer`` (a ToR below the
    agg); ``remote_destination`` must be reached via the uplinks.
    """
    return BackupProfile(
        switch=agg,
        downward=immediate_backups(network, agg, local_destination, down_peer),
        upward=immediate_backups(network, agg, remote_destination, up_peer),
    )
