"""Analysis tools: max-flow/bisection, backup-link accounting, path audits."""

from .auditing import PacketTrace, PathAuditor
from .census import (
    CensusResult,
    exhaustive_condition_census,
    relevant_links,
    render_census,
)
from .bisection import (
    bisection_bandwidth,
    bisection_report,
    full_bisection,
    host_capacity,
    rack_uplink_oversubscription,
)
from .maxflow import FlowNetwork
from .redundancy import BackupProfile, immediate_backups, profile_agg_switch

__all__ = [
    "PacketTrace",
    "PathAuditor",
    "CensusResult",
    "exhaustive_condition_census",
    "relevant_links",
    "render_census",
    "bisection_bandwidth",
    "bisection_report",
    "full_bisection",
    "host_capacity",
    "rack_uplink_oversubscription",
    "FlowNetwork",
    "BackupProfile",
    "immediate_backups",
    "profile_agg_switch",
]
