"""Max-flow on topologies (Edmonds-Karp).

Self-contained so the core library keeps zero dependencies; the test
suite cross-validates against networkx.  Used by
:mod:`repro.analysis.bisection` to check the §II-D claims about bisection
bandwidth and oversubscription.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


class FlowNetwork:
    """A directed capacitated graph with an Edmonds-Karp max-flow."""

    def __init__(self) -> None:
        self._capacity: Dict[Node, Dict[Node, float]] = {}

    def add_edge(self, u: Node, v: Node, capacity: float) -> None:
        """Add directed capacity (accumulating over parallel edges)."""
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity}")
        self._capacity.setdefault(u, {})
        self._capacity.setdefault(v, {})
        self._capacity[u][v] = self._capacity[u].get(v, 0.0) + capacity
        self._capacity[v].setdefault(u, 0.0)

    def add_undirected(self, u: Node, v: Node, capacity: float) -> None:
        """An undirected link: full capacity in each direction."""
        self.add_edge(u, v, capacity)
        self.add_edge(v, u, capacity)

    def max_flow(self, source: Node, sink: Node) -> float:
        """Edmonds-Karp (BFS augmenting paths) on a residual copy."""
        if source == sink:
            raise ValueError("source and sink must differ")
        residual: Dict[Node, Dict[Node, float]] = {
            u: dict(neighbors) for u, neighbors in self._capacity.items()
        }
        residual.setdefault(source, {})
        residual.setdefault(sink, {})
        total = 0.0
        while True:
            # BFS for the shortest augmenting path
            parents: Dict[Node, Node] = {source: source}
            queue = deque([source])
            while queue and sink not in parents:
                u = queue.popleft()
                for v, cap in residual.get(u, {}).items():
                    if cap > 1e-12 and v not in parents:
                        parents[v] = u
                        queue.append(v)
            if sink not in parents:
                return total
            # find the bottleneck
            bottleneck = float("inf")
            v = sink
            while v != source:
                u = parents[v]
                bottleneck = min(bottleneck, residual[u][v])
                v = u
            # augment
            v = sink
            while v != source:
                u = parents[v]
                residual[u][v] -= bottleneck
                residual[v][u] = residual[v].get(u, 0.0) + bottleneck
                v = u
            total += bottleneck
