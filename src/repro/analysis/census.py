"""Exhaustive failure-condition census (§II-C's robustness claim, proved).

The paper claims F²Tree fast-reroutes "under all the failure conditions
with no more than 2 concurrent link failures", and that the 3-failure
pattern that defeats it (condition 4) "could rarely happen in real
network".  Instead of sampling, this module **enumerates every k-subset**
of the links relevant to a destination (the pod's downward rack links and
its across ring) and classifies each with the §II-C analyzer — turning
the claim into a checked theorem for a given fabric size, and quantifying
exactly how rare the condition-4 patterns are at k = 3, 4, ...
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.failure_analysis import analyze_scenario
from ..topology.graph import LinkKind, NodeKind, Topology

LinkKey = Tuple[str, str]


def _key(a: str, b: str) -> LinkKey:
    return (a, b) if a <= b else (b, a)


def relevant_links(topo: Topology, dest_tor: str) -> List[LinkKey]:
    """The links whose failure can affect downward delivery to one rack:
    every (agg, dest_tor) link plus the pod's across ring."""
    pod = topo.node(dest_tor).pod
    assert pod is not None
    ring = [n.name for n in topo.pod_members(NodeKind.AGG, pod)]
    keys: List[LinkKey] = []
    for agg in ring:
        if topo.links_between(agg, dest_tor):
            keys.append(_key(agg, dest_tor))
    seen = set(keys)
    for agg in ring:
        for link in topo.links_of(agg):
            if link.kind is LinkKind.ACROSS:
                key = _key(link.a, link.b)
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
    return keys


@dataclass
class CensusResult:
    """Exhaustive classification of all k-subsets for one (rack, k)."""

    dest_tor: str
    k: int
    total_subsets: int
    #: condition -> number of subsets, counted for the *affected* cases
    by_condition: Counter
    #: subsets that do not fail the rack's own downward path at any agg
    unaffected: int

    @property
    def fast_rerouted(self) -> int:
        return sum(
            count
            for condition, count in self.by_condition.items()
            if condition.fast_reroute_succeeds
        )

    @property
    def degraded(self) -> int:
        """Subsets where some agg's fast reroute fails (condition 4 or
        both across links dead)."""
        return sum(
            count
            for condition, count in self.by_condition.items()
            if not condition.fast_reroute_succeeds
        )

    @property
    def survival_ratio(self) -> float:
        """Fraction of subsets that leave every affected agg able to fast
        reroute."""
        affected = self.total_subsets - self.unaffected
        if affected == 0:
            return 1.0
        return self.fast_rerouted / affected


def exhaustive_condition_census(
    topo: Topology, dest_tor: str, k: int
) -> CensusResult:
    """Classify every k-subset of the relevant links.

    Each subset is scored by its **worst** affected switch: for every agg
    whose downward rack link is in the subset, classify; the subset counts
    as degraded if *any* of them cannot fast-reroute (that switch's
    traffic is lost until convergence).
    """
    links = relevant_links(topo, dest_tor)
    if k > len(links):
        raise ValueError(f"k={k} exceeds the {len(links)} relevant links")
    pod = topo.node(dest_tor).pod
    ring = [n.name for n in topo.pod_members(NodeKind.AGG, pod)]

    by_condition: Counter = Counter()
    unaffected = 0
    total = 0
    for subset in itertools.combinations(links, k):
        total += 1
        failed = frozenset(subset)
        affected_aggs = [
            agg for agg in ring if _key(agg, dest_tor) in failed
        ]
        if not affected_aggs:
            unaffected += 1
            continue
        worst = None
        for agg in affected_aggs:
            analysis = analyze_scenario(topo, agg, dest_tor, failed)
            if worst is None or (
                not analysis.fast_reroute_succeeds
                and worst.fast_reroute_succeeds
            ):
                worst = analysis
        assert worst is not None
        by_condition[worst.condition] += 1
    return CensusResult(
        dest_tor=dest_tor,
        k=k,
        total_subsets=total,
        by_condition=by_condition,
        unaffected=unaffected,
    )


def render_census(results: Sequence[CensusResult]) -> str:
    lines = [
        "Exhaustive §II-C census: all k-subsets of the rack's relevant"
        " links (downward + across ring)",
        f"{'k':>3} {'subsets':>8} {'unaffected':>11} {'fast-rerouted':>14} "
        f"{'degraded':>9} {'survival':>9}",
    ]
    for r in results:
        lines.append(
            f"{r.k:>3} {r.total_subsets:>8} {r.unaffected:>11} "
            f"{r.fast_rerouted:>14} {r.degraded:>9} {r.survival_ratio:>9.1%}"
        )
    return "\n".join(lines)
