"""Seeded defects for the static verifier: its self-test layer.

The dynamic fuzzer (:mod:`repro.check.mutants`) proves its invariants
have teeth by showing each seeded fault is caught.  This module is the
same diagonal for the *static* verifier: every mutant breaks one wiring
or FIB mechanism, names the check that must refute it, and — where the
defect manifests as a forwarding fault at all — carries the dynamic
patch that lets its witness replay under ``CheckedSimulator``
(:mod:`repro.verify.replay`).

Three mutants are the static twins of ``repro.check`` fault mutants
(see :data:`CHECK_EQUIVALENTS`): whatever the fuzzer catches dynamically
for those faults, the verifier must refute statically.  The rest are
wiring/prefix defects only static analysis can see *before* any packet
is lost — the whole point of the subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.fib import FibEntry
from ..net.ip import Prefix
from ..topology.graph import Link, LinkKind, NodeKind, Topology
from .checks import (
    COVERAGE,
    LOOP_FREEDOM,
    PREFIX_SOUNDNESS,
    SEV_ERROR,
    WIRING,
    Finding,
    VerifyReport,
    run_verification,
)
from .model import StaticNetworkModel, build_verify_topology


@dataclass(frozen=True)
class VerifyMutant:
    """One deliberate wiring/FIB defect and the check that must refute it.

    A mutant perturbs exactly one stage of the model build: the topology
    (``rewire``), the backup-route derivation (``tie_break``), the LPM
    order (``shortest_first``), or the finished FIBs (``mutate_model``).
    ``apply_dynamic``, when set, is the equivalent patch on a converged
    simulator bundle so the static witness can be replayed.
    """

    name: str
    check: str
    description: str
    family: str = "f2tree"
    ports: int = 6
    tie_break: str = "prefix-length"
    shortest_first: bool = False
    #: mutates the built topology in place (miswiring defects)
    rewire: Optional[Callable[[Topology], None]] = field(
        default=None, compare=False
    )
    #: mutates the built StaticNetworkModel in place (FIB defects)
    mutate_model: Optional[Callable[[StaticNetworkModel], None]] = field(
        default=None, compare=False
    )
    #: the same fault as an instance patch on a converged bundle
    apply_dynamic: Optional[Callable[[object], None]] = field(
        default=None, compare=False
    )
    #: name of the ``repro.check`` fault mutant this is the twin of
    check_equivalent: Optional[str] = None


@dataclass(frozen=True)
class VerifyMutantResult:
    """One row of the verifier's self-test matrix."""

    name: str
    expected: str
    #: checks refuted on the *unmutated* build (must be empty)
    baseline: Tuple[str, ...]
    #: checks refuted on the mutated build (must include ``expected``)
    caught: Tuple[str, ...]
    #: whether the first error witness replayed dynamically
    #: (None: the defect has no forwarding witness — census-only)
    replayed: Optional[bool] = None
    replay_detail: str = ""

    @property
    def ok(self) -> bool:
        return (
            not self.baseline
            and self.expected in self.caught
            and self.replayed is not False
        )


# ------------------------------------------------------------ FIB mutations


def _model_withdraw_statics(model: StaticNetworkModel) -> None:
    """Strip every ring backup entry: the fall-through has nowhere to
    fall (static twin of ``backup-routes-disabled``)."""
    for name, entries in model.fibs.items():
        model.fibs[name] = [e for e in entries if e.source != "static"]


def _model_prefix_too_long(model: StaticNetworkModel) -> None:
    """Reinstall every backup at ``/24``: no longer strictly shorter than
    learned prefixes, and no longer covering the whole DCN block."""
    for name, entries in model.fibs.items():
        model.fibs[name] = [
            e if e.source != "static" else FibEntry(
                Prefix(e.prefix.address(0), 24),
                e.next_hops,
                source="static",
                metric=e.metric,
            )
            for e in entries
        ]


def _model_ring_order_swapped(model: StaticNetworkModel) -> None:
    """Swap the next hops along each switch's backup chain (``/16`` via
    *left*, ``/15`` via *right*): the prefix-to-direction pairing the
    paper's loop-avoidance argument rests on is reversed."""
    for name in model.switches:
        entries = model.fibs[name]
        statics = [e for e in entries if e.source == "static"]
        if len(statics) < 2:
            continue
        by_length = sorted(statics, key=lambda e: -e.prefix.length)
        hops = [e.next_hops for e in by_length][::-1]
        swapped = {
            e.prefix: FibEntry(e.prefix, h, source="static", metric=e.metric)
            for e, h in zip(by_length, hops)
        }
        model.fibs[name] = [
            swapped.get(e.prefix, e) if e.source == "static" else e
            for e in entries
        ]


# ----------------------------------------------------------- dynamic twins


def _dynamic_withdraw_statics(bundle: Any) -> None:
    for switch in bundle.network.switches():
        for entry in [
            e for e in switch.fib.entries() if e.source == "static"
        ]:
            switch.fib.withdraw(entry.prefix)


def _dynamic_invert_tie_break(bundle: Any) -> None:
    """Shortest-prefix-first ``Fib.matches`` — identical instance patch
    to ``repro.check.mutants._invert_fib_tie_break``."""
    for switch in bundle.network.switches():
        fib = switch.fib

        def shortest_first(address: Any, _fib: Any = fib) -> Any:
            matching = [
                e for e in _fib.entries() if e.prefix.contains(address)
            ]
            matching.sort(key=lambda e: e.prefix.length)
            return iter(matching)

        fib.matches = shortest_first


def _dynamic_prefix_too_long(bundle: Any) -> None:
    for switch in bundle.network.switches():
        statics = [
            e for e in switch.fib.entries() if e.source == "static"
        ]
        for entry in statics:
            switch.fib.withdraw(entry.prefix)
        for entry in statics:
            switch.fib.install(FibEntry(
                Prefix(entry.prefix.address(0), 24),
                entry.next_hops,
                source="static",
                metric=entry.metric,
            ))


# -------------------------------------------------------------- miswirings


def _pod0_agg_across(topo: Topology) -> List[Link]:
    aggs = {n.name for n in topo.pod_members(NodeKind.AGG, 0)}
    return [
        link
        for link in sorted(topo.links.values(), key=lambda l: l.link_id)
        if link.kind is LinkKind.ACROSS
        and link.a in aggs
        and link.b in aggs
    ]


def _cut_one_ring_link(topo: Topology) -> None:
    """Remove a single across link from the pod-0 aggregation ring: the
    ring census must report exactly one missing link."""
    topo.remove_link(_pod0_agg_across(topo)[0])


def _unwire_pod_ring(topo: Topology) -> None:
    """Remove *every* across link of the pod-0 aggregation ring: those
    aggs get no backup routes at all, so a single downward failure on
    them black-holes (a replayable forwarding witness)."""
    for link in _pod0_agg_across(topo):
        topo.remove_link(link)


def _cross_pod_across(topo: Topology) -> None:
    """Replace one in-ring across link with one that crosses pods: the
    census flags the stray link, the deficit, and the switches whose
    backup config can no longer be derived."""
    link = _pod0_agg_across(topo)[0]
    topo.remove_link(link)
    other_pod = topo.pod_members(NodeKind.AGG, 1)[0].name
    topo.add_link(link.a, other_pod, LinkKind.ACROSS)


# ---------------------------------------------------------------- registry

MUTANTS: Dict[str, VerifyMutant] = {}


def _register(mutant: VerifyMutant) -> VerifyMutant:
    MUTANTS[mutant.name] = mutant
    return mutant


_register(VerifyMutant(
    name="statics-withdrawn",
    check=COVERAGE,
    description="every ring backup entry stripped from the FIBs; "
                "downward failures have no fall-through",
    mutate_model=_model_withdraw_statics,
    apply_dynamic=_dynamic_withdraw_statics,
    check_equivalent="backup-routes-disabled",
))

_register(VerifyMutant(
    name="backup-tiebreak-none",
    check=LOOP_FREEDOM,
    description="backups installed as one /16 ECMP group instead of the "
                "/16-right + /15-left rule; two failures ping-pong the ring",
    tie_break="none",
    check_equivalent="backup-tiebreak-none",
))

_register(VerifyMutant(
    name="lpm-inverted",
    check=PREFIX_SOUNDNESS,
    description="LPM chain order inverted to shortest-prefix-first; the "
                "short statics shadow every learned route",
    shortest_first=True,
    apply_dynamic=_dynamic_invert_tie_break,
    check_equivalent="fib-tiebreak-inverted",
))

_register(VerifyMutant(
    name="backup-prefix-too-long",
    check=PREFIX_SOUNDNESS,
    description="backups reinstalled at /24: equal to learned prefixes "
                "and no longer covering the whole DCN block",
    mutate_model=_model_prefix_too_long,
    apply_dynamic=_dynamic_prefix_too_long,
))

_register(VerifyMutant(
    name="ring-order-swapped",
    check=PREFIX_SOUNDNESS,
    description="/16 points left and /15 right — the prefix-to-direction "
                "pairing of the loop-avoidance argument is reversed",
    mutate_model=_model_ring_order_swapped,
))

_register(VerifyMutant(
    name="ring-link-cut",
    check=WIRING,
    description="one across link of the pod-0 aggregation ring removed; "
                "only the wiring census can see it before packets do",
    rewire=_cut_one_ring_link,
))

_register(VerifyMutant(
    name="pod-ring-unwired",
    check=COVERAGE,
    description="the whole pod-0 aggregation ring unwired; its aggs have "
                "no backups, so one downward failure black-holes",
    rewire=_unwire_pod_ring,
))

_register(VerifyMutant(
    name="cross-pod-across",
    check=WIRING,
    description="an across link rewired to the wrong pod: stray link, "
                "ring deficit, and underivable backup configs",
    rewire=_cross_pod_across,
))

#: repro.check fault mutant name -> static twin in this registry.  The
#: other three check mutants (lsa-flood-dropped, detection-disabled,
#: channel-leak) break protocol *behaviour*, which no static model of
#: installed state can, or should, see.
CHECK_EQUIVALENTS: Dict[str, str] = {
    "backup-routes-disabled": "statics-withdrawn",
    "backup-tiebreak-none": "backup-tiebreak-none",
    "fib-tiebreak-inverted": "lpm-inverted",
}


# ---------------------------------------------------------------- self-test

_BASELINE_CACHE: Dict[Tuple[str, int, int], Tuple[str, ...]] = {}


def build_mutant_topology(mutant: VerifyMutant) -> Topology:
    topo = build_verify_topology(mutant.family, mutant.ports)
    if mutant.rewire is not None:
        mutant.rewire(topo)
    return topo


def run_mutant(
    mutant: VerifyMutant, max_failures: int = 2
) -> VerifyReport:
    """The verification report for one mutated build."""
    return run_verification(
        build_mutant_topology(mutant),
        max_failures=max_failures,
        tie_break=mutant.tie_break,
        shortest_first=mutant.shortest_first,
        mutate_model=mutant.mutate_model,
    )


def first_witness(report: VerifyReport) -> Optional[Finding]:
    """The first error finding carrying a concrete failure-set witness."""
    for finding in report.findings:
        if finding.severity == SEV_ERROR and finding.witness is not None:
            return finding
    return None


def check_mutant(
    name: str, max_failures: int = 2, replay: bool = True
) -> VerifyMutantResult:
    """One mutant's diagonal: baseline certifies, mutant is refuted by
    (at least) the expected check, and the witness — if the defect has
    one — replays under ``CheckedSimulator``."""
    mutant = MUTANTS[name]
    baseline_key = (mutant.family, mutant.ports, max_failures)
    if baseline_key not in _BASELINE_CACHE:
        clean = run_verification(
            build_verify_topology(mutant.family, mutant.ports),
            max_failures=max_failures,
        )
        _BASELINE_CACHE[baseline_key] = tuple(clean.refuted_checks())
    report = run_mutant(mutant, max_failures=max_failures)

    replayed: Optional[bool] = None
    replay_detail = ""
    witnessed = first_witness(report)
    if replay and witnessed is not None and witnessed.witness is not None:
        from .replay import replay_witness

        outcome = replay_witness(
            build_mutant_topology(mutant),
            witnessed.witness,
            tie_break=mutant.tie_break,
            apply_dynamic=mutant.apply_dynamic,
        )
        replayed = outcome.reproduced
        replay_detail = outcome.detail
    return VerifyMutantResult(
        name=name,
        expected=mutant.check,
        baseline=_BASELINE_CACHE[baseline_key],
        caught=tuple(report.refuted_checks()),
        replayed=replayed,
        replay_detail=replay_detail,
    )


def run_selftest(
    max_failures: int = 2, replay: bool = True
) -> List[VerifyMutantResult]:
    """The full mutant matrix, in name order."""
    return [
        check_mutant(name, max_failures=max_failures, replay=replay)
        for name in sorted(MUTANTS)
    ]


def render_selftest(results: List[VerifyMutantResult]) -> str:
    lines = [
        f"{'mutant':<24} {'expected check':<18} {'refuted':<34} "
        f"{'replay':<10} verdict",
    ]
    for result in results:
        caught = ",".join(result.caught) or "(none)"
        replay = (
            "n/a" if result.replayed is None
            else "ok" if result.replayed
            else "FAILED"
        )
        verdict = "ok" if result.ok else (
            f"FAIL (baseline: {','.join(result.baseline) or 'clean'})"
        )
        lines.append(
            f"{result.name:<24} {result.expected:<18} {caught:<34} "
            f"{replay:<10} {verdict}"
        )
    passed = sum(1 for r in results if r.ok)
    lines.append(
        f"{passed}/{len(results)} mutants refuted by their expected check"
    )
    return "\n".join(lines)
