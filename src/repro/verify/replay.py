"""Replay a static counterexample under the checked simulator.

A refutation from :mod:`repro.verify` is a claim about a system nobody
ran.  :func:`replay_witness` closes that loop: build the same (possibly
mutated) network under ``CheckedSimulator``, converge it, apply the
dynamic twin of the FIB defect if there is one, fail exactly the
witness's links, and — once the failure-detection window has passed but
before SPF reconvergence can repair anything — observe the predicted
loop or black hole in the *live* forwarding graph.

The forwarding graph is read through each switch's real ``Fib.matches``
and ``neighbor_alive``, not through any reference model, so a
reproduced witness means the deployed data plane misbehaves, not just
the verifier's abstraction of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, TYPE_CHECKING, Tuple

from ..net.fib import LOCAL, FibEntry
from ..net.ip import IPv4Address, Prefix
from ..dataplane.params import NetworkParams
from ..sim.units import milliseconds
from ..topology.graph import Topology
from .checks import Witness

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataplane.network import Network

#: forwarding graph: switch -> [(next hop, entry)] of its first live match
_Edges = Dict[str, List[Tuple[str, FibEntry]]]

#: control-plane warmup before the witness failures fire
_WARMUP = milliseconds(500)
#: failures fire this long after warmup (same offset execute_check uses)
_FAILURE_OFFSET = milliseconds(100)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one witness dynamically."""

    reproduced: bool
    detail: str
    #: engine-audit violations seen during the replay (must stay empty)
    timing_violations: int = 0


def _live_forwarding(
    network: "Network", address: IPv4Address
) -> Tuple[_Edges, Set[str]]:
    """The effective forwarding graph toward ``address`` right now, plus
    the switches that deliver locally.  Reads the patched ``fib.matches``
    so instance-level mutations (e.g. inverted tie-break) are honoured."""
    edges: _Edges = {}
    delivers: Set[str] = set()
    for switch in network.switches():
        for entry in switch.fib.matches(address):
            live = [
                nh for nh in entry.next_hops
                if nh == LOCAL or switch.neighbor_alive(str(nh))
            ]
            if not live:
                continue
            if LOCAL in live:
                delivers.add(switch.name)
            edges[switch.name] = [
                (str(nh), entry) for nh in live if nh != LOCAL
            ]
            break
    return edges, delivers


def _reaches_delivery(edges: _Edges, delivers: Set[str], start: str) -> bool:
    """Whether some live next-hop walk from ``start`` can deliver."""
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        if current in delivers:
            return True
        for nh, _entry in edges.get(current, ()):
            if nh not in seen:
                seen.add(nh)
                frontier.append(nh)
    return False


def _observe(
    network: "Network", witness: Witness, observations: List[ReplayResult]
) -> None:
    from ..check.invariants import find_cycles

    address = Prefix(witness.subnet).address(2)
    edges, delivers = _live_forwarding(network, address)
    if witness.kind == "loop":
        predicted = set(witness.nodes)
        for cycle in find_cycles(edges):
            members = {node for node, _, _ in cycle}
            if members & predicted:
                observations.append(ReplayResult(
                    True,
                    "live forwarding cycle "
                    f"{'->'.join(node for node, _, _ in cycle)} toward "
                    f"{witness.destination} (predicted {list(witness.nodes)})",
                ))
                return
        observations.append(ReplayResult(
            False,
            f"no live cycle touching {list(witness.nodes)} toward "
            f"{witness.destination}",
        ))
        return
    # blackhole: the witness switch must be unable to reach delivery
    if witness.at not in edges:
        observations.append(ReplayResult(
            True,
            f"{witness.at} has no live route toward {witness.destination}",
        ))
    elif not _reaches_delivery(edges, delivers, witness.at):
        observations.append(ReplayResult(
            True,
            f"every live walk from {witness.at} toward "
            f"{witness.destination} dead-ends",
        ))
    else:
        observations.append(ReplayResult(
            False,
            f"packets from {witness.at} still reach {witness.destination}",
        ))


def replay_witness(
    topo: Topology,
    witness: Witness,
    tie_break: str = "prefix-length",
    apply_dynamic: Optional[Callable[[object], None]] = None,
) -> ReplayResult:
    """Reproduce one static counterexample under ``CheckedSimulator``.

    ``topo`` must be the same (mutated) topology the verifier refuted;
    ``apply_dynamic`` is the bundle patch matching any model-level FIB
    mutation.  The observation happens after the detection window and
    before the earliest possible SPF repair, i.e. inside the fast-
    reroute window the witness speaks about (for an empty failure set —
    a baseline defect — it happens right after convergence).
    """
    from ..check.config import fast_overrides
    from ..check.execute import PRIORITY_CHECK, CheckedSimulator
    from ..experiments.common import build_bundle

    params = NetworkParams().with_overrides(**dict(fast_overrides()))
    sim = CheckedSimulator()
    bundle = build_bundle(
        topo, params=params, seed=1, backup_tie_break=tie_break, sim=sim,
        backup_on_error="skip",
    )
    bundle.converge(until=_WARMUP)
    if apply_dynamic is not None:
        apply_dynamic(bundle)

    pairs = sorted(set(witness.failed))
    if pairs:
        fail_at = _WARMUP + _FAILURE_OFFSET
        for a, b in pairs:
            bundle.network.schedule_link_failure(a, b, fail_at)
        # after detection (backups engaged), before the SPF initial delay
        observe_at = fail_at + params.detection_delay + milliseconds(2)
    else:
        observe_at = _WARMUP + milliseconds(2)

    observations: List[ReplayResult] = []
    sim.schedule_at(
        observe_at, _observe, bundle.network, witness, observations,
        priority=PRIORITY_CHECK,
    )
    sim.run(until=observe_at + milliseconds(1))
    result = observations[0]
    return ReplayResult(
        reproduced=result.reproduced,
        detail=result.detail,
        timing_violations=len(sim.timing_violations),
    )
