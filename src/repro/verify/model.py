"""The static network model: FIBs without a simulator.

:class:`StaticNetworkModel` computes, for every switch, exactly the FIB
the running system holds once converged:

* **connected** routes — a ToR/leaf's own host subnet via ``LOCAL``;
* **routed** entries — the global-SPF oracle (:func:`repro.routing.spf.
  compute_routes`) over an idealized LSDB in which every switch
  advertises what :func:`repro.routing.linkstate.deploy_linkstate`
  would (the host subnet for ToRs, a ``/32`` loopback for everyone);
* **static** entries — the F²Tree backup routes of
  :func:`repro.core.backup_routes.backup_routes_for`.

On top of those it offers the one primitive all checks share:
:meth:`resolve` — walk the LPM chain for an address, pruning next hops
whose every parallel link is in the failure set, and stop at the first
entry with a live hop.  That is a faithful, symbolic copy of
``SwitchNode._resolve_indexed`` minus the ECMP hash: the checks reason
over the *set* of live hops ECMP could spray over, so a certificate
holds for every hash outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.backup_routes import (
    RING_KINDS,
    RingNeighbors,
    backup_routes_for,
    ring_neighbors_of,
)
from ..net.fib import LOCAL, FibEntry
from ..net.ip import IPv4Address, Prefix
from ..routing.lsdb import Lsa, Lsdb
from ..routing.spf_cache import compute_routes_cached
from ..topology.addressing import assign_addresses
from ..topology.graph import Link, NodeKind, Topology, TopologyError

#: canonical (sorted) endpoint pair of a link
LinkKey = Tuple[str, str]
#: failure set representation: canonical pair -> number of failed
#: parallel links between that pair
FailedLinks = Mapping[LinkKey, int]

#: layer rank, for "downward" link classification (higher forwards down)
_LAYER_RANK = {
    NodeKind.HOST: 0,
    NodeKind.TOR: 1,
    NodeKind.LEAF: 1,
    NodeKind.AGG: 2,
    NodeKind.SPINE: 3,
    NodeKind.INTERMEDIATE: 3,
    NodeKind.CORE: 3,
}


def link_key(a: str, b: str) -> LinkKey:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class DestSpec:
    """One verified destination: a rack subnet and a representative host
    address inside it (F²Tree's guarantees are per destination prefix)."""

    tor: str
    subnet: Prefix
    address: IPv4Address


class StaticNetworkModel:
    """Converged FIBs of a topology, computed symbolically.

    ``tie_break`` mirrors ``configure_backup_routes`` ("prefix-length"
    is the paper's design, "none" the flawed equal-prefix ECMP variant).
    ``shortest_first`` inverts the LPM chain order — the static analogue
    of the fuzzer's ``fib-tiebreak-inverted`` mutant.

    A switch whose backup routes cannot be derived (e.g. across links
    that do not follow ring positions) does not crash the build; the
    defect lands in :attr:`config_errors` for the wiring census and the
    switch simply has no statics, exactly like a deployment where the
    config push failed.
    """

    def __init__(
        self,
        topo: Topology,
        tie_break: str = "prefix-length",
        shortest_first: bool = False,
    ) -> None:
        self.topo = topo
        self.tie_break = tie_break
        self.shortest_first = shortest_first
        self.plan = assign_addresses(topo)
        #: (switch, message) pairs for backup configs that failed to derive
        self.config_errors: List[Tuple[str, str]] = []

        self.switches: List[str] = sorted(
            n.name for n in topo.nodes.values() if n.kind.is_switch
        )
        #: switch -> peer switch -> number of parallel links
        self.link_count: Dict[str, Dict[str, int]] = {
            name: {} for name in self.switches
        }
        #: every switch<->switch link (the failure universe)
        self.fabric_links: List[Link] = []
        for link in sorted(topo.links.values(), key=lambda l: l.link_id):
            if not (
                topo.node(link.a).kind.is_switch
                and topo.node(link.b).kind.is_switch
            ):
                continue
            self.fabric_links.append(link)
            for end, peer in ((link.a, link.b), (link.b, link.a)):
                counts = self.link_count[end]
                counts[peer] = counts.get(peer, 0) + 1

        self.dests: List[DestSpec] = [
            DestSpec(t.name, t.subnet, t.subnet.address(2))
            for t in topo.tors()
            if t.subnet is not None
        ]
        self.ring_neighbors: Dict[str, Optional[RingNeighbors]] = {}
        self.fibs: Dict[str, List[FibEntry]] = {}
        self._build_fibs()
        #: switch kinds with at least one ring member: these layers claim
        #: F²Tree protection, so an unringed switch of the same kind is a
        #: deployment defect, not a plain (unprotected) topology
        self.protected_kinds = {
            self.topo.node(name).kind
            for name in self.switches
            if self.ring_neighbors.get(name) is not None
        }

    # ------------------------------------------------------------- build

    def _build_fibs(self) -> None:
        lsdb = Lsdb()
        for name in self.switches:
            node = self.topo.node(name)
            prefixes: List[Prefix] = []
            if node.subnet is not None:
                prefixes.append(node.subnet)
            assert node.ip is not None
            prefixes.append(Prefix(node.ip, 32))
            neighbors = tuple(sorted({
                peer
                for peer in self.topo.neighbors(name)
                if self.topo.node(peer).kind.is_switch
            }))
            lsdb.insert(Lsa(name, 1, neighbors, tuple(prefixes)))

        for name in self.switches:
            entries: List[FibEntry] = []
            node = self.topo.node(name)
            if node.subnet is not None:
                entries.append(
                    FibEntry(node.subnet, (LOCAL,), source="connected")
                )
            # memoized: two StaticNetworkModels over the same topology
            # (e.g. repeated verifier invocations, mutant baselines)
            # share one oracle run per switch
            routed = compute_routes_cached(name, lsdb)
            entries.extend(
                FibEntry(prefix, hops, source="linkstate")
                for prefix, hops in sorted(
                    routed.items(),
                    key=lambda kv: (kv[0].network, kv[0].length),
                )
            )
            entries.extend(self._static_entries(name))
            self.fibs[name] = entries

    def _static_entries(self, name: str) -> List[FibEntry]:
        try:
            self.ring_neighbors[name] = ring_neighbors_of(self.topo, name)
            routes = backup_routes_for(
                self.topo, name, tie_break=self.tie_break
            )
        except TopologyError as exc:
            self.ring_neighbors[name] = None
            self.config_errors.append((name, str(exc)))
            return []
        if not routes:
            return []
        # merge equal prefixes into one ECMP entry (tie_break="none")
        grouped: Dict[Prefix, List[str]] = {}
        for route in routes:
            grouped.setdefault(route.prefix, []).append(route.next_hop)
        return [
            FibEntry(prefix, tuple(hops), source="static")
            for prefix, hops in grouped.items()
        ]

    # --------------------------------------------------------- resolution

    def chain(self, switch: str, address: IPv4Address) -> List[FibEntry]:
        """Entries of ``switch`` covering ``address``, in the order the
        data plane's ``Fib.matches`` yields them (longest first, or
        shortest first under the inverted-tie-break mutation)."""
        matching = [
            e for e in self.fibs[switch] if e.prefix.contains(address)
        ]
        matching.sort(
            key=lambda e: e.prefix.length, reverse=not self.shortest_first
        )
        return matching

    def alive(self, switch: str, peer: str, failed: FailedLinks) -> bool:
        """Whether ``switch`` still sees ``peer`` up: at least one of the
        parallel links between them is outside the failure set.  A next
        hop that is not a neighbor at all (miswired statics) is dead."""
        count = self.link_count.get(switch, {}).get(peer, 0)
        if count == 0:
            return False
        return count > failed.get(link_key(switch, peer), 0)

    def resolve(
        self,
        switch: str,
        chain: List[FibEntry],
        failed: FailedLinks,
    ) -> Tuple[Optional[FibEntry], Tuple[str, ...]]:
        """First entry of ``chain`` with a live next hop, plus its live
        hops (``LOCAL`` counts as live — delivery).  ``(None, ())`` is a
        forwarding black hole."""
        for entry in chain:
            live = tuple(
                nh for nh in entry.next_hops
                if nh == LOCAL or self.alive(switch, str(nh), failed)
            )
            if live:
                return entry, live
        return None, ()

    # ----------------------------------------------------------- queries

    def downward_links(self, switch: str) -> List[Link]:
        """Links from ``switch`` to a strictly lower layer (the links
        whose failure triggers the paper's fall-through)."""
        rank = _LAYER_RANK[self.topo.node(switch).kind]
        return [
            l
            for l in self.topo.links_of(switch)
            if _LAYER_RANK[self.topo.node(l.other(switch)).kind] < rank
            and self.topo.node(l.other(switch)).kind.is_switch
        ]

    def should_be_protected(self, switch: str) -> bool:
        """Whether failures on ``switch`` must be survivable: it is a
        ring member, or other switches of its kind are (asymmetric
        protection is a miswiring, not a design choice)."""
        return (
            self.ring_neighbors.get(switch) is not None
            or self.topo.node(switch).kind in self.protected_kinds
        )

    def ring_switches(self) -> List[str]:
        """Switches holding at least one across link, sorted by name."""
        return [
            name
            for name in self.switches
            if self.ring_neighbors.get(name) is not None
        ]

    def static_entries_of(self, switch: str) -> List[FibEntry]:
        return [e for e in self.fibs[switch] if e.source == "static"]


def build_verify_topology(
    family: str, ports: int, across_ports: int = 2
) -> Topology:
    """Resolve a verify CLI/campaign topology family name.

    ``fattree``/``f2tree`` build the rewired F²Tree (the system under
    verification); ``fat-tree`` is the unrewired baseline.  The ringed
    Leaf-Spine / VL2 adaptations and the Aspen baseline round out the
    builders the certification tests cover.
    """
    from ..core.adapt import f2_leaf_spine, f2_vl2
    from ..core.f2tree import f2tree, rewire_fat_tree_prototype
    from ..topology.aspen import aspen_tree
    from ..topology.fattree import fat_tree
    from ..topology.leafspine import leaf_spine
    from ..topology.vl2 import vl2

    if family in ("f2tree", "fattree"):
        return f2tree(ports, across_ports=across_ports)
    if family == "fat-tree":
        return fat_tree(ports)
    if family == "prototype":
        return rewire_fat_tree_prototype()[0]
    if family == "leaf-spine":
        return f2_leaf_spine(ports, max(2, ports // 2))
    if family == "leaf-spine-plain":
        return leaf_spine(ports, max(2, ports // 2))
    if family == "vl2":
        return f2_vl2(ports, ports)
    if family == "vl2-plain":
        return vl2(ports, ports)
    if family == "aspen":
        return aspen_tree(ports, 1)
    raise TopologyError(f"unknown verify topology family {family!r}")
