"""The four static checks and the verification report.

Each check interrogates a :class:`~repro.verify.model.StaticNetworkModel`
and emits :class:`Finding`\\ s with one of four severities:

``error``
    A refutation of a property the paper claims — single-downward-failure
    coverage broken, a forwarding loop the prefix-length rule should have
    prevented, a static prefix shadowing a learned route, a miswired
    ring.  Any error makes the verdict ``REFUTED``.
``caveat``
    Behaviour the paper *documents* as a limitation, proved present:
    the two-failure transient ring loop (every static edge justified
    under the fall-through preference rule), or a multi-failure
    transient black hole that reconvergence will heal.  Caveats do not
    refute certification — they are its fine print, now machine-checked.
``warning``
    Degradation on an unprotected switch (no across links, so no claim
    is being made — e.g. the plain fat-tree baseline's aggs).
``info``
    Structural notes (e.g. a topology with no across rings at all).

The loop-freedom enumeration is exhaustive for failure sets up to size
2 and seeded-random above that.  It prunes with one soundness argument:
removing edges from a forwarding graph cannot create a cycle, so a
failure set can only introduce a defect if it forces at least one
switch *through* its baseline entry (all of that entry's next hops
dead).  Only the failed links' endpoint switches re-resolve, so per
failure set we re-resolve at most four switches and walk the forwarding
graph from the fallen ones.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..core.backup_routes import RING_KINDS, backup_prefix_chain
from ..net.fib import LOCAL, FibEntry
from ..sim.randomness import RandomStreams
from ..topology.graph import Link, LinkKind, NodeKind, Topology
from .model import (
    _LAYER_RANK,
    DestSpec,
    FailedLinks,
    LinkKey,
    StaticNetworkModel,
    link_key,
)

# check names
COVERAGE = "coverage"
LOOP_FREEDOM = "loop-freedom"
PREFIX_SOUNDNESS = "prefix-soundness"
WIRING = "wiring"
ALL_CHECKS = (COVERAGE, LOOP_FREEDOM, PREFIX_SOUNDNESS, WIRING)

# severities
SEV_ERROR = "error"
SEV_CAVEAT = "caveat"
SEV_WARNING = "warning"
SEV_INFO = "info"

#: recorded findings are capped per (check, defect); totals stay exact
MAX_FINDINGS_PER_DEFECT = 5
#: defects extracted from one forwarding-graph walk
MAX_DEFECTS_PER_SCAN = 3


@dataclass(frozen=True)
class Witness:
    """A concrete counterexample: fail these links, send toward this
    destination, observe this loop or dead end."""

    kind: str  # "loop" | "blackhole"
    #: failed links as canonical endpoint pairs (repeated for parallels)
    failed: Tuple[LinkKey, ...]
    destination: str  # destination ToR name
    subnet: str  # its /24, as text
    #: cycle members in forwarding order, or the walk ending at the hole
    nodes: Tuple[str, ...]
    #: switch where the defect manifests
    at: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "failed": [list(pair) for pair in self.failed],
            "destination": self.destination,
            "subnet": self.subnet,
            "nodes": list(self.nodes),
            "at": self.at,
        }


@dataclass(frozen=True)
class Finding:
    """One named defect (or certified caveat) with its evidence."""

    check: str
    defect: str
    severity: str
    subject: str
    detail: str
    witness: Optional[Witness] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "check": self.check,
            "defect": self.defect,
            "severity": self.severity,
            "subject": self.subject,
            "detail": self.detail,
        }
        if self.witness is not None:
            data["witness"] = self.witness.to_dict()
        return data

    def __str__(self) -> str:
        return (
            f"[{self.severity}] {self.check}/{self.defect} "
            f"{self.subject}: {self.detail}"
        )


class _Recorder:
    """Collects findings with per-defect caps and exact totals."""

    def __init__(self, cap: int = MAX_FINDINGS_PER_DEFECT) -> None:
        self.cap = cap
        self.findings: List[Finding] = []
        self.totals: Counter = Counter()

    def add(self, finding: Finding) -> None:
        key = (finding.check, finding.defect, finding.severity)
        self.totals[key] += 1
        if self.totals[key] <= self.cap:
            self.findings.append(finding)

    def count(self, severity: str) -> int:
        return sum(n for (_, _, sev), n in self.totals.items() if sev == severity)


@dataclass
class VerifyReport:
    """The deterministic result of one static verification run."""

    topology: str
    family: str
    ports: Optional[int]
    across_ports: Optional[int]
    max_failures: int
    tie_break: str
    findings: List[Finding]
    #: exact per-(check, defect, severity) totals (findings are capped)
    totals: Dict[str, int]
    stats: Dict[str, Any]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_ERROR]

    @property
    def caveats(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_CAVEAT]

    def severity_total(self, severity: str) -> int:
        """Exact finding count at a severity (``findings`` itself is
        capped per defect; the totals counter is not)."""
        return sum(
            n for key, n in self.totals.items()
            if key.endswith(f"/{severity}")
        )

    @property
    def certified(self) -> bool:
        return not any(key.endswith(f"/{SEV_ERROR}") for key in self.totals)

    @property
    def verdict(self) -> str:
        return "CERTIFIED" if self.certified else "REFUTED"

    def refuted_checks(self) -> List[str]:
        """Checks with at least one error, sorted."""
        return sorted({
            key.split("/", 1)[0]
            for key, n in self.totals.items()
            if n and key.endswith(f"/{SEV_ERROR}")
        })

    def to_dict(self) -> Dict[str, Any]:
        return {
            "topology": self.topology,
            "family": self.family,
            "ports": self.ports,
            "across_ports": self.across_ports,
            "max_failures": self.max_failures,
            "tie_break": self.tie_break,
            "verdict": self.verdict,
            "certified": self.certified,
            "refuted_checks": self.refuted_checks(),
            "totals": dict(sorted(self.totals.items())),
            "stats": self.stats,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        # canonical key order: verification reports are diffed and
        # committed as artifacts, so byte-identity matters here too
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self, limit: int = 20) -> str:
        sev_counts = Counter()
        for key, n in self.totals.items():
            sev_counts[key.rsplit("/", 1)[1]] += n
        lines = [
            f"repro verify — {self.topology} "
            f"(family={self.family}, max_failures={self.max_failures})",
            f"verdict: {self.verdict} "
            f"({sev_counts[SEV_ERROR]} errors, {sev_counts[SEV_CAVEAT]} caveats, "
            f"{sev_counts[SEV_WARNING]} warnings)",
        ]
        for check in ALL_CHECKS:
            stat = self.stats.get(check)
            if stat:
                rendered = ", ".join(f"{k}={v}" for k, v in stat.items())
                lines.append(f"  {check:<16} {rendered}")
        shown = self.findings[:limit]
        if shown:
            lines.append("findings:")
            lines.extend(f"  {finding}" for finding in shown)
            hidden = sum(self.totals.values()) - len(shown)
            if hidden > 0:
                lines.append(f"  ... and {hidden} more (see --json)")
        return "\n".join(lines)


# ===================================================================
# precomputed per-destination analysis state
# ===================================================================


class _Analysis:
    """Baseline chains, resolutions, and forwarding graphs per destination."""

    def __init__(self, model: StaticNetworkModel) -> None:
        self.model = model
        self.dests: List[DestSpec] = model.dests
        #: switch -> [LPM chain per destination index]
        self.chains: Dict[str, List[List[FibEntry]]] = {}
        #: switch -> [baseline (entry, live hops) per destination index]
        self.base: Dict[str, List[Tuple[Optional[FibEntry], Tuple[str, ...]]]] = {}
        #: switch -> [frozenset of baseline hops per destination index]
        self.base_hops: Dict[str, List[FrozenSet[str]]] = {}
        #: switch -> peer -> destination indices whose baseline entry
        #: depends *solely* on that peer (the fall-through triggers)
        self.sole_dep: Dict[str, Dict[str, List[int]]] = {}
        #: per destination: switch -> [(next hop, entry), ...]
        self.base_edges: List[Dict[str, List[Tuple[str, FibEntry]]]] = [
            {} for _ in self.dests
        ]
        no_failures: Dict[LinkKey, int] = {}
        for switch in model.switches:
            chains = [model.chain(switch, d.address) for d in self.dests]
            self.chains[switch] = chains
            resolved = [
                model.resolve(switch, chain, no_failures) for chain in chains
            ]
            self.base[switch] = resolved
            self.base_hops[switch] = [frozenset(hops) for _, hops in resolved]
            deps: Dict[str, List[int]] = {}
            for j, (entry, hops) in enumerate(resolved):
                if entry is not None:
                    self.base_edges[j][switch] = [
                        (nh, entry) for nh in hops if nh != LOCAL
                    ]
                if len(hops) == 1 and hops[0] != LOCAL:
                    deps.setdefault(hops[0], []).append(j)
            self.sole_dep[switch] = deps


def _check_baseline(analysis: _Analysis, rec: _Recorder) -> None:
    """Sanity precondition: with no failures, every destination's
    forwarding graph is a DAG whose only sink is the destination ToR."""
    model = analysis.model
    for j, dest in enumerate(analysis.dests):
        edges = analysis.base_edges[j]
        for switch in model.switches:
            entry, hops = analysis.base[switch][j]
            if entry is None:
                rec.add(Finding(
                    COVERAGE, "baseline-unroutable", SEV_ERROR, switch,
                    f"no route toward {dest.tor} ({dest.subnet}) even with "
                    f"every link up",
                ))
            elif entry.source == "static":
                rec.add(Finding(
                    PREFIX_SOUNDNESS, "static-shadows-routed", SEV_ERROR,
                    switch,
                    f"baseline lookup for {dest.subnet} resolves to the "
                    f"static {entry.prefix} via {entry.next_hops} instead "
                    f"of a learned route",
                ))
        for defect in _scan(
            analysis, j, {}, endpoints=(), roots=tuple(model.switches)
        ):
            # dead ends are already reported per switch above
            if defect.kind == "loop":
                rec.add(_defect_finding(
                    COVERAGE, defect, dest, {}, severity=SEV_ERROR,
                    defect_names=("baseline-cycle", "baseline-unroutable"),
                ))


# ===================================================================
# forwarding-graph walk under a failure set
# ===================================================================


@dataclass(frozen=True)
class _ScanDefect:
    kind: str  # "loop" | "blackhole"
    nodes: Tuple[str, ...]
    #: for loops: the (node, next hop, entry) triples of the cycle
    cycle: Tuple[Tuple[str, str, FibEntry], ...] = ()


def _scan(
    analysis: _Analysis,
    j: int,
    failed: FailedLinks,
    endpoints: Tuple[str, ...],
    roots: Tuple[str, ...],
) -> List[_ScanDefect]:
    """Walk destination ``j``'s forwarding graph under ``failed``.

    Only ``endpoints`` (the failed links' switches) can resolve
    differently from baseline; ``roots`` are the switches to walk from.
    Returns loops and dead ends, deterministically ordered.
    """
    model = analysis.model
    base_edges = analysis.base_edges[j]
    dest = analysis.dests[j].tor
    override: Dict[str, Optional[List[Tuple[str, FibEntry]]]] = {}
    for switch in endpoints:
        entry, live = model.resolve(switch, analysis.chains[switch][j], failed)
        if entry is None:
            override[switch] = None
        else:
            override[switch] = [(nh, entry) for nh in live if nh != LOCAL]

    def succ(name: str) -> Optional[List[Tuple[str, FibEntry]]]:
        if name in override:
            return override[name]
        return base_edges.get(name)

    defects: List[_ScanDefect] = []
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {dest: BLACK}

    for root in roots:
        if color.get(root, WHITE) != WHITE:
            continue
        root_succ = succ(root)
        if root_succ is None:
            defects.append(_ScanDefect("blackhole", (root,)))
            color[root] = BLACK
            if len(defects) >= MAX_DEFECTS_PER_SCAN:
                return defects
            continue
        color[root] = GRAY
        path = [root]
        stack: List[Iterator[Tuple[str, FibEntry]]] = [iter(root_succ)]
        while stack:
            advanced = False
            for nh, _entry in stack[-1]:
                state = color.get(nh, WHITE)
                if state == GRAY:
                    start = path.index(nh)
                    members = tuple(path[start:])
                    cycle = tuple(
                        (node, members[(i + 1) % len(members)],
                         _edge_entry(succ, node, members[(i + 1) % len(members)]))
                        for i, node in enumerate(members)
                    )
                    defects.append(_ScanDefect("loop", members, cycle))
                    if len(defects) >= MAX_DEFECTS_PER_SCAN:
                        return defects
                elif state == WHITE:
                    nh_succ = succ(nh)
                    if nh_succ is None or (not nh_succ and nh != dest):
                        defects.append(
                            _ScanDefect("blackhole", tuple(path) + (nh,))
                        )
                        color[nh] = BLACK
                        if len(defects) >= MAX_DEFECTS_PER_SCAN:
                            return defects
                        continue
                    if not nh_succ:
                        color[nh] = BLACK  # delivered
                        continue
                    color[nh] = GRAY
                    path.append(nh)
                    stack.append(iter(nh_succ))
                    advanced = True
                    break
            if not advanced:
                color[path.pop()] = BLACK
                stack.pop()
    return defects


def _edge_entry(
    succ: Callable[[str], Any], node: str, successor: str
) -> FibEntry:
    for next_hop, entry in succ(node) or ():
        if next_hop == successor:
            return entry
    raise KeyError((node, successor))


def _classify_cycle(
    model: StaticNetworkModel,
    cycle: Tuple[Tuple[str, str, FibEntry], ...],
    failed: FailedLinks,
) -> Tuple[str, str]:
    """(severity, reason) for a forwarding cycle.

    The paper's accepted transient loop is one in which *every* edge is
    a static ring route that the fall-through preference rule genuinely
    takes — each more-preferred ring neighbor is dead under the failure
    set.  Anything else (a routed edge, or a static edge taken while a
    more-preferred neighbor lives) violates loop-freedom outright.
    """
    for node, nh, entry in cycle:
        if entry.source != "static":
            return SEV_ERROR, (
                f"cycle uses routed edge {node}->{nh} ({entry.prefix})"
            )
        ring = model.ring_neighbors.get(node)
        if ring is None:
            return SEV_ERROR, f"static edge {node}->{nh} on a ring-less switch"
        justified = False
        for preferred in ring.ordered:
            if preferred == nh:
                justified = True
                break
            if model.alive(node, preferred, failed):
                return SEV_ERROR, (
                    f"unjustified static edge {node}->{nh}: more-preferred "
                    f"ring neighbor {preferred} is still alive"
                )
        if not justified:
            return SEV_ERROR, (
                f"static edge {node}->{nh} leaves the ring entirely"
            )
    return SEV_CAVEAT, (
        "every edge is a justified static ring route — the paper's "
        "documented transient multi-failure ring loop"
    )


def _failed_pairs(failed: FailedLinks) -> Tuple[LinkKey, ...]:
    pairs: List[LinkKey] = []
    for pair in sorted(failed):
        pairs.extend([pair] * failed[pair])
    return tuple(pairs)


def _defect_finding(
    check: str,
    defect: _ScanDefect,
    dest: DestSpec,
    failed: FailedLinks,
    severity: str,
    detail: str = "",
    defect_names: Tuple[str, str] = ("forwarding-loop", "blackhole"),
) -> Finding:
    loop_name, hole_name = defect_names
    witness = Witness(
        kind=defect.kind,
        failed=_failed_pairs(failed),
        destination=dest.tor,
        subnet=str(dest.subnet),
        nodes=defect.nodes,
        at=defect.nodes[0] if defect.kind == "loop" else defect.nodes[-1],
    )
    if defect.kind == "loop":
        text = detail or f"forwarding cycle {'->'.join(defect.nodes)}"
        return Finding(
            check, loop_name, severity, witness.at,
            f"toward {dest.tor} ({dest.subnet}) after failing "
            f"{list(witness.failed)}: {text}",
            witness,
        )
    text = detail or (
        f"packets toward {dest.tor} ({dest.subnet}) die at {witness.at} "
        f"after failing {list(witness.failed)}"
    )
    return Finding(check, hole_name, severity, witness.at, text, witness)


# ===================================================================
# check 1: coverage
# ===================================================================


def _check_coverage(analysis: _Analysis, rec: _Recorder) -> Dict[str, Any]:
    model = analysis.model
    covered: Counter = Counter()
    downward_total = 0
    uncovered = 0

    for switch in model.switches:
        node = model.topo.node(switch)
        if _LAYER_RANK[node.kind] < 2:
            continue
        is_ring = model.should_be_protected(switch)
        seen_peers: set = set()
        for link in model.downward_links(switch):
            peer = link.other(switch)
            if peer in seen_peers:
                continue  # parallel links are judged once, as a group
            seen_peers.add(peer)
            served = [
                j for j, hops in enumerate(analysis.base_hops[switch])
                if peer in hops
            ]
            downward_total += 1
            if not served:
                continue
            if model.link_count[switch][peer] > 1:
                covered["parallel"] += len(served)
                continue
            failed = {link_key(switch, peer): 1}
            endpoints = (switch, peer)
            for j in served:
                entry, live = model.resolve(
                    switch, analysis.chains[switch][j], failed
                )
                dest = analysis.dests[j]
                if entry is None:
                    uncovered += 1
                    severity = SEV_ERROR if is_ring else SEV_WARNING
                    defect = (
                        "uncovered-downward-link" if is_ring
                        else "unprotected-downward-link"
                    )
                    rec.add(Finding(
                        COVERAGE, defect, severity, switch,
                        f"downward link {switch}<->{peer}: no fall-through "
                        f"for {dest.tor} ({dest.subnet}) — lookup exhausts "
                        f"the FIB",
                        Witness(
                            "blackhole", _failed_pairs(failed), dest.tor,
                            str(dest.subnet), (switch,), switch,
                        ),
                    ))
                    continue
                base_entry, _ = analysis.base[switch][j]
                if entry is base_entry:
                    covered["ecmp"] += 1
                    continue
                covered["backup" if entry.source == "static" else "reroute"] += 1
                for defect in _scan(
                    analysis, j, failed, endpoints, roots=(switch,)
                ):
                    if defect.kind == "loop":
                        severity, reason = _classify_cycle(
                            model, defect.cycle, failed
                        )
                        # a single downward failure must never loop
                        rec.add(_defect_finding(
                            COVERAGE, defect, dest, failed,
                            severity=SEV_ERROR, detail=reason,
                        ))
                    else:
                        uncovered += 1
                        rec.add(_defect_finding(
                            COVERAGE, defect, dest, failed,
                            severity=SEV_ERROR if is_ring else SEV_WARNING,
                            defect_names=(
                                "forwarding-loop", "uncovered-downward-link",
                            ),
                        ))
    return {
        "downward_links": downward_total,
        "fallthrough_backup": covered["backup"],
        "ecmp": covered["ecmp"],
        "parallel": covered["parallel"],
        "reroute": covered["reroute"],
        "uncovered": uncovered,
    }


# ===================================================================
# check 2: loop freedom under k failures
# ===================================================================


def _examine_failure_set(
    analysis: _Analysis,
    links: Sequence[Link],
    rec: _Recorder,
    stats: Counter,
) -> None:
    model = analysis.model
    failed: Dict[LinkKey, int] = {}
    for link in links:
        key = link_key(link.a, link.b)
        failed[key] = failed.get(key, 0) + 1
    endpoints = tuple(sorted({link.a for link in links}
                            | {link.b for link in links}))
    killed: Dict[str, set] = {}
    for switch in endpoints:
        peers = {
            link.other(switch) for link in links if switch in (link.a, link.b)
        }
        dead = {p for p in peers if not model.alive(switch, p, failed)}
        if dead:
            killed[switch] = dead
    if not killed:
        return  # every endpoint keeps all its peers: resolution unchanged

    fallen_by_dest: Dict[int, List[str]] = {}
    for switch, dead in killed.items():
        if len(dead) == 1:
            peer = next(iter(dead))
            for j in analysis.sole_dep[switch].get(peer, ()):
                fallen_by_dest.setdefault(j, []).append(switch)
        else:
            hops_by_dest = analysis.base_hops[switch]
            for j in range(len(analysis.dests)):
                hops = hops_by_dest[j]
                if hops and hops <= dead:
                    fallen_by_dest.setdefault(j, []).append(switch)
    if not fallen_by_dest:
        return  # edges only shrink: no new cycle, no black hole

    k = len(links)
    for j in sorted(fallen_by_dest):
        stats["fallthrough_states"] += 1
        roots = tuple(sorted(fallen_by_dest[j]))
        dest = analysis.dests[j]
        for defect in _scan(analysis, j, failed, endpoints, roots):
            if defect.kind == "loop":
                severity, reason = _classify_cycle(model, defect.cycle, failed)
                if k == 1:
                    severity = SEV_ERROR  # single failures must never loop
                stats["caveat_cycles" if severity == SEV_CAVEAT
                      else "error_cycles"] += 1
                rec.add(_defect_finding(
                    LOOP_FREEDOM, defect, dest, failed,
                    severity=severity,
                    detail=reason,
                    defect_names=("transient-ring-loop"
                                  if severity == SEV_CAVEAT
                                  else "forwarding-loop", "blackhole"),
                ))
            else:
                hole = defect.nodes[-1]
                protected = model.should_be_protected(hole)
                if k == 1:
                    severity = SEV_ERROR if protected else SEV_WARNING
                    name = "blackhole"
                elif _physically_partitioned(model, hole, dest.tor, failed):
                    stats["partitioned"] += 1
                    continue  # no scheme can forward across a cut
                else:
                    severity = SEV_CAVEAT if protected else SEV_WARNING
                    name = "transient-blackhole"
                stats["blackholes"] += 1
                rec.add(_defect_finding(
                    LOOP_FREEDOM, defect, dest, failed,
                    severity=severity,
                    defect_names=("forwarding-loop", name),
                ))


def _physically_partitioned(
    model: StaticNetworkModel,
    start: str,
    dest: str,
    failed: FailedLinks,
) -> bool:
    """True when no live fabric path joins ``start`` to ``dest``."""
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        if current == dest:
            return False
        for peer in model.link_count.get(current, ()):
            if peer not in seen and model.alive(current, peer, failed):
                seen.add(peer)
                frontier.append(peer)
    return dest not in seen


def _check_loop_freedom(
    analysis: _Analysis,
    rec: _Recorder,
    max_failures: int,
    samples: int,
    seed: int,
) -> Dict[str, Any]:
    model = analysis.model
    links = model.fabric_links
    stats: Counter = Counter()

    def is_downward(link: Link) -> bool:
        return (
            _LAYER_RANK[model.topo.node(link.a).kind]
            != _LAYER_RANK[model.topo.node(link.b).kind]
        )

    if max_failures >= 1:
        # downward singles are the coverage check's domain; the k=1 sweep
        # here covers the remaining (equal-layer, i.e. across) links
        for link in links:
            if is_downward(link):
                continue
            stats["k1"] += 1
            _examine_failure_set(analysis, (link,), rec, stats)
    if max_failures >= 2:
        n = len(links)
        for i in range(n):
            for jdx in range(i + 1, n):
                stats["k2"] += 1
                _examine_failure_set(
                    analysis, (links[i], links[jdx]), rec, stats
                )
    if max_failures >= 3:
        rng = RandomStreams(seed).stream("verify-loop-sampling")
        for k in range(3, max_failures + 1):
            drawn: set = set()
            budget = min(samples, _n_choose_k(len(links), k))
            while len(drawn) < budget:
                picked = tuple(sorted(rng.sample(range(len(links)), k)))
                if picked in drawn:
                    continue
                drawn.add(picked)
                stats[f"k{k}"] += 1
                _examine_failure_set(
                    analysis, tuple(links[i] for i in picked), rec, stats
                )
    return {
        "failure_sets": {
            key: stats[key]
            for key in sorted(stats) if key.startswith("k")
        },
        "fallthrough_states": stats["fallthrough_states"],
        "caveat_cycles": stats["caveat_cycles"],
        "error_cycles": stats["error_cycles"],
        "blackholes": stats["blackholes"],
        "partitioned": stats["partitioned"],
    }


def _n_choose_k(n: int, k: int) -> int:
    result = 1
    for i in range(k):
        result = result * (n - i) // (i + 1)
    return result


# ===================================================================
# check 3: prefix-scheme soundness
# ===================================================================


def _check_prefix_soundness(
    analysis: _Analysis, rec: _Recorder
) -> Dict[str, Any]:
    model = analysis.model
    ring_switches = 0
    statics_total = 0
    for switch in model.switches:
        entries = model.fibs[switch]
        statics = [e for e in entries if e.source == "static"]
        learned = [e for e in entries if e.source != "static"]

        seen: Dict = {}
        for entry in entries:
            if entry.prefix in seen:
                rec.add(Finding(
                    PREFIX_SOUNDNESS, "duplicate-prefix", SEV_ERROR, switch,
                    f"{entry.prefix} installed twice ({seen[entry.prefix]} "
                    f"and {entry.source}) — LPM order between them is "
                    f"undefined",
                ))
            else:
                seen[entry.prefix] = entry.source
        if not statics or not learned:
            continue
        ring_switches += 1
        statics_total += len(statics)

        min_learned = min(e.prefix.length for e in learned)
        for entry in statics:
            if entry.prefix.length >= min_learned:
                rec.add(Finding(
                    PREFIX_SOUNDNESS, "backup-not-shorter", SEV_ERROR, switch,
                    f"static {entry.prefix} (/{entry.prefix.length}) is not "
                    f"strictly shorter than every learned prefix (shortest "
                    f"learned is /{min_learned}) — it can shadow live routes",
                ))
        ordered = sorted(statics, key=lambda e: -e.prefix.length)
        for longer, shorter in zip(ordered, ordered[1:]):
            if not shorter.prefix.contains(longer.prefix.address(0)):
                rec.add(Finding(
                    PREFIX_SOUNDNESS, "backup-not-nested", SEV_ERROR, switch,
                    f"static {shorter.prefix} does not cover static "
                    f"{longer.prefix}: the fall-through chain has a gap",
                ))
        longest = ordered[0].prefix
        missed = [
            d for d in analysis.dests if not longest.contains(d.address)
        ]
        if missed:
            rec.add(Finding(
                PREFIX_SOUNDNESS, "backup-misses-subnet", SEV_ERROR, switch,
                f"backup prefix {longest} does not cover "
                f"{len(missed)} rack subnet(s), e.g. {missed[0].subnet}",
            ))

        ring = model.ring_neighbors.get(switch)
        if ring is not None:
            expected_chain = backup_prefix_chain(len(ring.ordered))
            expected = {
                prefix: (neighbor,)
                for prefix, neighbor in zip(expected_chain, ring.ordered)
            }
            actual = {e.prefix: e.next_hops for e in statics}
            if actual != expected:
                rec.add(Finding(
                    PREFIX_SOUNDNESS, "backup-preference-order", SEV_ERROR,
                    switch,
                    f"statics {_fmt_routes(actual)} do not implement the "
                    f"rightward-first prefix-length rule "
                    f"{_fmt_routes(expected)}",
                ))
    return {
        "ring_switches": ring_switches,
        "static_routes": statics_total,
    }


def _fmt_routes(routes: Dict) -> str:
    return "{" + ", ".join(
        f"{prefix}->{'/'.join(str(h) for h in hops)}"
        for prefix, hops in sorted(
            routes.items(), key=lambda kv: -kv[0].length
        )
    ) + "}"


# ===================================================================
# check 4: wiring conformance
# ===================================================================


def _expected_ring_pairs(members: List[str], across_ports: int) -> Counter:
    """The across-link multiset ``_add_ring`` wires for this member list."""
    n = len(members)
    pairs: Counter = Counter()
    if n < 2:
        return pairs
    for d in range(1, across_ports // 2 + 1):
        if d > 1 and n <= 2 * (d - 1) + 1:
            continue
        if n == 2 and d == 1:
            pairs[link_key(members[0], members[1])] += 2
            continue
        if n == 2 * d:
            for i in range(d):
                pairs[link_key(members[i], members[(i + d) % n])] += 1
            continue
        for i in range(n):
            pairs[link_key(members[i], members[(i + d) % n])] += 1
    return pairs


def _check_wiring(analysis: _Analysis, rec: _Recorder) -> Dict[str, Any]:
    model = analysis.model
    topo = model.topo
    across = [
        l for l in topo.links.values() if l.kind is LinkKind.ACROSS
    ]
    for switch, message in model.config_errors:
        rec.add(Finding(
            WIRING, "backup-config-underivable", SEV_ERROR, switch,
            f"backup routes cannot be derived from the wiring: {message}",
        ))
    if not across:
        rec.add(Finding(
            WIRING, "no-across-rings", SEV_INFO, topo.name,
            "topology has no across links; nothing to verify against the "
            "paper's ring specification (unrewired baseline)",
        ))
        return {"across_links": 0, "rings": 0}

    across_ports = int(topo.params.get("across_ports", 2))
    actual: Counter = Counter(link_key(l.a, l.b) for l in across)
    expected: Counter = Counter()
    rings = 0
    for kind in RING_KINDS:
        for pod in topo.pods_of_kind(kind):
            members = [n.name for n in topo.pod_members(kind, pod)]
            ring_pairs = _expected_ring_pairs(members, across_ports)
            if not ring_pairs:
                continue
            member_set = set(members)
            # a pod ring only carries an expectation once any of its
            # members participates in across wiring at all
            if not any(
                l for l in across
                if l.a in member_set or l.b in member_set
            ):
                # other pods of this kind ringed -> a real miswiring;
                # kind not ringed anywhere -> plain/unprotected layer
                severity = (
                    SEV_ERROR if kind in model.protected_kinds
                    else SEV_WARNING
                )
                rec.add(Finding(
                    WIRING, "missing-ring", severity,
                    f"{kind.value}-pod-{pod}",
                    f"no across links at all on ring "
                    f"{members} (pod left unrewired)",
                ))
                continue
            rings += 1
            expected.update(ring_pairs)

    for pair in sorted(expected):
        missing = expected[pair] - actual.get(pair, 0)
        for _ in range(max(0, missing)):
            rec.add(Finding(
                WIRING, "missing-ring-link", SEV_ERROR, f"{pair[0]}<->{pair[1]}",
                f"the specified pod ring requires {expected[pair]} across "
                f"link(s) {pair[0]}<->{pair[1]}; found {actual.get(pair, 0)}",
            ))
    for pair in sorted(actual):
        extra = actual[pair] - expected.get(pair, 0)
        for _ in range(max(0, extra)):
            a, b = pair
            detail = "not part of any specified pod ring"
            if topo.node(a).kind is not topo.node(b).kind:
                detail = "joins switches of different layers"
            elif topo.node(a).pod != topo.node(b).pod:
                detail = "crosses pods"
            rec.add(Finding(
                WIRING, "stray-across-link", SEV_ERROR, f"{a}<->{b}",
                f"across link {a}<->{b} is {detail}",
            ))
    return {
        "across_links": len(across),
        "rings": rings,
        "expected_ring_links": sum(expected.values()),
    }


# ===================================================================
# entry point
# ===================================================================


def run_verification(
    topo: Topology,
    max_failures: int = 2,
    samples: int = 50,
    seed: int = 1,
    tie_break: str = "prefix-length",
    shortest_first: bool = False,
    mutate_model: Optional[Callable[[StaticNetworkModel], None]] = None,
) -> VerifyReport:
    """Statically verify one built topology; see the module docstring.

    Deterministic: the same ``(topology, arguments)`` pair always yields
    the identical report (k>2 sampling uses the seeded stream registry).
    ``mutate_model`` is the self-test hook: a callable applied to the
    built :class:`StaticNetworkModel` before any check runs, mirroring
    how ``repro.check`` mutants patch a converged bundle.
    """
    model = StaticNetworkModel(
        topo, tie_break=tie_break, shortest_first=shortest_first
    )
    if mutate_model is not None:
        mutate_model(model)
    analysis = _Analysis(model)
    rec = _Recorder()
    stats: Dict[str, Any] = {
        "switches": len(model.switches),
        "fabric_links": len(model.fabric_links),
        "destinations": len(model.dests),
    }
    _check_baseline(analysis, rec)
    stats[COVERAGE] = _check_coverage(analysis, rec)
    stats[LOOP_FREEDOM] = _check_loop_freedom(
        analysis, rec, max_failures, samples, seed
    )
    stats[PREFIX_SOUNDNESS] = _check_prefix_soundness(analysis, rec)
    stats[WIRING] = _check_wiring(analysis, rec)

    return VerifyReport(
        topology=topo.name,
        family=str(topo.params.get("family", topo.name)),
        ports=topo.params.get("ports"),
        across_ports=topo.params.get("across_ports"),
        max_failures=max_failures,
        tie_break=tie_break,
        findings=rec.findings,
        totals={
            f"{check}/{defect}/{severity}": count
            for (check, defect, severity), count in sorted(rec.totals.items())
        },
        stats=stats,
    )
