"""Static verification of F²Tree backup properties (no simulation).

``repro.verify`` proves — or refutes, with concrete counterexamples —
the structural claims the paper makes about the rewired fabric:

* **coverage**: every downward link on every ring switch has a live
  across-link fall-through for every destination prefix it serves;
* **loop-freedom**: for every destination ``/24`` and every failure set
  up to size *k*, the next-hop-after-LPM-fall-through graph is acyclic
  (the paper's accepted two-failure ring loop surfaces as an explicit
  *caveat* finding, not an error);
* **prefix-scheme soundness**: the ``/16``/``/15`` backups are strictly
  shorter than every learned prefix and never shadow one;
* **wiring conformance**: the two rewired links per switch form the pod
  ring the paper specifies (a miswiring census with named defects).

Everything operates on a :class:`~repro.verify.model.StaticNetworkModel`
built purely from the topology description and the backup-route
configuration — no simulator, no event loop.  The model's FIBs are the
fixed point the distributed protocol converges to (the same global-SPF
oracle the ``convergence-agreement`` invariant compares against), so a
statically refuted property is a real deployment defect, and every
witness replays under ``CheckedSimulator`` (:mod:`repro.verify.replay`).
"""

from .checks import Finding, VerifyReport, Witness, run_verification
from .model import StaticNetworkModel, build_verify_topology

__all__ = [
    "Finding",
    "StaticNetworkModel",
    "VerifyReport",
    "Witness",
    "build_verify_topology",
    "run_verification",
]
