"""The campaign runner: fan independent trials out over worker processes.

Every trial is hermetic — it builds its own :class:`~repro.sim.engine.Simulator`
and draws randomness only from its spec's seed — so trials can execute in
any process, in any order, and still produce the results a serial run
would.  The runner adds the robustness a long sweep needs:

* **per-trial timeout** — enforced *inside* the executing process with an
  interval timer, so a wedged trial cannot poison the worker pool;
* **one retry on crash** — a trial that raises is re-run once (crashes of
  the worker process itself are also retried once);
* **partial results** — failed/timed-out trials are recorded in the
  report with their error instead of aborting the campaign.

``workers <= 1`` runs everything in-process through the *same* execution
path, which is what the determinism regression test compares against.
"""

from __future__ import annotations

import contextlib
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from ..obs import Observability
from ..obs.spans import SpanError, build_recovery_spans, counters_from_metrics
from ..sim.randomness import RandomStreams
from .report import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    CampaignReport,
    TrialRecord,
)
from .spec import CampaignError, TrialContext, TrialSpec, resolve_seeds, trial_runner

#: retries granted to a crashed (raising) trial; timeouts never retry.
DEFAULT_RETRIES = 1


class TrialTimeout(Exception):
    """Raised inside a worker when a trial exceeds its wall-clock budget."""


@dataclass
class TrialOutcome:
    """What one execution attempt returns across the process boundary."""

    trial_id: str
    status: str
    payload: Optional[dict] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    metrics: Optional[dict] = None
    #: serialised span tree (telemetry mode; a plain dict so it pickles)
    spans: Optional[dict] = None
    duration_s: float = 0.0


@contextlib.contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`TrialTimeout` if the block runs longer than ``seconds``.

    Uses ``SIGALRM`` + ``setitimer``, which only works in a main thread on
    POSIX; elsewhere the deadline is not enforced (the trial still runs).
    Worker processes execute trials in their main thread, so the pool path
    always enforces.
    """
    if (
        seconds is None
        or seconds <= 0
        or threading.current_thread() is not threading.main_thread()
        or not hasattr(signal, "setitimer")
    ):
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise TrialTimeout(f"trial exceeded its {seconds:g}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _trial_spans(ctx: TrialContext) -> Optional[dict]:
    """Build the trial's span tree from its recorded trace (telemetry
    mode only); ``None`` when the trace is empty or spanless."""
    if not len(ctx.obs.trace):
        return None
    try:
        tree = build_recovery_spans(
            ctx.obs.trace,
            counters=counters_from_metrics(ctx.obs.metrics.snapshot()),
            evicted=ctx.obs.trace.evicted,
        )
    except SpanError:
        return None
    return tree.to_dict()


def execute_trial(
    spec: TrialSpec,
    default_timeout: Optional[float] = None,
    telemetry: bool = False,
) -> TrialOutcome:
    """Run one trial to completion in the current process.

    Never raises: failures and timeouts come back as outcomes, so a bad
    trial cannot take the campaign (or a pooled worker) down with it.
    ``telemetry`` runs the trial with tracing enabled and attaches the
    resulting causal span tree to the outcome (slower; opt-in).
    """
    started = time.monotonic()
    timeout = spec.timeout if spec.timeout is not None else default_timeout
    try:
        runner = trial_runner(spec.kind)
        if spec.seed is None:
            raise CampaignError(
                f"trial {spec.trial_id} has an unresolved seed; "
                "run it through run_campaign (or resolve_seeds) first"
            )
        ctx = TrialContext(
            seed=spec.seed,
            streams=RandomStreams(spec.seed),
            obs=Observability(enabled=telemetry),
        )
        with _deadline(timeout):
            payload = dict(runner(ctx, **spec.param_dict()))
        return TrialOutcome(
            trial_id=spec.trial_id,
            status=STATUS_OK,
            payload=payload,
            metrics=ctx.obs.metrics.snapshot() or None,
            spans=_trial_spans(ctx) if telemetry else None,
            duration_s=time.monotonic() - started,
        )
    except TrialTimeout as exc:
        return TrialOutcome(
            trial_id=spec.trial_id,
            status=STATUS_TIMEOUT,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=time.monotonic() - started,
        )
    except BaseException as exc:  # noqa: BLE001 — the report records it
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return TrialOutcome(
            trial_id=spec.trial_id,
            status=STATUS_FAILED,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            duration_s=time.monotonic() - started,
        )


def execute_trials(
    specs: Sequence[TrialSpec],
    default_timeout: Optional[float] = None,
    telemetry: bool = False,
) -> List[TrialOutcome]:
    """Run a chunk of trials in the current process.

    This is the unit the parallel path ships to a worker: one pickle /
    IPC round trip per *chunk* instead of per trial, which is where
    small grids were losing their parallelism to pool overhead.
    """
    return [
        execute_trial(spec, default_timeout, telemetry) for spec in specs
    ]


def _warm_worker() -> None:
    """Pool initializer: pull in the trial-runner registry (and with it
    the bulk of the package) once per worker at pool start-up, so the
    first chunk a worker receives does not pay the import bill."""
    from . import trials  # noqa: F401 — imported for its registrations


def run_campaign(
    specs: Sequence[TrialSpec],
    name: str = "campaign",
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    campaign_seed: int = 1,
    telemetry: bool = False,
) -> CampaignReport:
    """Execute every spec and aggregate the outcomes into a report.

    ``workers`` > 1 fans trials out over a :class:`ProcessPoolExecutor`;
    ``timeout`` is the default per-trial wall-clock budget in seconds
    (individual specs may override).  Specs with ``seed=None`` get a
    deterministic per-trial seed derived from ``campaign_seed`` before any
    execution, so the results are independent of worker count.
    ``telemetry`` traces every trial and ships its causal span tree back
    with the outcome; the report then carries a merged telemetry section
    (still byte-identical for any worker count).
    """
    resolved = resolve_seeds(specs, campaign_seed)
    seen: Dict[str, TrialSpec] = {}
    for spec in resolved:
        if spec.trial_id in seen:
            raise CampaignError(f"duplicate trial in campaign: {spec.trial_id}")
        seen[spec.trial_id] = spec

    started = time.monotonic()
    if workers <= 1:
        records = _run_serial(resolved, timeout, retries, telemetry)
    else:
        records = _run_parallel(resolved, workers, timeout, retries, telemetry)
    return CampaignReport(
        name=name,
        records=records,
        workers=max(1, workers),
        wall_s=time.monotonic() - started,
    )


def _record(spec: TrialSpec, outcome: TrialOutcome, attempts: int) -> TrialRecord:
    return TrialRecord(
        spec=spec,
        status=outcome.status,
        attempts=attempts,
        payload=outcome.payload,
        error=outcome.error,
        traceback=outcome.traceback,
        metrics=outcome.metrics,
        spans=outcome.spans,
        duration_s=outcome.duration_s,
    )


def _run_serial(
    specs: Sequence[TrialSpec],
    timeout: Optional[float],
    retries: int,
    telemetry: bool = False,
) -> List[TrialRecord]:
    records: List[TrialRecord] = []
    for spec in specs:
        attempts = 0
        while True:
            attempts += 1
            outcome = execute_trial(spec, timeout, telemetry)
            if outcome.status == STATUS_FAILED and attempts <= retries:
                continue
            records.append(_record(spec, outcome, attempts))
            break
    return records


#: strided chunks per worker and round: >1 so one slow chunk cannot idle
#: the rest of the pool, small enough that a little grid still ships a
#: handful of chunks rather than one future per trial
_CHUNKS_PER_WORKER = 2


def _run_parallel(
    specs: Sequence[TrialSpec],
    workers: int,
    timeout: Optional[float],
    retries: int,
    telemetry: bool = False,
) -> List[TrialRecord]:
    records: List[TrialRecord] = []
    attempts: Dict[str, int] = {spec.trial_id: 0 for spec in specs}
    remaining = list(specs)
    # Each round chunks every not-yet-settled trial over warm workers; a
    # fresh pool per round also recovers from a worker process dying
    # hard (BrokenPool marks every in-flight future, and the next round
    # starts clean).  Results are order-independent — the report sorts
    # records by trial_id — so strided chunking changes nothing the
    # determinism tests can observe.
    while remaining:
        chunk_count = min(len(remaining), workers * _CHUNKS_PER_WORKER)
        chunks = [remaining[i::chunk_count] for i in range(chunk_count)]
        remaining = []
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_warm_worker
        ) as pool:
            futures = {
                pool.submit(execute_trials, chunk, timeout, telemetry): chunk
                for chunk in chunks
            }
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    outcomes = future.result()
                except BaseException as exc:  # worker died / result unpicklable
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    outcomes = [
                        TrialOutcome(
                            trial_id=spec.trial_id,
                            status=STATUS_FAILED,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                        for spec in chunk
                    ]
                for spec, outcome in zip(chunk, outcomes):
                    attempts[spec.trial_id] += 1
                    if (
                        outcome.status == STATUS_FAILED
                        and attempts[spec.trial_id] <= retries
                    ):
                        remaining.append(spec)
                    else:
                        records.append(
                            _record(spec, outcome, attempts[spec.trial_id])
                        )
    return records
