"""Campaign results: per-trial records and the aggregate report.

The report has a **deterministic core** — trial identities, parameters,
seeds, statuses and payloads, sorted by trial id — and a separate
**timing section** (wall-clock durations, worker count).  ``to_json()``
emits only the core by default, which is what makes the determinism
guarantee testable: the same campaign run with 1 worker and with N
workers must produce byte-identical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .spec import CampaignError, TrialSpec

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


@dataclass
class TrialRecord:
    """The outcome of one trial (including its failures)."""

    spec: TrialSpec
    status: str
    attempts: int = 1
    payload: Optional[Dict[str, Any]] = None
    #: "ExcType: message" for failed trials
    error: Optional[str] = None
    #: full traceback text (kept out of the deterministic JSON)
    traceback: Optional[str] = None
    #: snapshot of the trial's metrics registry (deterministic)
    metrics: Optional[Dict[str, Any]] = None
    #: serialised causal span tree (telemetry campaigns; deterministic)
    spans: Optional[Dict[str, Any]] = None
    #: wall-clock seconds of the last attempt (nondeterministic)
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        """The deterministic per-trial report entry."""
        out: Dict[str, Any] = {
            "id": self.spec.trial_id,
            "kind": self.spec.kind,
            "params": self.spec.param_dict(),
            "seed": self.spec.seed,
            "status": self.status,
            "attempts": self.attempts,
            "payload": self.payload,
            "error": self.error,
            "metrics": self.metrics,
        }
        if self.spans is not None:
            out["spans"] = self.spans
        return out


@dataclass
class CampaignReport:
    """Aggregate of every trial of one campaign run."""

    name: str
    records: List[TrialRecord] = field(default_factory=list)
    workers: int = 1
    wall_s: float = 0.0

    def __post_init__(self) -> None:
        self.records.sort(key=lambda r: r.spec.trial_id)

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self.records)

    @property
    def succeeded(self) -> List[TrialRecord]:
        return [r for r in self.records if r.status == STATUS_OK]

    @property
    def failed(self) -> List[TrialRecord]:
        return [r for r in self.records if r.status != STATUS_OK]

    def record(self, trial_id: str) -> TrialRecord:
        for r in self.records:
            if r.spec.trial_id == trial_id:
                return r
        raise KeyError(trial_id)

    def payloads(self) -> Dict[str, Dict[str, Any]]:
        """trial id -> payload for every successful trial."""
        return {
            r.spec.trial_id: dict(r.payload or {}) for r in self.succeeded
        }

    def payload_for(self, spec: TrialSpec) -> Dict[str, Any]:
        """The payload of the trial matching ``spec`` (must have succeeded)."""
        record = self.record(spec.trial_id)
        if not record.ok:
            raise CampaignError(
                f"trial {spec.trial_id} {record.status}: {record.error}"
            )
        assert record.payload is not None
        return record.payload

    def require_success(self) -> "CampaignReport":
        """Raise (listing every failure) unless all trials succeeded."""
        if self.failed:
            lines = [
                f"  {r.spec.trial_id}: [{r.status}] {r.error}" for r in self.failed
            ]
            raise CampaignError(
                f"campaign {self.name!r}: {len(self.failed)} of "
                f"{len(self.records)} trials failed:\n" + "\n".join(lines)
            )
        return self

    def telemetry(self) -> Optional[Dict[str, Any]]:
        """The merged campaign-wide telemetry (phase percentiles per grid
        cell + cache hit rates); ``None`` unless the campaign ran in
        telemetry mode.  Deterministic for any worker count."""
        from .telemetry import merge_telemetry

        return merge_telemetry(self.records)

    # ------------------------------------------------------- serialization

    def to_dict(self, include_timing: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "campaign": self.name,
            "summary": {
                "total": len(self.records),
                "ok": len(self.succeeded),
                "failed": sum(
                    1 for r in self.records if r.status == STATUS_FAILED
                ),
                "timeout": sum(
                    1 for r in self.records if r.status == STATUS_TIMEOUT
                ),
            },
            "trials": [r.to_dict() for r in self.records],
        }
        merged = self.telemetry()
        if merged is not None:
            out["telemetry"] = merged
        if include_timing:
            out["execution"] = {
                "workers": self.workers,
                "wall_s": round(self.wall_s, 3),
                "trial_s": {
                    r.spec.trial_id: round(r.duration_s, 3)
                    for r in self.records
                },
            }
        return out

    def to_json(self, include_timing: bool = False, indent: int = 2) -> str:
        """Canonical JSON: sorted keys, stable float formatting.

        With ``include_timing=False`` (the default) the output is a pure
        function of the specs and their seeds — byte-identical no matter
        how many workers executed the campaign.
        """
        return json.dumps(
            self.to_dict(include_timing=include_timing),
            indent=indent,
            sort_keys=True,
        )

    def render(self) -> str:
        """ASCII summary table (one row per trial)."""
        lines = [
            f"campaign {self.name}: {len(self.succeeded)}/{len(self.records)} "
            f"trials ok, {self.workers} worker(s), {self.wall_s:.1f}s wall",
            f"{'trial':<58} {'status':<8} {'att':>3} {'secs':>7}  result",
        ]
        for r in self.records:
            if r.ok:
                detail = ", ".join(
                    f"{k}={_compact(v)}" for k, v in sorted((r.payload or {}).items())
                )
            else:
                detail = r.error or ""
            lines.append(
                f"{r.spec.trial_id:<58} {r.status:<8} {r.attempts:>3} "
                f"{r.duration_s:>7.2f}  {detail}"
            )
        merged = self.telemetry()
        if merged is not None:
            from .telemetry import render_telemetry

            lines.append("")
            lines.append(render_telemetry(merged))
        return "\n".join(lines)


def _compact(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
