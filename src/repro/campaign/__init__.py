"""Parallel experiment campaigns with deterministic sharding.

The sweep subsystem the ROADMAP's "as fast as the hardware allows" goal
needs: declare a grid of independent trials (:mod:`repro.campaign.spec`),
fan them out over worker processes with per-trial timeouts, crash retry
and partial-results aggregation (:mod:`repro.campaign.runner`), and get
one deterministic report back (:mod:`repro.campaign.report`) — identical
bytes whether the campaign ran on 1 worker or 16.

Quick use::

    from repro.campaign import TrialSpec, run_campaign

    specs = [
        TrialSpec.make("recovery", topology=t, scenario="C1", seed=s)
        for t in ("fat-tree", "f2tree") for s in (1, 2, 3)
    ]
    report = run_campaign(specs, name="c1-sweep", workers=4, timeout=120)
    print(report.render())
    open("report.json", "w").write(report.to_json())

or from the command line: ``python -m repro sweep spf-timer --workers 4``.
"""

from __future__ import annotations

from .report import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    CampaignReport,
    TrialRecord,
)
from .runner import (
    DEFAULT_RETRIES,
    TrialOutcome,
    TrialTimeout,
    execute_trial,
    run_campaign,
)
from .spec import (
    CampaignError,
    TrialContext,
    TrialSpec,
    grid,
    register_trial,
    registered_kinds,
    resolve_seeds,
    trial_runner,
)
from .sweeps import (
    SWEEPS,
    SweepDef,
    congestion_specs,
    detection_delay_specs,
    effective_workers,
    figure_four_specs,
    spf_timer_specs,
)

__all__ = [
    "CampaignError",
    "CampaignReport",
    "DEFAULT_RETRIES",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SWEEPS",
    "SweepDef",
    "TrialContext",
    "TrialOutcome",
    "TrialRecord",
    "TrialSpec",
    "TrialTimeout",
    "congestion_specs",
    "detection_delay_specs",
    "effective_workers",
    "execute_trial",
    "figure_four_specs",
    "grid",
    "register_trial",
    "registered_kinds",
    "resolve_seeds",
    "run_campaign",
    "spf_timer_specs",
    "trial_runner",
]
