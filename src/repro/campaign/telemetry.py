"""Campaign-level telemetry: merge per-trial span trees deterministically.

Workers ship each trial's span tree (already a JSON-safe dict) and its
metrics snapshot back over the existing result channel; this module
folds them into a campaign-wide report:

* **per grid cell** (the trial id minus its seed suffix — every seed
  repetition of one parameter combination lands in the same cell):
  p50/p95/p99 of each recovery phase's duration, plus mechanism counts;
* **cache hit-rate table**: logical SPF-cache and FIB match-chain
  counters summed per cell and overall.

Determinism is the whole point: the merge folds records in sorted
trial-id order, uses nearest-rank percentiles over integer-nanosecond
durations, and rounds hit rates to fixed precision — so ``--workers 1``
and ``--workers 8`` produce byte-identical telemetry sections (the
per-trial inputs are themselves deterministic; see
:class:`repro.routing.spf_cache.SpfCacheStats` for why the cache
counters are logical rather than physical).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.spans import SpanTree
from .report import TrialRecord
from .spec import TrialSpec

#: percentiles reported per phase per cell
QUANTILES: Tuple[int, ...] = (50, 95, 99)

#: metric names folded into the cache hit-rate table, keyed by row name
CACHE_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("spf_cache", "spf.cache.hits", "spf.cache.misses"),
    ("fib_chain", "fib.chain.hits", "fib.chain.misses"),
)


def cell_key(spec: TrialSpec) -> str:
    """The grid cell a trial belongs to: its identity minus the seed."""
    params = ",".join(f"{k}={v}" for k, v in spec.params)
    return f"{spec.kind}[{params}]"


def percentile(sorted_values: Sequence[int], q: int) -> int:
    """Nearest-rank percentile of an ascending sequence (exact, no
    interpolation — keeps the merge integer-only and bit-stable)."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0 < q <= 100:
        raise ValueError(f"q must be in (0, 100], got {q}")
    rank = -(-q * len(sorted_values) // 100)  # ceil without floats
    return sorted_values[rank - 1]


def _hit_rate(hits: int, misses: int) -> Dict[str, Any]:
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / total, 4) if total else 0.0,
    }


def merge_telemetry(
    records: Iterable[TrialRecord],
) -> Optional[Dict[str, Any]]:
    """Fold per-trial span trees + metric snapshots into one report.

    Returns ``None`` when no record carries a span tree (the campaign was
    not run in telemetry mode); otherwise a JSON-safe dict, a pure
    function of the records and therefore byte-identical for any worker
    count.
    """
    ordered = sorted(records, key=lambda r: r.spec.trial_id)
    any_spans = False

    phases: Dict[str, Dict[str, List[int]]] = {}
    mechanisms: Dict[str, Dict[str, int]] = {}
    trials_per_cell: Dict[str, int] = {}
    cache_totals: Dict[str, List[int]] = {
        name: [0, 0] for name, _h, _m in CACHE_METRICS
    }
    cache_per_cell: Dict[str, Dict[str, List[int]]] = {}

    for record in ordered:
        cell = cell_key(record.spec)
        if record.metrics:
            per_cell = cache_per_cell.setdefault(
                cell, {name: [0, 0] for name, _h, _m in CACHE_METRICS}
            )
            for name, hits_metric, misses_metric in CACHE_METRICS:
                hits = int(record.metrics.get(hits_metric, 0) or 0)
                misses = int(record.metrics.get(misses_metric, 0) or 0)
                per_cell[name][0] += hits
                per_cell[name][1] += misses
                cache_totals[name][0] += hits
                cache_totals[name][1] += misses
        if record.spans is None:
            continue
        any_spans = True
        tree = SpanTree.from_dict(record.spans)
        trials_per_cell[cell] = trials_per_cell.get(cell, 0) + 1
        mechanism = str(tree.root.attrs.get("mechanism", "unknown"))
        cell_mechanisms = mechanisms.setdefault(cell, {})
        cell_mechanisms[mechanism] = cell_mechanisms.get(mechanism, 0) + 1
        cell_phases = phases.setdefault(cell, {})
        for name, duration in tree.phase_durations().items():
            cell_phases.setdefault(name, []).append(duration)

    if not any_spans:
        return None

    cells: Dict[str, Any] = {}
    for cell in sorted(trials_per_cell):
        phase_summary: Dict[str, Any] = {}
        for name in sorted(phases.get(cell, {})):
            durations = sorted(phases[cell][name])
            phase_summary[name] = {
                "n": len(durations),
                **{
                    f"p{q}_ns": percentile(durations, q) for q in QUANTILES
                },
            }
        entry: Dict[str, Any] = {
            "trials": trials_per_cell[cell],
            "mechanisms": dict(sorted(mechanisms.get(cell, {}).items())),
            "phases": phase_summary,
        }
        cell_caches = cache_per_cell.get(cell)
        if cell_caches is not None:
            entry["caches"] = {
                name: _hit_rate(*cell_caches[name])
                for name, _h, _m in CACHE_METRICS
            }
        cells[cell] = entry

    return {
        "cells": cells,
        "caches": {
            name: _hit_rate(*cache_totals[name])
            for name, _h, _m in CACHE_METRICS
        },
    }


def render_telemetry(telemetry: Dict[str, Any]) -> str:
    """ASCII tables: per-cell phase percentiles + cache hit rates."""
    lines: List[str] = ["telemetry (per-phase percentiles, ms):"]
    header = (
        f"  {'cell / phase':<46} {'n':>4} "
        + " ".join(f"{'p' + str(q):>9}" for q in QUANTILES)
    )
    lines.append(header)
    for cell, entry in telemetry.get("cells", {}).items():
        mech = ", ".join(
            f"{name} x{count}"
            for name, count in entry.get("mechanisms", {}).items()
        )
        lines.append(f"  {cell}  ({entry['trials']} trial(s); {mech})")
        for phase, stats in entry.get("phases", {}).items():
            row = " ".join(
                f"{stats[f'p{q}_ns'] / 1e6:>9.3f}" for q in QUANTILES
            )
            lines.append(f"    {phase:<44} {stats['n']:>4} {row}")
    caches = telemetry.get("caches", {})
    if caches:
        lines.append("  cache hit rates:")
        for name, stats in caches.items():
            total = stats["hits"] + stats["misses"]
            lines.append(
                f"    {name:<12} {stats['hit_rate']:>8.1%} "
                f"({stats['hits']:,} of {total:,})"
            )
    return "\n".join(lines)
