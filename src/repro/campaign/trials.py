"""Built-in trial kinds: the paper's experiments as campaign trials.

Each kind wraps one existing ``run_*`` entry point with a declarative,
JSON-safe parameterization.  Network-parameter overrides travel as
``net_<field>`` spec parameters (the flattened fields of
:class:`~repro.dataplane.params.NetworkParams`), so a spec fully pins the
trial and the report echoes the exact configuration that produced each
number.

Kinds
-----
``recovery``
    One single-flow recovery run (:func:`repro.experiments.recovery.run_recovery`)
    on a named topology, optionally under a Table IV scenario label.
``condition``
    One Fig 4 cell — a UDP and a TCP run of a Table IV condition on one
    topology (:func:`repro.experiments.conditions.run_condition`).
``congestion``
    One load level of the backup-path congestion probe
    (:func:`repro.experiments.congestion.run_reroute_congestion`).
``flow-fig6``
    One Fig 6 cell on the fluid backend
    (:func:`repro.experiments.partition_aggregate.run_flow_partition_aggregate`):
    partition-aggregate requests as reliable fluid flows under random
    failures, reporting the deadline-miss ratio and the FCT
    p50/p95/p99 tail (the :data:`repro.campaign.telemetry.QUANTILES`
    convention).
``check``
    One fuzzed invariant-check trial (:mod:`repro.check`): the trial's
    seed fully determines the generated configuration, so a campaign of
    ``check`` trials is a reproducible fuzzing run.
``verify``
    One static verification of a built topology (:mod:`repro.verify`):
    no simulation — the payload is the verdict plus per-check finding
    and state counts, so a grid of topologies can be proven in parallel.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Optional, TYPE_CHECKING, Tuple

from ..dataplane.params import NetworkParams
from ..sim.units import microseconds, to_milliseconds
from .spec import CampaignError, TrialContext, register_trial

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.graph import Topology

#: spec-parameter prefix for flattened NetworkParams overrides
NET_PREFIX = "net_"

_NET_FIELDS = frozenset(asdict(NetworkParams()))


def network_params_to_spec(params: Optional[NetworkParams]) -> Dict[str, Any]:
    """Flatten a NetworkParams into ``net_*`` spec parameters."""
    if params is None:
        return {}
    return {f"{NET_PREFIX}{k}": v for k, v in asdict(params).items()}


def split_network_params(
    params: Dict[str, Any],
) -> Tuple[Optional[NetworkParams], Dict[str, Any]]:
    """Split ``net_*`` overrides out of a spec's parameter dict.

    Returns ``(NetworkParams or None, remaining params)``; unknown
    ``net_*`` field names raise so typos fail loudly instead of silently
    running with paper defaults.
    """
    overrides: Dict[str, Any] = {}
    rest: Dict[str, Any] = {}
    for key, value in params.items():
        if key.startswith(NET_PREFIX):
            name = key[len(NET_PREFIX):]
            if name not in _NET_FIELDS:
                raise CampaignError(f"unknown NetworkParams field {name!r}")
            overrides[name] = value
        else:
            rest[key] = value
    network = NetworkParams().with_overrides(**overrides) if overrides else None
    return network, rest


def _build_topology(topology: str, ports: int, across_ports: int) -> "Topology":
    from ..core.f2tree import f2tree
    from ..topology.fattree import fat_tree
    from ..topology.leafspine import leaf_spine
    from ..topology.vl2 import vl2

    if topology == "fat-tree":
        return fat_tree(ports)
    if topology == "f2tree":
        return f2tree(ports, across_ports=across_ports)
    if topology == "leaf-spine":
        return leaf_spine(ports, max(2, ports // 2))
    if topology == "vl2":
        return vl2(ports, ports)
    raise CampaignError(f"unknown topology {topology!r}")


@register_trial("recovery")
def run_recovery_trial(
    ctx: TrialContext,
    topology: str = "f2tree",
    ports: int = 8,
    transport: str = "udp",
    scenario: Optional[str] = None,
    routing: str = "linkstate",
    across_ports: int = 2,
    **params: Any,
) -> Dict[str, Any]:
    """One single-flow recovery run; the campaign's workhorse kind."""
    from ..experiments.recovery import run_recovery

    network_params, rest = split_network_params(params)
    if rest:
        raise CampaignError(f"unknown recovery trial parameters: {sorted(rest)}")
    result = run_recovery(
        _build_topology(topology, ports, across_ports),
        transport,
        scenario_label=scenario,
        params=network_params,
        seed=ctx.seed,
        routing=routing,
        obs=ctx.obs,
    )
    payload: Dict[str, Any] = {
        "topology": result.topology,
        "transport": transport,
        "packets_lost": result.packets_lost,
    }
    if result.connectivity_loss is not None:
        payload["connectivity_loss_ms"] = to_milliseconds(result.connectivity_loss)
    if result.collapse_duration is not None:
        payload["collapse_ms"] = to_milliseconds(result.collapse_duration)
    return payload


@register_trial("condition")
def run_condition_trial(
    ctx: TrialContext,
    label: str = "C1",
    topology: str = "f2tree",
    ports: int = 8,
    across_ports: int = 2,
    **params: Any,
) -> Dict[str, Any]:
    """One Fig 4 cell: UDP loss + packet count and TCP collapse for one
    (condition, topology) pair."""
    from ..experiments.conditions import run_condition

    network_params, rest = split_network_params(params)
    if rest:
        raise CampaignError(f"unknown condition trial parameters: {sorted(rest)}")
    udp = run_condition(
        topology, label, "udp", ports, across_ports=across_ports,
        params=network_params, seed=ctx.seed, obs=ctx.obs,
    )
    tcp = run_condition(
        topology, label, "tcp", ports, across_ports=across_ports,
        params=network_params, seed=ctx.seed, obs=ctx.obs,
    )
    if udp.result.connectivity_loss is None:
        raise CampaignError(
            f"condition {label}/{topology}: UDP run has no loss metric"
        )
    if tcp.result.collapse_duration is None:
        raise CampaignError(
            f"condition {label}/{topology}: TCP run has no collapse metric"
        )
    return {
        "label": label,
        "kind": topology,
        "connectivity_loss_ms": to_milliseconds(udp.result.connectivity_loss),
        "packets_lost": udp.result.packets_lost,
        "collapse_ms": to_milliseconds(tcp.result.collapse_duration),
        "fast_rerouted": udp.fast_rerouted,
    }


@register_trial("congestion")
def run_congestion_trial(
    ctx: TrialContext,
    hot_flows: int = 2,
    ports: int = 8,
    per_flow_interval_us: float = 50.0,
    **params: Any,
) -> Dict[str, Any]:
    """One load level of the backup-path congestion probe."""
    from ..experiments.congestion import run_reroute_congestion

    network_params, rest = split_network_params(params)
    if rest:
        raise CampaignError(f"unknown congestion trial parameters: {sorted(rest)}")
    result = run_reroute_congestion(
        hot_flows,
        per_flow_interval=microseconds(per_flow_interval_us),
        ports=ports,
        seed=ctx.seed,
        params=network_params,
        obs=ctx.obs,
    )
    return {
        "n_hot_flows": result.n_hot_flows,
        "offered_mbps_per_flow": result.offered_mbps_per_flow,
        "reroute_delivery_ratio": result.reroute_delivery_ratio,
        "post_convergence_delivery_ratio": result.post_convergence_delivery_ratio,
        "across_utilization": result.across_utilization,
        "across_queue_drops": result.across_queue_drops,
        "saturated": result.saturated,
    }


@register_trial("flow-fig6")
def run_flow_fig6_trial(
    ctx: TrialContext,
    topology: str = "f2tree",
    ports: int = 8,
    concurrent_failures: int = 1,
    duration_s: float = 10.0,
    n_requests: int = 40,
    n_background_flows: int = 20,
    **params: Any,
) -> Dict[str, Any]:
    """One Fig 6 cell on the fluid backend: deadline-miss ratio plus the
    completion-time tail at the telemetry quantiles (p50/p95/p99)."""
    from ..experiments.partition_aggregate import (
        PartitionAggregateConfig,
        run_flow_partition_aggregate,
    )
    from ..sim.units import seconds
    from .telemetry import QUANTILES

    network_params, rest = split_network_params(params)
    if rest:
        raise CampaignError(f"unknown flow-fig6 trial parameters: {sorted(rest)}")
    config = PartitionAggregateConfig(
        duration=seconds(duration_s),
        n_requests=n_requests,
        n_background_flows=n_background_flows,
        concurrent_failures=concurrent_failures,
        ports=ports,
        seed=ctx.seed,
    )
    result = run_flow_partition_aggregate(topology, config, network_params)
    payload: Dict[str, Any] = {
        "kind": result.kind,
        "requests": result.stats.total,
        "completed": sum(
            1 for r in result.stats.records if r.completed_at is not None
        ),
        "deadline_miss_ratio": result.deadline_miss_ratio,
        "n_failures": result.n_failures,
        "average_concurrency": result.average_concurrency,
        "background_completed": result.background_completed,
        "background_total": result.background_total,
    }
    for q in QUANTILES:
        payload[f"fct_p{q}_ms"] = to_milliseconds(result.stats.percentile(q))
    return payload


@register_trial("check")
def run_check_trial(
    ctx: TrialContext,
    index: int = 0,
    backend: str = "packet",
    **params: Any,
) -> Dict[str, Any]:
    """One fuzzed invariant-check trial.

    ``index`` only differentiates trial ids inside a campaign; the
    drawn configuration is a pure function of the trial seed.
    ``backend`` pins the simulation backend onto the drawn config (the
    same seed fuzzes either data plane).  The payload embeds the full
    config so a violating trial can be shrunk and bundled without
    re-deriving anything.
    """
    from ..check.config import generate_config
    from ..check.execute import execute_check

    if params:
        raise CampaignError(f"unknown check trial parameters: {sorted(params)}")
    config = generate_config(ctx.seed)
    if backend != "packet":
        config = config.with_backend(backend)
    outcome = execute_check(config)
    # the check runs in its own simulator (its own obs facade); copy the
    # deterministic cache counters over so campaign cache hit-rate tables
    # cover check trials too
    caches = outcome.stats.get("caches", {})
    for table, metric in (("spf_cache", "spf.cache"), ("fib_chain", "fib.chain")):
        counts = caches.get(table, {})
        for side in ("hits", "misses"):
            value = int(counts.get(side, 0))
            if value:
                ctx.obs.metrics.counter(f"{metric}.{side}").inc(value)
    return {
        "index": index,
        "topology": config.topology,
        "ports": config.ports,
        "profile": config.profile,
        "scenario": config.scenario,
        "n_events": len(outcome.events),
        "probes_sent": outcome.stats["probes_sent"],
        "probes_received": outcome.stats["probes_received"],
        "checks": outcome.stats["checks"],
        "n_violations": len(outcome.violations),
        "invariants": outcome.invariants_violated,
        "violations": [v.to_dict() for v in outcome.violations],
        "config": config.to_dict(),
    }


@register_trial("diff")
def run_diff_trial(
    ctx: TrialContext,
    index: int = 0,
    tolerance: int = 10,
    **params: Any,
) -> Dict[str, Any]:
    """One cross-backend differential trial: the seed's fuzzed config is
    executed on the packet *and* flow backends and compared
    (:func:`repro.check.differential.run_differential`); a campaign of
    ``diff`` trials is a reproducible backend-agreement fuzzing run."""
    from ..check.config import generate_config
    from ..check.differential import run_differential

    if params:
        raise CampaignError(f"unknown diff trial parameters: {sorted(params)}")
    config = generate_config(ctx.seed)
    result = run_differential(config, tolerance=tolerance)
    return {
        "index": index,
        "topology": config.topology,
        "ports": config.ports,
        "profile": config.profile,
        "scenario": config.scenario,
        "agree": result.ok,
        "disagreement_kinds": list(result.kinds),
        "disagreements": result.disagreements,
        "probes_packet": result.packet.stats["probes_received"],
        "probes_flow": result.flow.stats["probes_received"],
        "invariants": result.packet.invariants_violated,
        "config": config.to_dict(),
    }


@register_trial("verify")
def run_verify_trial(
    ctx: TrialContext,
    topology: str = "fattree",
    ports: int = 8,
    across_ports: int = 2,
    max_failures: int = 2,
    samples: int = 50,
    tie_break: str = "prefix-length",
    **params: Any,
) -> Dict[str, Any]:
    """One static verification: prove/refute the backup properties of a
    built topology, no simulator.  The payload is deterministic — same
    spec, same verdict, same counts — so verification grids shard
    cleanly across workers."""
    from ..topology.graph import TopologyError
    from ..verify import build_verify_topology, run_verification

    if params:
        raise CampaignError(f"unknown verify trial parameters: {sorted(params)}")
    try:
        topo = build_verify_topology(topology, ports, across_ports=across_ports)
    except TopologyError as exc:
        raise CampaignError(str(exc)) from exc
    report = run_verification(
        topo,
        max_failures=max_failures,
        samples=samples,
        seed=ctx.seed,
        tie_break=tie_break,
    )
    return {
        "topology": report.topology,
        "family": report.family,
        "ports": ports,
        "max_failures": report.max_failures,
        "verdict": report.verdict,
        "certified": report.certified,
        "refuted_checks": report.refuted_checks(),
        "n_errors": report.severity_total("error"),
        "n_caveats": report.severity_total("caveat"),
        "totals": dict(sorted(report.totals.items())),
        "stats": report.stats,
    }
