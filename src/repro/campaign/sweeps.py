"""Named sweeps: spec builders for the paper's experiment campaigns.

One builder per sweep turns the experiment's arguments into the flat
:class:`~repro.campaign.spec.TrialSpec` list the runner fans out.  The
``repro sweep`` CLI and the ported ``run_*`` experiment entry points both
go through these builders, so the serial legacy API and the parallel CLI
are guaranteed to run the *same* trials.

Paper mapping (see EXPERIMENTS.md):

=============  ===========================================================
sweep          reproduces
=============  ===========================================================
spf-timer      §III ablation — fat-tree outage tracks the SPF timer,
               F²Tree's stays pinned at the detection delay
detection      §III ablation — F²Tree recovery == BFD detection delay
fig4           Fig 4 / Table IV — conditions C1–C7 on both topologies
congestion     backup-path congestion probe (critical evaluation)
verify         §II-C/§III structural claims, proven statically over a
               grid of builders (no simulation; see DESIGN.md §8)
=============  ===========================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dataplane.params import NetworkParams
from ..sim.units import Time, milliseconds
from .spec import TrialSpec
from .trials import network_params_to_spec

#: environment knob: default worker count for ported experiment sweeps
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

DEFAULT_SPF_DELAYS: Tuple[Time, ...] = (
    milliseconds(10), milliseconds(50), milliseconds(200), milliseconds(1000),
)
DEFAULT_DETECTION_DELAYS: Tuple[Time, ...] = (
    milliseconds(1), milliseconds(10), milliseconds(30),
    milliseconds(60), milliseconds(120),
)


def effective_workers(workers: Optional[int]) -> int:
    """Resolve a worker count: explicit argument, else env, else serial."""
    if workers is not None:
        return max(1, workers)
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw.isdigit() and int(raw) > 0:
        return int(raw)
    return 1


def spf_timer_specs(
    delays: Sequence[Time] = DEFAULT_SPF_DELAYS,
    ports: int = 8,
    seed: int = 1,
    timeout: Optional[float] = None,
) -> List[TrialSpec]:
    """Fat tree vs F²Tree under varying SPF initial delays (C1 failure)."""
    return [
        TrialSpec.make(
            "recovery", seed=seed, timeout=timeout,
            topology=topology, ports=ports, transport="udp",
            net_spf_initial_delay=int(delay),
        )
        for delay in delays
        for topology in ("fat-tree", "f2tree")
    ]


def detection_delay_specs(
    delays: Sequence[Time] = DEFAULT_DETECTION_DELAYS,
    ports: int = 8,
    seed: int = 1,
    timeout: Optional[float] = None,
) -> List[TrialSpec]:
    """F²Tree recovery as a function of the BFD-style detection delay."""
    return [
        TrialSpec.make(
            "recovery", seed=seed, timeout=timeout,
            topology="f2tree", ports=ports, transport="udp",
            net_detection_delay=int(delay), net_up_detection_delay=int(delay),
        )
        for delay in delays
    ]


def figure_four_specs(
    labels: Optional[Sequence[str]] = None,
    ports: int = 8,
    params: Optional[NetworkParams] = None,
    seed: int = 1,
    timeout: Optional[float] = None,
) -> List[TrialSpec]:
    """Every Fig 4 bar group: C1–C5 on both topologies, C6–C7 F²Tree-only."""
    from ..failures.scenarios import ALL_LABELS, FAT_TREE_LABELS

    overrides = network_params_to_spec(params)
    specs: List[TrialSpec] = []
    for label in (ALL_LABELS if labels is None else labels):
        kinds = ("fat-tree", "f2tree") if label in FAT_TREE_LABELS else ("f2tree",)
        for kind in kinds:
            specs.append(
                TrialSpec.make(
                    "condition", seed=seed, timeout=timeout,
                    label=label, topology=kind, ports=ports, **overrides,
                )
            )
    return specs


def congestion_specs(
    flow_counts: Sequence[int] = (2, 4, 6),
    ports: int = 8,
    seed: int = 1,
    timeout: Optional[float] = None,
) -> List[TrialSpec]:
    """Offered load swept across the across-link capacity boundary."""
    return [
        TrialSpec.make(
            "congestion", seed=seed, timeout=timeout,
            hot_flows=n, ports=ports,
        )
        for n in flow_counts
    ]


def verify_specs(
    ports: int = 8,
    seed: int = 1,
    timeout: Optional[float] = None,
) -> List[TrialSpec]:
    """Static verification grid: the rewired builds the paper claims
    protection for, plus the plain baselines that must stay clean."""
    families: Tuple[Tuple[str, int], ...] = (
        ("fattree", ports),
        ("fattree", 6),
        ("fat-tree", ports),
        ("leaf-spine", ports),
        ("leaf-spine-plain", ports),
        ("vl2-plain", 4),
        ("aspen", 4),
    )
    return [
        TrialSpec.make(
            "verify", seed=seed, timeout=timeout,
            topology=family, ports=n, max_failures=2,
        )
        for family, n in families
    ]


@dataclass(frozen=True)
class SweepDef:
    """A named sweep the CLI can launch."""

    name: str
    description: str
    #: (ports, seed, timeout) -> specs
    build: Callable[[int, int, Optional[float]], List[TrialSpec]]
    default_ports: int = 8


SWEEPS: Dict[str, SweepDef] = {
    sweep.name: sweep
    for sweep in (
        SweepDef(
            "spf-timer",
            "SPF-timer sensitivity: fat tree vs F2Tree (ablation)",
            lambda ports, seed, timeout: spf_timer_specs(
                ports=ports, seed=seed, timeout=timeout
            ),
        ),
        SweepDef(
            "detection",
            "detection-delay sensitivity of F2Tree recovery (ablation)",
            lambda ports, seed, timeout: detection_delay_specs(
                ports=ports, seed=seed, timeout=timeout
            ),
        ),
        SweepDef(
            "fig4",
            "Fig 4 / Table IV condition matrix C1-C7",
            lambda ports, seed, timeout: figure_four_specs(
                ports=ports, seed=seed, timeout=timeout
            ),
        ),
        SweepDef(
            "congestion",
            "backup-path congestion probe across the capacity boundary",
            lambda ports, seed, timeout: congestion_specs(
                ports=ports, seed=seed, timeout=timeout
            ),
        ),
        SweepDef(
            "verify",
            "static verification grid over rewired builds and baselines",
            lambda ports, seed, timeout: verify_specs(
                ports=ports, seed=seed, timeout=timeout
            ),
        ),
    )
}
