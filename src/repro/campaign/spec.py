"""Declarative trial specifications and the trial-kind registry.

A campaign is a list of :class:`TrialSpec` values — plain, hashable,
JSON-safe descriptions of one independent simulation trial (topology ×
routing mode × failure scenario × seed × parameter overrides).  Keeping
the spec declarative is what makes the campaign runner work: specs pickle
cheaply across a :class:`~concurrent.futures.ProcessPoolExecutor`, sort
deterministically into a stable report, and re-run bit-identically in any
process because every source of randomness is pinned by the spec's seed
(via :mod:`repro.sim.randomness`).

Trial *kinds* are registered callables.  A runner receives a
:class:`TrialContext` (seed, named random streams, observability facade)
plus the spec's parameters, and returns a JSON-safe payload dict.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..obs import Observability
from ..sim.randomness import RandomStreams, derive_seed

#: Spec parameter values must be JSON/pickle-safe scalars.
ParamValue = Any  # str | int | float | bool | None (validated at build time)

_SCALAR_TYPES = (str, int, float, bool, type(None))


class CampaignError(Exception):
    """Raised for invalid campaign configurations or failed campaigns."""


@dataclass(frozen=True)
class TrialSpec:
    """One independent trial of a campaign.

    ``params`` is a tuple of sorted ``(name, value)`` pairs so specs are
    hashable and their ``trial_id`` is stable regardless of construction
    order.  ``seed`` of ``None`` means "derive deterministically from the
    campaign seed and the trial id" (see :func:`resolve_seeds`).
    """

    kind: str
    params: Tuple[Tuple[str, ParamValue], ...] = ()
    seed: Optional[int] = 1
    #: per-trial wall-clock timeout in seconds (None: campaign default)
    timeout: Optional[float] = None

    @staticmethod
    def make(
        kind: str,
        seed: Optional[int] = 1,
        timeout: Optional[float] = None,
        **params: ParamValue,
    ) -> "TrialSpec":
        """Build a spec, validating that every parameter is a scalar."""
        for name, value in params.items():
            if not isinstance(value, _SCALAR_TYPES):
                raise CampaignError(
                    f"trial parameter {name!r} must be a JSON-safe scalar, "
                    f"got {type(value).__name__}"
                )
        return TrialSpec(
            kind=kind,
            params=tuple(sorted(params.items())),
            seed=seed,
            timeout=timeout,
        )

    @property
    def trial_id(self) -> str:
        """Stable, human-readable identity: kind, params, seed."""
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        seed = "auto" if self.seed is None else str(self.seed)
        return f"{self.kind}[{inner}]#{seed}"

    def param_dict(self) -> Dict[str, ParamValue]:
        return dict(self.params)


def grid(
    kind: str,
    seeds: Iterable[Optional[int]] = (1,),
    timeout: Optional[float] = None,
    **axes: Any,
) -> List[TrialSpec]:
    """Expand a parameter grid into specs (cartesian product of axes).

    Each keyword is one axis; a list/tuple value enumerates points, any
    scalar is a fixed single-point axis.  Axes expand in sorted-name order
    and seeds vary slowest, so the resulting spec list is deterministic::

        grid("recovery", seeds=(1, 2), topology=("fat-tree", "f2tree"),
             ports=8, scenario=("C1", "C4"))
        # -> 2 seeds x 2 topologies x 2 scenarios = 8 specs
    """
    names = sorted(axes)
    values: List[Tuple[ParamValue, ...]] = []
    for name in names:
        axis = axes[name]
        if isinstance(axis, (list, tuple)):
            values.append(tuple(axis))
        else:
            values.append((axis,))
    specs: List[TrialSpec] = []
    for seed in seeds:
        for combo in itertools.product(*values):
            specs.append(
                TrialSpec.make(kind, seed=seed, timeout=timeout,
                               **dict(zip(names, combo)))
            )
    return specs


def resolve_seeds(specs: Iterable[TrialSpec], campaign_seed: int) -> List[TrialSpec]:
    """Pin every ``seed=None`` spec to a deterministic derived seed.

    Derivation hashes ``(campaign_seed, trial_id)`` through the same
    SHA-256 scheme :class:`~repro.sim.randomness.RandomStreams` uses for
    its named streams, so the mapping is stable across processes,
    platforms and Python versions — the precondition for serial and
    parallel campaign runs producing byte-identical reports.
    """
    resolved: List[TrialSpec] = []
    for spec in specs:
        if spec.seed is None:
            spec = replace(spec, seed=derive_seed(campaign_seed, spec.trial_id))
        resolved.append(spec)
    return resolved


@dataclass
class TrialContext:
    """What a trial runner gets besides its declarative parameters."""

    seed: int
    #: named random streams derived from the trial seed
    streams: RandomStreams
    #: per-trial observability facade; its metrics registry is snapshotted
    #: into the campaign report after the trial returns
    obs: Observability


TrialRunner = Callable[..., Mapping[str, Any]]

_REGISTRY: Dict[str, TrialRunner] = {}


def register_trial(kind: str) -> Callable[[TrialRunner], TrialRunner]:
    """Decorator registering a trial runner under ``kind``.

    The runner is called as ``runner(ctx, **spec_params)`` and must return
    a JSON-safe mapping (the trial's payload in the campaign report).
    """

    def decorate(fn: TrialRunner) -> TrialRunner:
        existing = _REGISTRY.get(kind)
        if existing is not None and existing is not fn:
            raise CampaignError(f"trial kind {kind!r} already registered")
        _REGISTRY[kind] = fn
        return fn

    return decorate


def trial_runner(kind: str) -> TrialRunner:
    """Look up a registered runner (with a helpful error on typos)."""
    # built-in kinds register on import; make sure they exist before lookup
    from . import trials  # noqa: F401  (import for registration side effect)

    fn = _REGISTRY.get(kind)
    if fn is None:
        raise CampaignError(
            f"unknown trial kind {kind!r}; registered: {', '.join(sorted(_REGISTRY))}"
        )
    return fn


def registered_kinds() -> List[str]:
    from . import trials  # noqa: F401

    return sorted(_REGISTRY)
