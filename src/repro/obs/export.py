"""Span-tree exporters: JSONL and Chrome trace-event JSON.

Two offline formats for the trees built by :mod:`repro.obs.spans`:

* **JSONL** — one span dict per line, append-friendly and greppable;
  round-trips through :func:`write_spans_jsonl` / :func:`read_spans_jsonl`.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` object
  format understood by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.  Each span becomes a complete event (``"ph":
  "X"``) with microsecond ``ts``/``dur``; zero-duration spans (per-node
  SPF runs, per-prefix FIB deltas) become instant events (``"ph": "i"``)
  so they stay visible at any zoom.  Thread lanes are assigned
  deterministically: lane 0 holds the recovery critical path (root +
  phases), and each emitting node gets its own lane in sorted-name order
  — never in ``id()`` order (``tools/lint_determinism.py`` enforces
  this), so the same tree always exports byte-identically.

:func:`validate_chrome_trace` checks an export against the trace-event
schema the viewers rely on; the ``repro trace --validate`` CLI mode and
the CI golden check are built on it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional

from .spans import Span, SpanError, SpanTree

#: ``pid`` stamped on every exported event (one process: the simulator)
TRACE_PID = 1

#: lane 0: the episode's critical path (root span + phase spans)
CRITICAL_PATH_LANE = 0
CRITICAL_PATH_LANE_NAME = "critical-path"


class ExportError(ValueError):
    """Raised when an export cannot be produced or parsed."""


# ----------------------------------------------------------------- JSONL

def write_spans_jsonl(tree: SpanTree, path: object) -> int:
    """Write one span dict per line; returns the number of spans."""
    with open(path, "w", encoding="utf-8") as handle:  # type: ignore[arg-type]
        for span in tree.spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True))
            handle.write("\n")
    return len(tree.spans)


def read_spans_jsonl(path: object) -> SpanTree:
    """Load a tree previously written by :func:`write_spans_jsonl`."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:  # type: ignore[arg-type]
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    try:
        return SpanTree(spans)
    except SpanError as exc:
        raise ExportError(f"invalid span JSONL {path}: {exc}") from exc


# ---------------------------------------------------- Chrome trace events

def _lane_assignment(tree: SpanTree) -> Dict[str, int]:
    """``node name -> tid``: sorted-name order, lanes from 1 upward."""
    nodes = sorted({span.node for span in tree.spans if span.node})
    return {node: lane for lane, node in enumerate(nodes, start=1)}


def chrome_trace(tree: SpanTree) -> Dict[str, object]:
    """The Chrome trace-event object for one span tree.

    Deterministic: event order follows span document order, lanes follow
    sorted node names, and timestamps are exact integer-nanosecond spans
    scaled to fractional microseconds.
    """
    lanes = _lane_assignment(tree)
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": TRACE_PID,
            "tid": CRITICAL_PATH_LANE,
            "name": "thread_name",
            "args": {"name": CRITICAL_PATH_LANE_NAME},
        }
    ]
    for node in sorted(lanes):
        events.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": lanes[node],
                "name": "thread_name",
                "args": {"name": node},
            }
        )
    for span in tree.spans:
        tid = lanes.get(span.node, CRITICAL_PATH_LANE)
        args: Dict[str, object] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.node:
            args["node"] = span.node
        for key in sorted(span.attrs):
            args[key] = span.attrs[key]
        event: Dict[str, object] = {
            "name": span.name,
            "cat": "recovery" if span.parent_id is None else "span",
            "pid": TRACE_PID,
            "tid": tid,
            "ts": span.start / 1000,
            "args": args,
        }
        if span.duration > 0:
            event["ph"] = "X"
            event["dur"] = span.duration / 1000
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro trace", "spans": len(tree.spans)},
    }


def chrome_trace_json(tree: SpanTree) -> str:
    """The export serialised with sorted keys (byte-stable)."""
    return json.dumps(chrome_trace(tree), indent=2, sort_keys=True) + "\n"


def write_chrome_trace(tree: SpanTree, path: object) -> int:
    """Write the Chrome trace-event JSON; returns the event count."""
    text = chrome_trace_json(tree)
    with open(path, "w", encoding="utf-8") as handle:  # type: ignore[arg-type]
        handle.write(text)
    return len(chrome_trace(tree)["traceEvents"])  # type: ignore[arg-type]


#: phases (``ph``) this exporter emits; validation rejects anything else
_ALLOWED_PHASES = ("M", "X", "i", "I", "B", "E")


def validate_chrome_trace(data: object) -> List[str]:
    """Schema-check a Chrome trace-event export; returns problems found.

    Accepts the object format (``{"traceEvents": [...]}``) or the bare
    array format.  An empty list means the export is valid.
    """
    problems: List[str] = []
    if isinstance(data, Mapping):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            return ["object form lacks a 'traceEvents' array"]
    elif isinstance(data, list):
        events = data
    else:
        return ["trace must be a JSON object or array"]

    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _ALLOWED_PHASES:
            problems.append(f"{where}: bad or missing 'ph' {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing event 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: '{key}' must be an integer")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: complete event needs non-negative 'dur'"
                )
    return problems


def validate_chrome_trace_file(path: object) -> List[str]:
    """:func:`validate_chrome_trace` on a file; raises
    :class:`ExportError` when the file cannot be read or parsed."""
    try:
        with open(path, "r", encoding="utf-8") as handle:  # type: ignore[arg-type]
            data = json.load(handle)
    except OSError as exc:
        raise ExportError(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise ExportError(f"{path} is not JSON: {exc}") from exc
    return validate_chrome_trace(data)


def hierarchy_names(tree: SpanTree) -> Dict[str, Optional[str]]:
    """``{span name: parent span name}`` — convenience for asserting the
    detect → ... → first_packet hierarchy in tests and docs."""
    out: Dict[str, Optional[str]] = {}
    for span in tree.spans:
        parent = None if span.parent_id is None else tree.get(span.parent_id)
        out.setdefault(span.name, parent.name if parent else None)
    return out
