"""Recovery-phase attribution: turn a trace into Table III's decomposition.

The paper argues (§I, §III) that OSPF recovery time is an arithmetic sum —

    detection (~60 ms) + LSA flooding (ms) + throttled SPF hold
    (200 ms .. 10 s) + SPF compute + FIB update (~10 ms)

— while F²Tree collapses everything after detection into a data-plane
fall-through.  :func:`analyze_recovery` reconstructs exactly that critical
path from a :class:`~repro.obs.trace.TraceRecorder` stream:

1. the failure instant (first ``link.fail``),
2. the detection instant (first ``link.detected`` down afterwards),
3. the delivery gap at the monitored destination (``pkt.deliver`` events),
4. the FIB download that repaired the path, if any (``fib.install`` with
   route changes before traffic resumed), walked back through its
   ``spf.run`` and ``spf.schedule`` events to attribute flooding vs. hold.

When no FIB install precedes the first post-outage delivery, the repair was
the data plane's longest-prefix-match fall-through (F²Tree fast reroute)
and everything between detection and the first packet is ``first_packet``.

The result is a :class:`RecoveryBreakdown` — a dataclass that serialises to
JSON (``to_dict``) and renders as an ASCII timeline
(:func:`render_breakdown`) whose phases sum exactly to
``recovered_time - failure_time``; against the measured duration of
connectivity loss the sum agrees to within one probe interval (the
difference being the sub-interval instant the last pre-failure probe
landed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .trace import (
    EV_FIB_INSTALL,
    EV_LINK_DETECTED,
    EV_LINK_FAIL,
    EV_PKT_DELIVER,
    EV_SPF_RUN,
    EV_SPF_SCHEDULE,
    TraceEvent,
)

# Plain nanosecond constants: this module deliberately does not import
# repro.sim (the engine transitively imports repro.obs).
_MILLISECOND = 1_000_000

#: Gap threshold separating measurement noise from an outage (5 ms, the
#: same default as repro.metrics.timeseries.connectivity_loss_duration).
DEFAULT_GAP_THRESHOLD = 5 * _MILLISECOND

#: Phase names, in critical-path order (Table III columns).
PHASE_ORDER = (
    "detect", "flood", "spf_hold", "spf_compute", "fib_update", "first_packet",
)

#: Recovery mechanisms distinguishable from a trace.
MECHANISM_SPF = "spf-reconvergence"
MECHANISM_FRR = "fast-reroute"
MECHANISM_NONE = "none"


@dataclass(frozen=True)
class PhaseSpan:
    """One attributed span ``[start, end]`` of the recovery critical path."""

    name: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_ns": self.start,
            "end_ns": self.end,
            "duration_ns": self.duration,
        }


@dataclass
class RecoveryBreakdown:
    """Per-phase attribution of one failure-recovery episode."""

    mechanism: str
    failure_time: int
    detected_time: Optional[int] = None
    recovered_time: Optional[int] = None
    #: arrival of the last probe before the outage window (measurement edge)
    last_delivery_before: Optional[int] = None
    #: switch whose FIB download restored the path (SPF mechanism only)
    repair_node: Optional[str] = None
    phases: Tuple[PhaseSpan, ...] = ()
    #: failed links named in the trace, for the report header
    failed_links: Tuple[str, ...] = ()

    @property
    def total(self) -> int:
        """Sum of all phase durations == recovered - failure (0 if no loss)."""
        return sum(span.duration for span in self.phases)

    @property
    def connectivity_loss(self) -> Optional[int]:
        """The measured Table III metric: last-before -> first-after."""
        if self.recovered_time is None or self.last_delivery_before is None:
            return None
        return self.recovered_time - self.last_delivery_before

    def phase(self, name: str) -> Optional[PhaseSpan]:
        for span in self.phases:
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "mechanism": self.mechanism,
            "failure_time_ns": self.failure_time,
            "detected_time_ns": self.detected_time,
            "recovered_time_ns": self.recovered_time,
            "last_delivery_before_ns": self.last_delivery_before,
            "connectivity_loss_ns": self.connectivity_loss,
            "repair_node": self.repair_node,
            "failed_links": list(self.failed_links),
            "total_ns": self.total,
            "phases": [span.to_dict() for span in self.phases],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class TraceAnalysisError(ValueError):
    """Raised when a trace lacks the events an analysis needs."""


def _delivery_times(
    events: Sequence[TraceEvent],
    dst: Optional[str],
    dport: Optional[int],
) -> List[int]:
    times: List[int] = []
    for event in events:
        if event.kind != EV_PKT_DELIVER:
            continue
        if dst is not None and event.node != dst:
            continue
        if dport is not None and event.data.get("dport") != dport:
            continue
        times.append(event.time)
    return times


def _busiest_sink(events: Sequence[TraceEvent]) -> Optional[str]:
    """The node receiving the most deliveries — the monitored flow's sink."""
    counts: Dict[str, int] = {}
    for event in events:
        if event.kind == EV_PKT_DELIVER:
            counts[event.node] = counts.get(event.node, 0) + 1
    if not counts:
        return None
    return max(counts, key=lambda node: (counts[node], node))


def analyze_recovery(
    events: Iterable[TraceEvent],
    dst: Optional[str] = None,
    dport: Optional[int] = None,
    failure_time: Optional[int] = None,
    gap_threshold: int = DEFAULT_GAP_THRESHOLD,
) -> RecoveryBreakdown:
    """Attribute one failure's recovery time to its constituent phases.

    ``events`` is a chronological trace (a recorder, a list, or events
    loaded from JSONL).  ``dst``/``dport`` select the monitored flow's
    delivery events (default: the node receiving the most deliveries, any
    port).  ``failure_time`` overrides the first ``link.fail`` event.
    """
    evts = list(events)
    evts.sort(key=lambda e: e.time)

    fails = [e for e in evts if e.kind == EV_LINK_FAIL]
    if failure_time is None:
        if not fails:
            raise TraceAnalysisError("trace has no link.fail event")
        failure_time = fails[0].time
    failed_links = tuple(e.node for e in fails if e.time >= failure_time)

    if dst is None:
        dst = _busiest_sink(evts)
    deliveries = _delivery_times(evts, dst, dport)
    if not deliveries:
        raise TraceAnalysisError(
            "trace has no pkt.deliver events for the monitored flow "
            "(was tracing enabled during the run?)"
        )

    # The outage window: first over-threshold delivery gap ending after the
    # failure (the connectivity-loss definition of Table III).
    last_before: Optional[int] = None
    recovered: Optional[int] = None
    for earlier, later in zip(deliveries, deliveries[1:]):
        if later - earlier > gap_threshold and later > failure_time:
            last_before, recovered = earlier, later
            break

    detections = [
        e
        for e in evts
        if e.kind == EV_LINK_DETECTED
        and not e.data.get("up", True)
        and e.time >= failure_time
    ]
    detected = detections[0].time if detections else None

    if recovered is None:
        # Connectivity was never interrupted beyond the threshold (e.g. an
        # upward failure absorbed instantly by ECMP pruning).
        return RecoveryBreakdown(
            mechanism=MECHANISM_NONE,
            failure_time=failure_time,
            detected_time=detected,
            failed_links=failed_links,
        )

    if detected is None or detected > recovered:
        detected = recovered  # recovery beat detection reporting: clamp

    # The repairing FIB download: the last install that changed routes
    # before traffic resumed.  None -> the data plane fell through to a
    # backup route on its own (F²Tree fast reroute).
    repair: Optional[TraceEvent] = None
    for event in evts:
        if (
            event.kind == EV_FIB_INSTALL
            and failure_time < event.time <= recovered
            and event.data.get("changed", 0)
        ):
            repair = event

    spans: List[PhaseSpan] = [PhaseSpan("detect", failure_time, detected)]
    if repair is None:
        mechanism = MECHANISM_FRR
        repair_node = None
        spans.append(PhaseSpan("first_packet", detected, recovered))
    else:
        mechanism = MECHANISM_SPF
        repair_node = repair.node
        spf_run = max(
            (
                e.time
                for e in evts
                if e.kind == EV_SPF_RUN
                and e.node == repair_node
                and e.time <= repair.time
            ),
            default=repair.time,
        )
        scheduled = max(
            (
                e.time
                for e in evts
                if e.kind == EV_SPF_SCHEDULE
                and e.node == repair_node
                and e.time <= spf_run
            ),
            default=spf_run,
        )
        # Clamp to a monotone chain: a schedule armed before this failure's
        # detection (e.g. residual churn) attributes its wait to spf_hold.
        scheduled = max(scheduled, detected)
        spf_run = max(spf_run, scheduled)
        install = max(repair.time, spf_run)
        spans.append(PhaseSpan("flood", detected, scheduled))
        spans.append(PhaseSpan("spf_hold", scheduled, spf_run))
        # SPF computation is instantaneous in the simulator (the paper's
        # compute cost is folded into the hold/flood timers); keep the
        # column so the table matches Table III's shape.
        spans.append(PhaseSpan("spf_compute", spf_run, spf_run))
        spans.append(PhaseSpan("fib_update", spf_run, install))
        spans.append(PhaseSpan("first_packet", install, recovered))

    return RecoveryBreakdown(
        mechanism=mechanism,
        failure_time=failure_time,
        detected_time=detected,
        recovered_time=recovered,
        last_delivery_before=last_before,
        repair_node=repair_node,
        phases=tuple(spans),
        failed_links=failed_links,
    )


def render_breakdown(breakdown: RecoveryBreakdown, width: int = 40) -> str:
    """ASCII timeline of the attributed phases (one bar per phase)."""
    header = [
        f"recovery mechanism: {breakdown.mechanism}",
        f"failed link(s):     {', '.join(breakdown.failed_links) or '(unknown)'}",
        f"failure at          {breakdown.failure_time / _MILLISECOND:.3f} ms",
    ]
    if breakdown.mechanism == MECHANISM_NONE:
        header.append("no connectivity loss beyond the gap threshold")
        return "\n".join(header)
    if breakdown.repair_node is not None:
        header.append(f"repaired by         {breakdown.repair_node} (FIB download)")
    else:
        header.append("repaired by         data-plane backup-route fall-through")
    assert breakdown.recovered_time is not None
    total = breakdown.total or 1
    header.append(
        f"recovered at        {breakdown.recovered_time / _MILLISECOND:.3f} ms"
        f"  (total {total / _MILLISECOND:.3f} ms after failure)"
    )
    loss = breakdown.connectivity_loss
    if loss is not None:
        header.append(
            f"measured loss       {loss / _MILLISECOND:.3f} ms"
            " (last delivery before -> first after)"
        )
    lines = header + [""]
    for span in breakdown.phases:
        bar = "#" * max(
            round(span.duration / total * width), 1 if span.duration else 0
        )
        lines.append(
            f"  {span.name:<13} {span.duration / _MILLISECOND:>10.3f} ms "
            f"|{bar:<{width}}|"
        )
    lines.append(f"  {'sum':<13} {total / _MILLISECOND:>10.3f} ms")
    return "\n".join(lines)
