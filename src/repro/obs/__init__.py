"""Observability: event tracing, metrics, and recovery-phase attribution.

The measurement substrate the ROADMAP's performance work stands on.  Three
pieces:

* :mod:`repro.obs.trace` — a ring-buffer :class:`TraceRecorder` of typed,
  timestamped events, with a disabled-by-default no-op fast path;
* :mod:`repro.obs.registry` — a prometheus-style :class:`MetricsRegistry`
  of named counters, gauges and fixed-bucket histograms;
* :mod:`repro.obs.breakdown` — :func:`analyze_recovery`, which turns a
  trace into the paper's per-phase recovery decomposition
  (detect -> flood -> SPF hold -> SPF compute -> FIB update -> first packet);
* :mod:`repro.obs.spans` — :func:`build_recovery_spans`, which lifts that
  decomposition into a causal parent/child :class:`SpanTree` (per-node
  ``spf`` and per-prefix ``fib_delta`` children, counters on the root);
* :mod:`repro.obs.export` — span exporters: JSONL and Chrome trace-event
  JSON (openable in Perfetto / ``chrome://tracing``).

The :class:`Observability` facade bundles one recorder and one registry and
is what a :class:`~repro.sim.engine.Simulator` carries (``sim.obs``).
Every simulator gets a **disabled** facade by default: hot paths check one
cached attribute (``obs.enabled``) and skip all instrumentation, so the
untraced simulator costs what it did before this layer existed.  Cold
paths (failures, LSA floods, SPF runs) emit unconditionally — the recorder
no-ops while disabled, and registry counters are cheap enough to always
keep.

Enable at construction time::

    from repro.obs import Observability
    obs = Observability(enabled=True)
    result = run_recovery(fat_tree(4), "udp", obs=obs)
    print(render_breakdown(result.breakdown))
    obs.trace.write_jsonl("trace.jsonl")
"""

from __future__ import annotations

from typing import Optional

from .breakdown import (
    DEFAULT_GAP_THRESHOLD,
    MECHANISM_FRR,
    MECHANISM_NONE,
    MECHANISM_SPF,
    PHASE_ORDER,
    PhaseSpan,
    RecoveryBreakdown,
    TraceAnalysisError,
    analyze_recovery,
    render_breakdown,
)
from .export import (
    ExportError,
    chrome_trace,
    chrome_trace_json,
    hierarchy_names,
    read_spans_jsonl,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_spans_jsonl,
)
from .registry import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .spans import (
    SPAN_FIB_DELTA,
    SPAN_RECOVERY,
    SPAN_SPF,
    SPANS_VERSION,
    Span,
    SpanError,
    SpanTree,
    build_recovery_spans,
    counters_from_metrics,
)
from .trace import (
    DEFAULT_CAPACITY,
    EV_FIB_FALLTHROUGH,
    EV_FIB_INSTALL,
    EV_LINK_DETECTED,
    EV_LINK_FAIL,
    EV_LINK_RESTORE,
    EV_LSA_ACCEPT,
    EV_LSA_ORIGINATE,
    EV_PKT_DELIVER,
    EV_PKT_DROP,
    EV_SPF_RUN,
    EV_SPF_SCHEDULE,
    NULL_TRACE,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
    replay,
)


class Observability:
    """One trace recorder + one metrics registry, with a master switch.

    ``enabled`` gates the *hot-path* instrumentation (per-packet, per-event
    work); it is kept in sync with ``trace.enabled``.  The registry is
    always live — cold-path counters (SPF runs, LSA floods, link failures)
    accumulate whether or not tracing is on.
    """

    __slots__ = ("trace", "metrics", "enabled")

    def __init__(
        self,
        enabled: bool = False,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.trace = (
            trace
            if trace is not None
            else TraceRecorder(capacity=capacity, enabled=enabled)
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.enabled = enabled
        self.trace.enabled = enabled

    def enable(self) -> None:
        self.enabled = True
        self.trace.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self.trace.enabled = False


__all__ = [
    "Observability",
    # trace
    "TraceEvent",
    "TraceRecorder",
    "NULL_TRACE",
    "DEFAULT_CAPACITY",
    "read_jsonl",
    "replay",
    "EV_FIB_FALLTHROUGH",
    "EV_FIB_INSTALL",
    "EV_LINK_DETECTED",
    "EV_LINK_FAIL",
    "EV_LINK_RESTORE",
    "EV_LSA_ACCEPT",
    "EV_LSA_ORIGINATE",
    "EV_PKT_DELIVER",
    "EV_PKT_DROP",
    "EV_SPF_RUN",
    "EV_SPF_SCHEDULE",
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_MS_BUCKETS",
    "default_registry",
    # breakdown
    "PhaseSpan",
    "RecoveryBreakdown",
    "TraceAnalysisError",
    "analyze_recovery",
    "render_breakdown",
    "DEFAULT_GAP_THRESHOLD",
    "PHASE_ORDER",
    "MECHANISM_FRR",
    "MECHANISM_NONE",
    "MECHANISM_SPF",
    # spans
    "Span",
    "SpanTree",
    "SpanError",
    "build_recovery_spans",
    "counters_from_metrics",
    "SPANS_VERSION",
    "SPAN_RECOVERY",
    "SPAN_SPF",
    "SPAN_FIB_DELTA",
    # export
    "ExportError",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "hierarchy_names",
]
