"""Causal span trees: one recovery episode as parent/child spans.

:mod:`repro.obs.breakdown` answers *how long* each recovery phase took;
this module answers *what caused what*.  :func:`build_recovery_spans`
turns a :class:`~repro.obs.trace.TraceRecorder` stream into a tree —

    recovery
    ├── detect
    ├── flood
    ├── spf_hold
    ├── spf_compute
    │   └── spf (one per node that ran SPF inside the phase)
    ├── fib_update
    │   └── fib_delta (one per changed prefix, bounded per install)
    └── first_packet

— where the root carries the episode's counters (events drained, SPF
cache hits/misses, FIB match-chain cache hits/misses) and every span is
stamped with integer simulated nanoseconds.  Design rules:

1. **Deterministic identity.**  Span IDs are sequence counters assigned
   in document order — never ``id()``/``hash()`` values, never wall
   clocks (``tools/lint_determinism.py`` enforces this for this module).
   The same trace always yields the byte-identical tree.
2. **Post-hoc construction.**  Spans are derived from the already
   recorded trace *after* the run, so the spans layer adds literally
   zero work to hot paths while the simulation executes; with tracing
   disabled there is nothing to build from and nothing is built.
3. **Truncation-safe.**  A ring that wrapped past an episode's opening
   events (``link.fail`` evicted while the episode was still "open")
   still closes cleanly: the builder falls back to a coarse tree rooted
   at the surviving event range and marks it ``trace_complete: false``.

Trees serialise to a JSON-safe dict (:meth:`SpanTree.to_dict` /
:meth:`SpanTree.from_dict`) so they cross the campaign runner's process
boundary and embed into replay bundles; the exporters live in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .breakdown import (
    MECHANISM_NONE,
    RecoveryBreakdown,
    TraceAnalysisError,
    analyze_recovery,
)
from .trace import EV_FIB_INSTALL, EV_SPF_RUN, TraceEvent

#: serialisation version of :meth:`SpanTree.to_dict`
SPANS_VERSION = 1

# -- span names --------------------------------------------------------------

#: the root span covering one failure-recovery episode
SPAN_RECOVERY = "recovery"
#: one per-node SPF computation (child of the phase it ran in)
SPAN_SPF = "spf"
#: one changed prefix of one FIB download (child of ``fib_update``)
SPAN_FIB_DELTA = "fib_delta"

#: mechanism recorded on a fallback tree built without a breakdown
MECHANISM_UNKNOWN = "unknown"

#: metric-name -> root-counter-key mapping used by
#: :func:`counters_from_metrics` (sorted for deterministic iteration)
COUNTER_METRICS: Tuple[Tuple[str, str], ...] = (
    ("events_drained", "sim.events_executed"),
    ("fib_chain_hits", "fib.chain.hits"),
    ("fib_chain_misses", "fib.chain.misses"),
    ("spf_cache_hits", "spf.cache.hits"),
    ("spf_cache_misses", "spf.cache.misses"),
)


class SpanError(ValueError):
    """Raised for malformed span trees or traces too empty to span."""


@dataclass(frozen=True)
class Span:
    """One node of a span tree.

    ``span_id`` is a 1-based sequence number in document order;
    ``parent_id`` is ``None`` only for the root.  ``start``/``end`` are
    integer simulated nanoseconds with ``start <= end``; ``attrs`` is
    free-form JSON-safe detail.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    node: str = ""
    start: int = 0
    end: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start_ns": self.start,
            "end_ns": self.end,
            "duration_ns": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "Span":
        return cls(
            span_id=int(record["span_id"]),  # type: ignore[arg-type]
            parent_id=(
                None
                if record.get("parent_id") is None
                else int(record["parent_id"])  # type: ignore[arg-type]
            ),
            name=str(record["name"]),
            node=str(record.get("node", "")),
            start=int(record["start_ns"]),  # type: ignore[arg-type]
            end=int(record["end_ns"]),  # type: ignore[arg-type]
            attrs=dict(record.get("attrs", {})),  # type: ignore[arg-type]
        )


class SpanTree:
    """A validated, immutable-by-convention tree of :class:`Span` nodes.

    Construction validates the structural invariants the exporters and
    the campaign merge rely on: exactly one root (first span, ``parent_id
    None``), strictly increasing span IDs, every ``parent_id`` referring
    to an earlier span, ``start <= end`` everywhere, and every child
    contained in its parent's ``[start, end]`` interval.
    """

    __slots__ = ("spans", "_by_id")

    def __init__(self, spans: Iterable[Span]) -> None:
        self.spans: Tuple[Span, ...] = tuple(spans)
        if not self.spans:
            raise SpanError("a span tree needs at least a root span")
        by_id: Dict[int, Span] = {}
        root = self.spans[0]
        if root.parent_id is not None:
            raise SpanError("first span must be the root (parent_id None)")
        previous_id = 0
        for span in self.spans:
            if span.span_id <= previous_id:
                raise SpanError(
                    f"span ids must be strictly increasing, got "
                    f"{span.span_id} after {previous_id}"
                )
            previous_id = span.span_id
            if span.start > span.end:
                raise SpanError(
                    f"span {span.span_id} ({span.name}) has start > end"
                )
            if span is not root:
                if span.parent_id is None:
                    raise SpanError("tree has more than one root span")
                parent = by_id.get(span.parent_id)
                if parent is None:
                    raise SpanError(
                        f"span {span.span_id} references unknown/later "
                        f"parent {span.parent_id}"
                    )
                if span.start < parent.start or span.end > parent.end:
                    raise SpanError(
                        f"span {span.span_id} ({span.name}) escapes its "
                        f"parent {parent.span_id} ({parent.name}) bounds"
                    )
            by_id[span.span_id] = span
        self._by_id = by_id

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def root(self) -> Span:
        return self.spans[0]

    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def children(self, span_id: int) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def find(self, name: str) -> List[Span]:
        """Every span with the given name, in document order."""
        return [s for s in self.spans if s.name == name]

    def phase(self, name: str) -> Optional[Span]:
        """The root's direct child with the given (phase) name."""
        for span in self.spans:
            if span.parent_id == self.root.span_id and span.name == name:
                return span
        return None

    def phase_durations(self) -> Dict[str, int]:
        """``{phase name: duration_ns}`` over the root's direct children
        (per-node/per-prefix leaves excluded)."""
        out: Dict[str, int] = {}
        for span in self.spans:
            if span.parent_id == self.root.span_id and span.name not in (
                SPAN_SPF, SPAN_FIB_DELTA,
            ):
                out[span.name] = span.duration
        return out

    # ------------------------------------------------------- serialisation

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": SPANS_VERSION,
            "spans": [span.to_dict() for span in self.spans],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SpanTree":
        version = data.get("version")
        if version != SPANS_VERSION:
            raise SpanError(f"unsupported span-tree version {version!r}")
        records = data.get("spans")
        if not isinstance(records, list):
            raise SpanError("span-tree dict has no 'spans' list")
        return cls(Span.from_dict(record) for record in records)

    def render(self) -> str:
        """ASCII rendering of the tree, one line per span."""
        children: Dict[int, List[Span]] = {}
        for span in self.spans[1:]:
            assert span.parent_id is not None
            children.setdefault(span.parent_id, []).append(span)

        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            label = f"{span.name}" + (f" @{span.node}" if span.node else "")
            lines.append(
                f"{'  ' * depth}{label:<{max(1, 30 - 2 * depth)}} "
                f"{span.start / 1e6:>10.3f} ms  +{span.duration / 1e6:.3f} ms"
            )
            for child in children.get(span.span_id, []):
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


def counters_from_metrics(
    snapshot: Mapping[str, object]
) -> Dict[str, int]:
    """Extract the root span's counters from a
    :meth:`~repro.obs.registry.MetricsRegistry.snapshot` dict.

    Only the counters named in :data:`COUNTER_METRICS` and present in
    the snapshot appear; the result is insertion-ordered by counter key
    so it serialises deterministically.
    """
    counters: Dict[str, int] = {}
    for key, metric in COUNTER_METRICS:
        value = snapshot.get(metric)
        if isinstance(value, (int, float)):
            counters[key] = int(value)
    return counters


def _containing_phase(
    phases: List[Span], time: int, prefer: Optional[str] = None
) -> Optional[Span]:
    """The phase span whose interval contains ``time``.

    Adjacent phases share their boundary instant, so ``prefer`` names the
    phase that wins a tie (an SPF run at the hold/compute boundary belongs
    to ``spf_compute``, not to the hold that just expired).
    """
    if prefer is not None:
        for phase in phases:
            if phase.name == prefer and phase.start <= time <= phase.end:
                return phase
    for phase in phases:
        if phase.start <= time <= phase.end:
            return phase
    return None


#: cap on per-prefix ``fib_delta`` children emitted per FIB install (the
#: install's ``changes`` list is already bounded at the trace source; this
#: is defence in depth for hand-built traces)
MAX_FIB_DELTA_CHILDREN = 64


class _Builder:
    """Sequence-counter span allocation (deterministic identity)."""

    __slots__ = ("spans", "_next_id")

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_id = 1

    def add(
        self,
        name: str,
        start: int,
        end: int,
        parent: Optional[Span] = None,
        node: str = "",
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        span = Span(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            node=node,
            start=start,
            end=end,
            attrs=attrs or {},
        )
        self._next_id += 1
        self.spans.append(span)
        return span


def build_recovery_spans(
    events: Iterable[TraceEvent],
    dst: Optional[str] = None,
    dport: Optional[int] = None,
    breakdown: Optional[RecoveryBreakdown] = None,
    counters: Optional[Mapping[str, int]] = None,
    evicted: int = 0,
) -> SpanTree:
    """Build the causal span tree of one recovery episode.

    ``events`` is the recorded trace (a :class:`TraceRecorder`, a list,
    or events loaded from JSONL).  ``breakdown`` short-circuits the
    phase analysis when the caller already ran
    :func:`~repro.obs.breakdown.analyze_recovery`; otherwise it is run
    here, and a trace it cannot attribute (truncated ring, no monitored
    flow) degrades to a coarse fallback tree instead of failing —
    ``evicted`` (the recorder's eviction count) marks the result
    ``trace_complete: false``.  ``counters`` (see
    :func:`counters_from_metrics`) lands in the root span's attrs.

    Raises :class:`SpanError` only for a completely empty trace.
    """
    evts = sorted(events, key=lambda e: e.time)
    if not evts:
        raise SpanError("cannot build spans from an empty trace")

    if breakdown is None:
        try:
            breakdown = analyze_recovery(evts, dst=dst, dport=dport)
        except TraceAnalysisError:
            breakdown = None

    lo = evts[0].time
    hi = evts[-1].time
    if breakdown is not None:
        lo = min(lo, breakdown.failure_time)
        for phase in breakdown.phases:
            hi = max(hi, phase.end)

    builder = _Builder()
    root_attrs: Dict[str, object] = {
        "mechanism": (
            MECHANISM_UNKNOWN if breakdown is None else breakdown.mechanism
        ),
        "events": len(evts),
        "evicted": evicted,
        "trace_complete": evicted == 0,
    }
    if breakdown is not None:
        root_attrs["failed_links"] = list(breakdown.failed_links)
        if breakdown.repair_node is not None:
            root_attrs["repair_node"] = breakdown.repair_node
    if counters:
        root_attrs["counters"] = {
            key: int(counters[key]) for key in sorted(counters)
        }
    root = builder.add(SPAN_RECOVERY, lo, hi, attrs=root_attrs)

    phases: List[Span] = []
    if breakdown is not None and breakdown.mechanism != MECHANISM_NONE:
        for phase in breakdown.phases:
            phases.append(
                builder.add(phase.name, phase.start, phase.end, parent=root)
            )

    # leaf spans are scoped to the recovery episode: SPF/FIB activity from
    # before the failure (initial convergence) belongs to no phase and
    # would swamp the tree with warmup noise
    episode_start = (
        breakdown.failure_time if breakdown is not None else evts[0].time
    )
    for event in evts:
        if event.time < episode_start:
            continue
        if event.kind == EV_SPF_RUN:
            parent = _containing_phase(
                phases, event.time, prefer="spf_compute"
            ) or root
            attrs: Dict[str, object] = {}
            if "hold" in event.data:
                attrs["hold_ns"] = event.data["hold"]
            if "cached" in event.data:
                attrs["cached"] = event.data["cached"]
            if "delta" in event.data:
                # the logical LSDB-transition classification (refresh /
                # cosmetic / link-down / link-up / structural) — shows
                # which runs the incremental engine could patch
                attrs["delta"] = event.data["delta"]
            builder.add(
                SPAN_SPF, event.time, event.time,
                parent=parent, node=event.node, attrs=attrs,
            )
        elif event.kind == EV_FIB_INSTALL and event.data.get("changed"):
            parent = _containing_phase(
                phases, event.time, prefer="fib_update"
            ) or root
            changes = event.data.get("changes")
            if isinstance(changes, list):
                for change in changes[:MAX_FIB_DELTA_CHILDREN]:
                    builder.add(
                        SPAN_FIB_DELTA, event.time, event.time,
                        parent=parent, node=event.node,
                        attrs={"change": change},
                    )

    return SpanTree(builder.spans)
