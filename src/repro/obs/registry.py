"""A prometheus-style registry of named counters, gauges and histograms.

Usage pattern (mirrors prometheus client libraries, minus the server)::

    registry = MetricsRegistry()
    registry.counter("fib.backup_fallthrough", node="agg-0-1").inc()
    registry.histogram("spf.hold_ms", buckets=(200, 1000, 10000)).observe(200)
    print(registry.render())

Metric instances are memoized by ``(name, labels)``: asking twice for the
same counter returns the same object, so hot paths can either cache the
instance or re-look it up cheaply.  A name is permanently bound to one
metric type; reusing it with a different type raises, which catches typos
that would otherwise silently split a series.

Everything here is plain Python ints/floats — no locks (the simulator is
single-threaded) and no external dependencies.  ``snapshot()`` gives a
JSON-safe dict, ``render()`` a prometheus-exposition-flavoured text dump.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Canonical key for a labelled metric: name plus sorted label pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default histogram buckets, in milliseconds: spans the paper's timescales
#: from per-hop delays (~0.017 ms) to SPF hold backoff (10 000 ms).
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.1, 1.0, 5.0, 10.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 5_000.0, 10_000.0,
)


class Counter:
    """A monotonically-increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down; also tracks its high watermark."""

    __slots__ = ("name", "labels", "value", "max_value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative ``le`` semantics.

    ``buckets`` are ascending upper bounds; an observation lands in the
    first bucket whose bound is ``>= value`` (and always in the implicit
    ``+Inf`` bucket, counted by ``count``).
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        buckets: Sequence[float],
    ) -> None:
        bounds = tuple(buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} buckets must strictly ascend: {bounds}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        #: per-bound counts; the +Inf overflow bucket is ``count - sum(counts)``
        self.counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        index = bisect_left(self.buckets, value)
        if index < len(self.buckets):
            self.counts[index] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


Metric = object  # Counter | Gauge | Histogram


class MetricsRegistry:
    """Process-wide (or per-simulator) home of named metrics."""

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Metric] = {}
        self._types: Dict[str, type] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(
        self, cls: type, name: str, labels: Dict[str, str], **extra: Any
    ) -> Any:
        declared = self._types.get(name)
        if declared is not None and declared is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {declared.__name__}, "
                f"requested {cls.__name__}"
            )
        key: MetricKey = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **extra)
            self._metrics[key] = metric
            self._types[name] = cls
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: str
    ) -> Histogram:
        return self._get(
            Histogram, name, labels, buckets=buckets or DEFAULT_MS_BUCKETS
        )

    def collect(self) -> Iterator[Metric]:
        """All registered metric instances, sorted by (name, labels)."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def get(self, name: str, **labels: str) -> Optional[Metric]:
        """The existing metric for (name, labels), or None (never creates)."""
        key: MetricKey = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self._metrics.get(key)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe dump of every metric's current state."""
        out: Dict[str, object] = {}
        for metric in self.collect():
            label_suffix = _label_text(metric.labels)
            full = metric.name + label_suffix
            if isinstance(metric, Counter):
                out[full] = metric.value
            elif isinstance(metric, Gauge):
                out[full] = {"value": metric.value, "max": metric.max_value}
            elif isinstance(metric, Histogram):
                out[full] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": {str(b): c for b, c in metric.cumulative()},
                }
        return out

    def render(self) -> str:
        """Prometheus-exposition-flavoured text dump."""
        lines: List[str] = []
        for metric in self.collect():
            label_suffix = _label_text(metric.labels)
            if isinstance(metric, Counter):
                lines.append(f"{metric.name}{label_suffix} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"{metric.name}{label_suffix} {metric.value:g}")
                lines.append(
                    f"{metric.name}_max{label_suffix} {metric.max_value:g}"
                )
            elif isinstance(metric, Histogram):
                for bound, cumulative in metric.cumulative():
                    le = "+Inf" if bound == float("inf") else f"{bound:g}"
                    pairs = metric.labels + (("le", le),)
                    lines.append(
                        f"{metric.name}_bucket{_label_text(pairs)} {cumulative}"
                    )
                lines.append(f"{metric.name}_sum{label_suffix} {metric.sum:g}")
                lines.append(f"{metric.name}_count{label_suffix} {metric.count}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every registered metric (tests and repeated experiments)."""
        self._metrics.clear()
        self._types.clear()


def _label_text(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (simulators default to private ones)."""
    return _DEFAULT
