"""Event tracing: typed, timestamped records in a bounded ring buffer.

The recorder is the write side of the observability layer.  Design goals,
in order:

1. **Zero cost when disabled.**  Hot paths (packet forwarding, the event
   loop) check a single cached ``enabled`` attribute before building any
   event; cold paths (link failures, LSA flooding, SPF runs) call
   :meth:`TraceRecorder.emit` unconditionally and the recorder returns
   immediately when disabled.
2. **Bounded memory.**  Events live in a ``deque(maxlen=capacity)`` ring;
   long simulations evict the oldest events instead of growing without
   limit.  ``evicted`` counts what was lost so analyzers can tell a
   truncated trace from a complete one.
3. **No simulator dependency.**  Timestamps are plain integer nanoseconds
   supplied by the caller, so this module imports nothing from
   :mod:`repro.sim` (the engine imports *us*).

Event kinds are dotted strings (``"link.fail"``, ``"spf.run"``); the
canonical kinds emitted by the instrumented layers are the ``EV_*``
constants below.  Arbitrary JSON-serialisable key/value data rides in
``TraceEvent.data`` so traces round-trip through JSONL files
(:meth:`TraceRecorder.write_jsonl` / :func:`read_jsonl`).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

# -- canonical event kinds ---------------------------------------------------

#: A link actually went down (both directions).
EV_LINK_FAIL = "link.fail"
#: A link actually came back up.
EV_LINK_RESTORE = "link.restore"
#: An endpoint's failure detection changed its mind about a link
#: (``data: link, peer, up``) — the start of every recovery story.
EV_LINK_DETECTED = "link.detected"
#: A router originated a new LSA (``data: seq, neighbors``).
EV_LSA_ORIGINATE = "lsa.originate"
#: A router accepted flooded LSAs it had not seen (``data: count, sender``).
EV_LSA_ACCEPT = "lsa.accept"
#: The SPF throttle armed its timer (``data: delay, hold``).
EV_SPF_SCHEDULE = "spf.schedule"
#: An SPF computation ran (``data: hold``).
EV_SPF_RUN = "spf.run"
#: A FIB download completed (``data: installed, withdrawn, changed``).
EV_FIB_INSTALL = "fib.install"
#: A lookup fell through past dead longer matches
#: (``data: prefix, source, depth``) — F²Tree's fast reroute in action.
EV_FIB_FALLTHROUGH = "fib.fallthrough"
#: A packet was delivered to a local handler on a host/switch
#: (``data: proto, sport, dport, size, hops``).
EV_PKT_DELIVER = "pkt.deliver"
#: A packet was dropped (``data: reason``).
EV_PKT_DROP = "pkt.drop"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped trace record.

    ``time`` is integer simulated nanoseconds, ``kind`` a dotted event
    type, ``node`` the emitting entity (switch/host/link name, or ``""``
    for engine-level events) and ``data`` free-form JSON-safe details.
    """

    time: int
    kind: str
    node: str = ""
    data: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        record = {"t": self.time, "kind": self.kind, "node": self.node}
        if self.data:
            record["data"] = self.data
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        record = json.loads(line)
        return cls(
            time=record["t"],
            kind=record["kind"],
            node=record.get("node", ""),
            data=record.get("data", {}),
        )


#: Default ring capacity: holds a full single-flow recovery run (tens of
#: thousands of per-packet delivery events plus all control-plane events).
DEFAULT_CAPACITY = 1 << 17


class TraceRecorder:
    """A bounded, append-only sink of :class:`TraceEvent` records."""

    __slots__ = ("enabled", "capacity", "evicted", "_events")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        #: number of events evicted by the ring bound (trace truncated)
        self.evicted = 0
        self._events: deque = deque(maxlen=capacity or None)

    def __len__(self) -> int:
        return len(self._events)

    def emit(self, time: int, kind: str, node: str = "", **data: object) -> None:
        """Record one event; a no-op while the recorder is disabled."""
        if not self.enabled:
            return
        if self.capacity and len(self._events) == self.capacity:
            self.evicted += 1
        self._events.append(TraceEvent(time, kind, node, data))

    def events(
        self, kind: Optional[str] = None, node: Optional[str] = None
    ) -> List[TraceEvent]:
        """Recorded events in emission order, optionally filtered."""
        return [
            event
            for event in self._events
            if (kind is None or event.kind == kind)
            and (node is None or event.node == node)
        ]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.evicted = 0

    # ------------------------------------------------------------ JSONL I/O

    def write_jsonl(self, path: str | Path) -> int:
        """Write every recorded event as one JSON object per line."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(event.to_json())
                handle.write("\n")
        return len(self._events)


#: A permanently-disabled recorder for code that wants an always-valid sink.
NULL_TRACE = TraceRecorder(capacity=0, enabled=False)


def read_jsonl(path: str | Path) -> List[TraceEvent]:
    """Load a trace previously written by :meth:`TraceRecorder.write_jsonl`."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_json(line))
    return events


def replay(events: Iterable[TraceEvent], capacity: Optional[int] = None) -> TraceRecorder:
    """A recorder pre-filled with ``events`` (handy for analyzer tests)."""
    recorder = TraceRecorder(
        capacity=capacity if capacity is not None else DEFAULT_CAPACITY
    )
    for event in events:
        recorder.emit(event.time, event.kind, event.node, **event.data)
    return recorder
