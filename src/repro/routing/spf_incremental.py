"""Incremental shortest-path-first: recompute only the affected subtree.

Full SPF (:func:`repro.routing.spf.compute_routes`) is a pure function
of the two-way graph plus advertised prefixes, and an LSDB almost never
changes arbitrarily between two SPF runs: the overwhelmingly common
transition in a failure/recovery storm is **one link going down or up**
(both endpoints re-originate, but the two-way edge set changes by
exactly one edge).  This module classifies the transition between two
LSDB fingerprints and, for single-edge deltas, patches the previous SPF
state instead of recomputing from scratch — the approach of "Efficient
Algorithms to Enhance Recovery Schema in Link State Protocols"
(arXiv 1108.1426) adapted to this repo's ECMP first-hop-set Dijkstra.

Algorithm sketch (unit costs make Dijkstra a BFS by levels):

* **link-down** ``(a, b)`` — if the edge was not on any shortest path
  (``dist[a] == dist[b]``, or an endpoint was unreachable) nothing
  changes.  Otherwise every node whose shortest paths could have used
  the edge is a descendant of the *far* endpoint in the old shortest-
  path DAG; that (conservative) affected region is recomputed by a
  boundary-seeded restricted Dijkstra, everything outside it is
  provably untouched.
* **link-up** ``(a, b)`` — improvements propagate outward from the new
  edge: a seeded Dijkstra settles nodes in increasing distance order,
  pruning propagation wherever the recomputed ``(dist, first_hops)``
  equals the old value (an equal-cost merge can change first hops
  without changing distance, so equal-distance "dirty" probes are
  pushed too).
* **route patching** — only prefixes advertised by a node whose
  ``(dist, first_hops)`` changed can change in the route table; those
  are re-aggregated across their advertisers, the rest of the table is
  reused as-is.

Every result is **provably equal** to the from-scratch oracle and the
hypothesis suite in ``tests/test_spf_incremental.py`` differentially
pins that equality across random flap sequences on all four topology
families.  Equal-key heap entries are ``(distance, name)`` tuples, so
settle order is deterministic regardless of set iteration order.

Two consumers layer this module:

* :class:`~repro.routing.spf_cache.SpfCache` applies it on cache misses
  (the verifier, the centralized controller, and the convergence-
  agreement oracle all go through the shared cache);
* :class:`IncrementalSpfEngine` gives each link-state protocol instance
  a private state whose evolution is a pure function of that instance's
  own fingerprint sequence — which is what makes the ``delta`` trace
  attribute and the per-instance stats deterministic for any worker
  count.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..net.ip import Prefix
from .lsdb import Lsdb
from .spf import DistanceMap, FirstHopMap, RouteTable, aggregate_routes, dijkstra

#: the hashable digest produced by :meth:`repro.routing.lsdb.Lsdb.fingerprint`
Fingerprint = Tuple[Any, ...]

#: an undirected two-way edge, endpoints sorted
Edge = Tuple[str, str]

# ------------------------------------------------------- delta taxonomy

#: first computation for this consumer (no previous state)
INITIAL = "initial"
#: fingerprint unchanged (seq-only LSA refresh): previous result reused
REFRESH = "refresh"
#: fingerprints differ but the two-way graph and prefixes are identical
#: (a half-learned failure: only one endpoint re-originated so far)
COSMETIC = "cosmetic"
#: exactly one two-way edge disappeared
LINK_DOWN = "link-down"
#: exactly one two-way edge appeared
LINK_UP = "link-up"
#: anything else (multi-edge batch, origin/prefix changes): full SPF
STRUCTURAL = "structural"


@dataclass(frozen=True)
class SpfDelta:
    """Classification of one fingerprint transition."""

    kind: str
    edge: Optional[Edge] = None


@dataclass(frozen=True)
class GraphInfo:
    """Routing-relevant content of one fingerprint, indexed for diffing."""

    #: node -> sorted two-way neighbors (every origin is a key)
    adjacency: Dict[str, Tuple[str, ...]]
    #: node -> advertised prefixes
    prefixes: Dict[str, Tuple[Prefix, ...]]
    #: prefix -> sorted advertising origins
    advertisers: Dict[Prefix, Tuple[str, ...]]
    #: the two-way edge set
    edges: FrozenSet[Edge]


@dataclass(frozen=True)
class SpfState:
    """One origin's complete SPF result over one fingerprint.

    Treated as immutable by every consumer: incremental updates build
    new maps (copy-on-write), never mutate a shared state in place.
    """

    origin: str
    fingerprint: Fingerprint
    dist: DistanceMap
    first_hops: FirstHopMap
    routes: RouteTable


@dataclass(frozen=True)
class SpfRunReport:
    """What one engine computation did — ``delta`` (and ``edge``) are pure
    functions of the consumer's fingerprint sequence and therefore safe
    to emit into byte-identical traces; ``touched``/``incremental``
    describe the work actually performed."""

    delta: str
    edge: Optional[Edge] = None
    #: nodes whose SPF state was recomputed (region size, not changes)
    touched: int = 0
    #: True when the incremental patch path produced the result
    incremental: bool = False


# --------------------------------------------------- fingerprint indexing

#: bounded memo for :func:`graph_info` — fingerprints repeat heavily
#: (every switch of a fabric shares the flooded database content)
_GRAPH_MEMO: "OrderedDict[Fingerprint, GraphInfo]" = OrderedDict()
_GRAPH_MEMO_MAX = 128

#: bounded memo for :func:`classify_transition` — all origins of a fabric
#: see the same (old, new) fingerprint pair after one topology event
_DELTA_MEMO: "OrderedDict[Tuple[Fingerprint, Fingerprint], SpfDelta]" = OrderedDict()
_DELTA_MEMO_MAX = 256


def graph_info(fingerprint: Fingerprint) -> GraphInfo:
    """Index one fingerprint's content (memoized)."""
    memo = _GRAPH_MEMO
    info = memo.get(fingerprint)
    if info is not None:
        memo.move_to_end(fingerprint)
        return info
    declared: Dict[str, Tuple[str, ...]] = {}
    prefixes: Dict[str, Tuple[Prefix, ...]] = {}
    for origin, neighbors, prefs in fingerprint:
        declared[origin] = neighbors
        prefixes[origin] = prefs
    adjacency: Dict[str, Tuple[str, ...]] = {}
    edges: List[Edge] = []
    for origin, neighbors, _prefs in fingerprint:
        two_way = tuple(sorted(
            {peer for peer in neighbors if origin in declared.get(peer, ())}
        ))
        adjacency[origin] = two_way
        for peer in two_way:
            if origin < peer:
                edges.append((origin, peer))
    advertisers: Dict[Prefix, List[str]] = {}
    for origin, _neighbors, prefs in fingerprint:
        for prefix in prefs:
            advertisers.setdefault(prefix, []).append(origin)
    info = GraphInfo(
        adjacency=adjacency,
        prefixes=prefixes,
        advertisers={
            prefix: tuple(sorted(origins))
            for prefix, origins in advertisers.items()
        },
        edges=frozenset(edges),
    )
    memo[fingerprint] = info
    if len(memo) > _GRAPH_MEMO_MAX:
        memo.popitem(last=False)
    return info


def classify_transition(
    old_fp: Fingerprint, new_fp: Fingerprint
) -> SpfDelta:
    """Classify the transition between two fingerprints (memoized)."""
    if old_fp == new_fp:
        return SpfDelta(REFRESH)
    memo = _DELTA_MEMO
    key = (old_fp, new_fp)
    delta = memo.get(key)
    if delta is not None:
        memo.move_to_end(key)
        return delta
    old_info = graph_info(old_fp)
    new_info = graph_info(new_fp)
    if old_info.prefixes != new_info.prefixes:
        # origin set or advertised prefixes changed: full recompute
        delta = SpfDelta(STRUCTURAL)
    else:
        diff = old_info.edges ^ new_info.edges
        if not diff:
            delta = SpfDelta(COSMETIC)
        elif len(diff) == 1:
            edge = next(iter(diff))
            kind = LINK_UP if edge in new_info.edges else LINK_DOWN
            delta = SpfDelta(kind, edge)
        else:
            delta = SpfDelta(STRUCTURAL)
    memo[key] = delta
    if len(memo) > _DELTA_MEMO_MAX:
        memo.popitem(last=False)
    return delta


# ------------------------------------------------------------ full state


def full_state(origin: str, lsdb: Lsdb) -> SpfState:
    """From-scratch SPF state (the fallback and the initial computation)."""
    fingerprint = lsdb.fingerprint()
    own = lsdb.get(origin)
    if own is None:
        return SpfState(origin, fingerprint, {}, {}, {})
    dist, first_hops = dijkstra(origin, lsdb)
    routes = aggregate_routes(
        origin, frozenset(own.prefixes), lsdb.all(), dist, first_hops
    )
    return SpfState(origin, fingerprint, dist, first_hops, routes)


# ------------------------------------------------------ incremental core


def _parent_hops(
    origin: str,
    node: str,
    dist_of_node: int,
    adjacency: Dict[str, Tuple[str, ...]],
    dist: DistanceMap,
    first_hops: FirstHopMap,
) -> frozenset:
    """ECMP first hops of ``node`` as the union over its DAG parents.

    Equivalent to the full algorithm's equal-cost merging: every parent
    ``p`` (a neighbor at distance ``dist_of_node - 1``) contributes its
    own first-hop set — or ``{node}`` itself when the parent is the
    origin.  Callers guarantee every parent's entry in ``dist``/
    ``first_hops`` is final when this runs.
    """
    target = dist_of_node - 1
    hops: frozenset = frozenset()
    for peer in adjacency[node]:
        if dist.get(peer) == target:
            if peer == origin:
                hops = hops | frozenset((node,))
            else:
                hops = hops | first_hops[peer]
    return hops


def _patch_routes(
    old_routes: RouteTable,
    origin: str,
    info: GraphInfo,
    changed: List[str],
    dist: DistanceMap,
    first_hops: FirstHopMap,
) -> RouteTable:
    """Re-aggregate only the prefixes advertised by changed nodes.

    A prefix's route depends exclusively on its advertisers' ``(dist,
    first_hops)``; prefixes whose advertisers are all unchanged keep
    their old entry verbatim.
    """
    if not changed:
        return old_routes
    touched: set = set()
    for node in changed:
        touched.update(info.prefixes.get(node, ()))
    if not touched:
        return old_routes
    own = frozenset(info.prefixes.get(origin, ()))
    routes = dict(old_routes)
    for prefix in sorted(touched, key=lambda p: (p.network, p.length)):
        if prefix in own:
            continue
        best_d: Optional[int] = None
        best_hops: frozenset = frozenset()
        for advertiser in info.advertisers[prefix]:
            if advertiser == origin:
                continue
            d = dist.get(advertiser)
            if d is None:
                continue
            hops = first_hops[advertiser]
            if not hops:
                continue
            if best_d is None or d < best_d:
                best_d, best_hops = d, hops
            elif d == best_d:
                best_hops = best_hops | hops
        if best_d is None:
            routes.pop(prefix, None)
        else:
            routes[prefix] = tuple(sorted(best_hops))
    return routes


def _apply_link_down(
    state: SpfState, new_fp: Fingerprint, edge: Edge
) -> Optional[Tuple[SpfState, int]]:
    origin = state.origin
    dist = state.dist
    first_hops = state.first_hops
    a, b = edge
    da = dist.get(a)
    db = dist.get(b)
    if da is None or db is None or da == db:
        # the edge was on no shortest path (equal-distance siblings, or
        # an unreachable endpoint): nothing changes but the fingerprint
        return (
            SpfState(origin, new_fp, dist, first_hops, state.routes),
            0,
        )
    far = a if da > db else b
    # conservative affected region: descendants of the far endpoint in
    # the OLD shortest-path DAG (child = neighbor one level deeper)
    old_adjacency = graph_info(state.fingerprint).adjacency
    affected = {far}
    stack = [far]
    while stack:
        parent = stack.pop()
        child_depth = dist[parent] + 1
        for child in old_adjacency[parent]:
            if child not in affected and dist.get(child) == child_depth:
                affected.add(child)
                stack.append(child)
    if origin in affected:  # pragma: no cover - origin sits at depth 0
        return None
    adjacency = graph_info(new_fp).adjacency
    ndist = dict(dist)
    nfh = dict(first_hops)
    for node in affected:
        ndist.pop(node, None)
        nfh.pop(node, None)
    # boundary-seeded restricted Dijkstra over the region: nodes outside
    # the region are provably unchanged and act as fixed sources
    heap: List[Tuple[int, str]] = []
    for node in sorted(affected):
        best: Optional[int] = None
        for peer in adjacency[node]:
            dp = ndist.get(peer)
            if dp is not None and (best is None or dp + 1 < best):
                best = dp + 1
        if best is not None:
            heap.append((best, node))
    heapq.heapify(heap)
    settled: set = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        ndist[node] = d
        nfh[node] = _parent_hops(origin, node, d, adjacency, ndist, nfh)
        for peer in adjacency[node]:
            if peer in affected and peer not in settled:
                heapq.heappush(heap, (d + 1, peer))
    changed = [
        node for node in sorted(affected)
        if ndist.get(node) != dist.get(node)
        or nfh.get(node) != first_hops.get(node)
    ]
    routes = _patch_routes(
        state.routes, origin, graph_info(new_fp), changed, ndist, nfh
    )
    return SpfState(origin, new_fp, ndist, nfh, routes), len(affected)


def _apply_link_up(
    state: SpfState, new_fp: Fingerprint, edge: Edge
) -> Optional[Tuple[SpfState, int]]:
    origin = state.origin
    dist = state.dist
    first_hops = state.first_hops
    a, b = edge
    da = dist.get(a)
    db = dist.get(b)
    seeds: List[Tuple[int, str]] = []
    if da is not None and (db is None or da + 1 <= db):
        seeds.append((da + 1, b))
    if db is not None and (da is None or db + 1 <= da):
        seeds.append((db + 1, a))
    if not seeds:
        # both endpoints unreachable: the new edge joins two islands
        # that still have no path from the origin
        return (
            SpfState(origin, new_fp, dist, first_hops, state.routes),
            0,
        )
    adjacency = graph_info(new_fp).adjacency
    ndist = dict(dist)
    nfh = dict(first_hops)
    heap = sorted(seeds)
    settled: set = set()
    changed: List[str] = []
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        old_d = ndist.get(node)
        if old_d is not None and old_d < d:
            continue  # stale entry: a better untouched value stands
        settled.add(node)
        hops = _parent_hops(origin, node, d, adjacency, ndist, nfh)
        if old_d == d and hops == nfh.get(node):
            continue  # equal-distance probe found no new hops: prune
        ndist[node] = d
        nfh[node] = hops
        changed.append(node)
        for peer in adjacency[node]:
            if peer in settled:
                continue
            dp = ndist.get(peer)
            candidate = d + 1
            if dp is None or candidate < dp:
                heapq.heappush(heap, (candidate, peer))
            elif candidate == dp:
                # same distance through a changed parent: first hops
                # may gain members even though the distance stands
                heapq.heappush(heap, (dp, peer))
    changed.sort()
    routes = _patch_routes(
        state.routes, origin, graph_info(new_fp), changed, ndist, nfh
    )
    return SpfState(origin, new_fp, ndist, nfh, routes), len(settled)


def apply_single_edge(
    state: SpfState, new_fp: Fingerprint, delta: SpfDelta
) -> Optional[Tuple[SpfState, int]]:
    """Patch ``state`` for a single-edge transition to ``new_fp``.

    Returns ``(new_state, touched)`` — ``touched`` is the number of
    nodes whose SPF state was recomputed — or ``None`` when the delta
    cannot be applied incrementally (the caller falls back to full
    SPF; results are identical either way).
    """
    if delta.edge is None or not state.dist:
        return None
    if delta.kind == LINK_DOWN:
        return _apply_link_down(state, new_fp, delta.edge)
    if delta.kind == LINK_UP:
        return _apply_link_up(state, new_fp, delta.edge)
    return None


# ---------------------------------------------------------------- engine


class IncrementalSpfEngine:
    """Per-consumer incremental SPF with deterministic accounting.

    One engine belongs to one consumer (a link-state protocol instance)
    and evolves purely from the sequence of fingerprints that consumer
    feeds it — so the returned :class:`SpfRunReport` (the ``delta``
    trace attribute, the touched counts in ``ProtocolStats``) is
    byte-identical for any worker count or shared-cache temperature.

    ``incremental_enabled`` is the class-level seam the differential
    tests flip to force every computation through the from-scratch
    path; the report's ``delta`` classification is unaffected, so
    traces stay byte-identical with incrementalism disabled.

    Full computations go through the shared
    :class:`~repro.routing.spf_cache.SpfCache`; incrementally patched
    states stay private to the engine (never published), so a corrupted
    engine — the ``spf-incremental-corrupted`` check mutant — cannot
    poison the oracle the convergence-agreement invariant compares
    against.
    """

    #: class-level switch: the force-disable seam for differential tests
    incremental_enabled = True

    # no __slots__: check mutants patch ``_update_state`` per instance

    def __init__(self, origin: str) -> None:
        self.origin = origin
        self._state: Optional[SpfState] = None

    @property
    def state(self) -> Optional[SpfState]:
        """The engine's current SPF state (None before the first run)."""
        return self._state

    def _full_state(self, lsdb: Lsdb) -> SpfState:
        # local import: spf_cache imports this module at load time
        from .spf_cache import shared_spf_cache

        return shared_spf_cache.compute_state(self.origin, lsdb)

    def _update_state(
        self, state: SpfState, new_fp: Fingerprint, delta: SpfDelta
    ) -> Optional[Tuple[SpfState, int]]:
        """The incremental-update seam (instance-patchable by mutants)."""
        return apply_single_edge(state, new_fp, delta)

    def compute(self, lsdb: Lsdb) -> Tuple[RouteTable, SpfRunReport]:
        """Routes for this engine's origin over ``lsdb``, plus a report."""
        fingerprint = lsdb.fingerprint()
        state = self._state
        if state is not None and state.fingerprint == fingerprint:
            return state.routes, SpfRunReport(REFRESH)
        if state is None:
            new_state = self._full_state(lsdb)
            self._state = new_state
            return new_state.routes, SpfRunReport(
                INITIAL, touched=len(new_state.dist)
            )
        delta = classify_transition(state.fingerprint, fingerprint)
        if delta.kind == COSMETIC:
            new_state = SpfState(
                self.origin, fingerprint,
                state.dist, state.first_hops, state.routes,
            )
            self._state = new_state
            return new_state.routes, SpfRunReport(COSMETIC)
        if delta.kind in (LINK_DOWN, LINK_UP) and self.incremental_enabled:
            result = self._update_state(state, fingerprint, delta)
            if result is not None:
                new_state, touched = result
                self._state = new_state
                return new_state.routes, SpfRunReport(
                    delta.kind, delta.edge, touched, incremental=True
                )
        new_state = self._full_state(lsdb)
        self._state = new_state
        return new_state.routes, SpfRunReport(
            delta.kind, delta.edge, touched=len(new_state.dist)
        )


def clear_memos() -> None:
    """Drop the module memos (test isolation; results never depend on
    memo contents, only speed does)."""
    _GRAPH_MEMO.clear()
    _DELTA_MEMO.clear()
