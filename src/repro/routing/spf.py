"""Shortest-path-first computation with ECMP.

Dijkstra over the two-way-connected LSDB graph with unit link costs (the
paper's footnote 4: every DCN link has the same cost).  For every
destination we keep the **set of first hops** across all equal-cost
shortest paths — that set is what ECMP hashes over (§II-A), and its
"eliminate the failed member" behaviour is realised later by the data
plane's live-next-hop pruning.

The computation is split into two composable passes so the incremental
engine (:mod:`repro.routing.spf_incremental`) can reuse each half:

* :func:`dijkstra` — the reachability pass: per-node distance and
  ECMP first-hop set from the origin;
* :func:`aggregate_routes` — the prefix pass: fold advertised prefixes
  over the reachability maps (nearest advertiser wins, equal distances
  merge their next hops).

:func:`compute_routes` is their composition and remains the from-scratch
oracle every cached/incremental path is differentially tested against.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Tuple

from ..net.ip import Prefix
from .lsdb import Lsa, Lsdb

#: destination prefix -> ordered next-hop switch names
RouteTable = Dict[Prefix, Tuple[str, ...]]

#: node -> hop count from the origin (reachable nodes only)
DistanceMap = Dict[str, int]

#: node -> ECMP first-hop set from the origin (empty for the origin)
FirstHopMap = Dict[str, frozenset]


def dijkstra(origin: str, lsdb: Lsdb) -> Tuple[DistanceMap, FirstHopMap]:
    """Unit-cost Dijkstra over the two-way graph, tracking ECMP first hops.

    Returns ``(dist, first_hops)`` over every node reachable from
    ``origin`` (including the origin itself, at distance 0 with an empty
    first-hop set).  The maps are exactly the per-node state the
    incremental engine snapshots and patches.
    """
    dist: DistanceMap = {origin: 0}
    first_hops: FirstHopMap = {origin: frozenset()}
    heap: list[tuple[int, str]] = [(0, origin)]
    visited: set[str] = set()

    while heap:
        d, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        for v in lsdb.two_way_neighbors(u):
            nd = d + 1
            if u == origin:
                hops: frozenset = frozenset((v,))
            else:
                hops = first_hops[u]
            known = dist.get(v)
            if known is None or nd < known:
                dist[v] = nd
                first_hops[v] = hops
                heapq.heappush(heap, (nd, v))
            elif nd == known:
                merged = first_hops[v] | hops
                if merged != first_hops[v]:
                    first_hops[v] = merged
                    # same distance: no need to re-push, neighbours of v will
                    # re-read first_hops[v] only if v is not yet visited
                    if v not in visited:
                        heapq.heappush(heap, (nd, v))

    return dist, first_hops


def aggregate_routes(
    origin: str,
    own_prefixes: frozenset,
    advertisements: Iterable[Lsa],
    dist: DistanceMap,
    first_hops: FirstHopMap,
) -> RouteTable:
    """Fold advertised prefixes over the reachability maps.

    Prefixes advertised by ``origin`` itself are excluded (they are
    connected, not routed).  When several routers advertise the same
    prefix (anycast-style), the nearest wins and equal distances merge
    their next hops.
    """
    best: Dict[Prefix, tuple[int, frozenset]] = {}
    for lsa in advertisements:
        if lsa.origin == origin or lsa.origin not in dist:
            continue
        d = dist[lsa.origin]
        hops = first_hops[lsa.origin]
        if not hops:
            continue
        for prefix in lsa.prefixes:
            if prefix in own_prefixes:
                continue
            current = best.get(prefix)
            if current is None or d < current[0]:
                best[prefix] = (d, hops)
            elif d == current[0]:
                best[prefix] = (d, current[1] | hops)

    return {prefix: tuple(sorted(hops)) for prefix, (d, hops) in best.items()}


def compute_routes(origin: str, lsdb: Lsdb) -> RouteTable:
    """All-prefix ECMP routes from ``origin``'s point of view.

    The from-scratch oracle: a full :func:`dijkstra` pass followed by
    :func:`aggregate_routes` over every LSA.
    """
    own = lsdb.get(origin)
    if own is None:
        return {}
    dist, first_hops = dijkstra(origin, lsdb)
    return aggregate_routes(
        origin, frozenset(own.prefixes), lsdb.all(), dist, first_hops
    )
