"""Shortest-path-first computation with ECMP.

Dijkstra over the two-way-connected LSDB graph with unit link costs (the
paper's footnote 4: every DCN link has the same cost).  For every
destination we keep the **set of first hops** across all equal-cost
shortest paths — that set is what ECMP hashes over (§II-A), and its
"eliminate the failed member" behaviour is realised later by the data
plane's live-next-hop pruning.
"""

from __future__ import annotations

import heapq
from typing import Dict, Tuple

from ..net.ip import Prefix
from .lsdb import Lsdb

#: destination prefix -> ordered next-hop switch names
RouteTable = Dict[Prefix, Tuple[str, ...]]


def compute_routes(origin: str, lsdb: Lsdb) -> RouteTable:
    """All-prefix ECMP routes from ``origin``'s point of view.

    Prefixes advertised by ``origin`` itself are excluded (they are
    connected, not routed).  When several routers advertise the same prefix
    (anycast-style), the nearest wins and equal distances merge their next
    hops.
    """
    own = lsdb.get(origin)
    if own is None:
        return {}

    dist: Dict[str, int] = {origin: 0}
    first_hops: Dict[str, frozenset] = {origin: frozenset()}
    heap: list[tuple[int, str]] = [(0, origin)]
    visited: set[str] = set()

    while heap:
        d, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        for v in lsdb.two_way_neighbors(u):
            nd = d + 1
            if u == origin:
                hops: frozenset = frozenset((v,))
            else:
                hops = first_hops[u]
            known = dist.get(v)
            if known is None or nd < known:
                dist[v] = nd
                first_hops[v] = hops
                heapq.heappush(heap, (nd, v))
            elif nd == known:
                merged = first_hops[v] | hops
                if merged != first_hops[v]:
                    first_hops[v] = merged
                    # same distance: no need to re-push, neighbours of v will
                    # re-read first_hops[v] only if v is not yet visited
                    if v not in visited:
                        heapq.heappush(heap, (nd, v))

    own_prefixes = set(own.prefixes)
    best: Dict[Prefix, tuple[int, frozenset]] = {}
    for lsa in lsdb.all():
        if lsa.origin == origin or lsa.origin not in dist:
            continue
        d = dist[lsa.origin]
        hops = first_hops[lsa.origin]
        if not hops:
            continue
        for prefix in lsa.prefixes:
            if prefix in own_prefixes:
                continue
            current = best.get(prefix)
            if current is None or d < current[0]:
                best[prefix] = (d, hops)
            elif d == current[0]:
                best[prefix] = (d, current[1] | hops)

    return {prefix: tuple(sorted(hops)) for prefix, (d, hops) in best.items()}
