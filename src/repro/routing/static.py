"""Static routes — the entirety of F²Tree's configuration change.

A static route is installed straight into the FIB at configuration time and
never withdrawn; because F²Tree's backup routes use *shorter* prefixes than
anything the routing protocol produces, they coexist with protocol routes
and only ever match after every longer prefix has failed its live-next-hop
check.  They are deliberately **not redistributed** into the protocol
(paper §II-B) — each is meaningful only at the switch it is configured on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..net.fib import FibEntry
from ..net.ip import Prefix
from ..dataplane.node import SwitchNode

#: FIB entry source tag for static routes.
SOURCE = "static"


@dataclass(frozen=True)
class StaticRoute:
    """One ``ip route <prefix> <next-hop>`` line of switch configuration."""

    prefix: Prefix
    next_hop: str  # neighbor switch name

    def __str__(self) -> str:
        return f"ip route {self.prefix} via {self.next_hop}"


class StaticRouteConflict(Exception):
    """Raised when a static route collides with an existing FIB prefix."""


def install_static_routes(switch: SwitchNode, routes: Iterable[StaticRoute]) -> None:
    """Install static routes on a switch.

    Collisions with existing entries for the same prefix are refused: the
    F²Tree design relies on the backup prefixes being unique in the FIB,
    and silently replacing a protocol route would mask a mis-configuration.
    """
    for route in routes:
        existing = switch.fib.exact(route.prefix)
        if existing is not None and existing.source != SOURCE:
            raise StaticRouteConflict(
                f"{switch.name}: static route {route} collides with "
                f"{existing.source} entry"
            )
        switch.fib.install(
            FibEntry(route.prefix, (route.next_hop,), source=SOURCE)
        )


def static_routes_of(switch: SwitchNode) -> Sequence[FibEntry]:
    """The static entries currently installed on a switch."""
    return [e for e in switch.fib.entries() if e.source == SOURCE]
