"""Memoized + incremental SPF: the biggest repeated computation here.

:func:`repro.routing.spf.compute_routes` is a pure function of the
two-way neighbor graph plus advertised prefixes — LSA sequence numbers
never influence the result.  :meth:`repro.routing.lsdb.Lsdb.fingerprint`
digests exactly that routing-relevant content, so ``(origin,
fingerprint)`` is a sound cache key: equal keys provably yield equal
route tables.

The cache stores the full :class:`~repro.routing.spf_incremental.
SpfState` (distances + ECMP first hops + routes), not just the route
table, and that makes misses cheap too: when an origin's previous state
is still resident and the fingerprint transition is a single link
up/down, the new state is **patched incrementally** from the old one
instead of recomputed from scratch (see :mod:`repro.routing.
spf_incremental`; falls back to a full Dijkstra on structural changes).
Under a failure storm — the paper's motivating regime — nearly every
transition is a single-edge delta, so the per-switch SPF cost drops from
O(V log V + E) to the size of the affected subtree.

Three subsystems repeat identical SPF work and share this cache:

* the distributed protocol (:mod:`repro.routing.linkstate`) — via its
  per-instance :class:`~repro.routing.spf_incremental.
  IncrementalSpfEngine`, whose *full* computations land here;
* the static verifier (:mod:`repro.verify`) — enumerating 16k+ failure
  sets, many of which collapse to the same surviving graph;
* the convergence-agreement invariant (:mod:`repro.check.invariants`) —
  the centralized oracle recomputes every switch's table after every
  topology event.

Determinism is unaffected by construction: a hit returns a dict *equal*
to what :func:`compute_routes` would return (callers treat route tables
as read-only — the protocol copies before exposing them), and an
incremental patch is differentially pinned equal to the from-scratch
result by ``tests/test_spf_incremental.py``.  Eviction is LRU over a
deterministic access sequence, hence itself deterministic.  The cache is
per-process; campaign workers warm it across the trials of their chunk,
and the 1-vs-N-worker byte-identity tests pin that sharing changes
nothing observable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set, Tuple

from .lsdb import Lsdb
from .spf import RouteTable
from .spf_incremental import (
    LINK_DOWN,
    LINK_UP,
    Fingerprint,
    SpfState,
    apply_single_edge,
    classify_transition,
    full_state,
)

#: default bound: a 40-switch grid trial needs ~40 entries per distinct
#: surviving graph; 4096 comfortably covers a verifier enumeration sweep
_MAX_ENTRIES = 4096

_Key = Tuple[str, tuple]


class SpfCacheStats:
    """Deterministic *logical* hit/miss accounting for one consumer.

    The shared cache's physical ``hits``/``misses`` depend on process
    history — which other trials warmed it in the same worker — so they
    can never appear in byte-identical campaign reports.  A stats object
    counts logical reuse instead: a key is a hit iff **this consumer**
    has asked for it before, which is a pure function of the consumer's
    own request sequence and therefore identical for any worker count.
    Physical counters remain on :class:`SpfCache` for the (single
    process) bench harness.
    """

    __slots__ = ("hits", "misses", "_seen")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._seen: Set[_Key] = set()

    def note(self, key: _Key) -> bool:
        """Record one request; True iff it was a (logical) repeat."""
        if key in self._seen:
            self.hits += 1
            return True
        self._seen.add(key)
        self.misses += 1
        return False


class SpfCache:
    """A bounded LRU memo for SPF states, incremental on single-edge misses."""

    def __init__(self, max_entries: int = _MAX_ENTRIES) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._store: "OrderedDict[_Key, SpfState]" = OrderedDict()
        #: origin -> fingerprint of that origin's most recent state, the
        #: incremental-patch candidate on the next miss for the origin
        self._latest: Dict[str, Fingerprint] = {}
        #: when False every miss takes the from-scratch path (the bench
        #: harness and the differential tests flip this)
        self.incremental = True
        #: lifetime counters (observability + the bench harness)
        self.hits = 0
        self.misses = 0
        self.incremental_updates = 0
        self.full_computes = 0

    def __len__(self) -> int:
        return len(self._store)

    def _miss(self, origin: str, lsdb: Lsdb, fingerprint: tuple) -> SpfState:
        if self.incremental:
            previous = self._previous_state(origin)
            if previous is not None:
                delta = classify_transition(previous.fingerprint, fingerprint)
                if delta.kind in (LINK_DOWN, LINK_UP):
                    patched = apply_single_edge(previous, fingerprint, delta)
                    if patched is not None:
                        self.incremental_updates += 1
                        return patched[0]
        self.full_computes += 1
        return full_state(origin, lsdb)

    def _previous_state(self, origin: str) -> Optional[SpfState]:
        latest = self._latest.get(origin)
        if latest is None:
            return None
        return self._store.get((origin, latest))

    def compute_state(self, origin: str, lsdb: Lsdb) -> SpfState:
        """The full SPF state for ``(origin, lsdb)``, memoized.

        The returned state is shared between callers and immutable by
        convention.  Consumers that need deterministic accounting keep
        their own :class:`SpfCacheStats` and call :meth:`~SpfCacheStats.
        note` *before* this — never through it, so swapping the cache
        out (the fastpath differential tests do) cannot change what any
        consumer reports.
        """
        fingerprint = lsdb.fingerprint()
        key = (origin, fingerprint)
        store = self._store
        state = store.get(key)
        if state is not None:
            store.move_to_end(key)
            self.hits += 1
            self._latest[origin] = fingerprint
            return state
        self.misses += 1
        state = self._miss(origin, lsdb, fingerprint)
        store[key] = state
        self._latest[origin] = fingerprint
        if len(store) > self._max_entries:
            evicted_key, _ = store.popitem(last=False)
            if self._latest.get(evicted_key[0]) == evicted_key[1]:
                del self._latest[evicted_key[0]]
        return state

    def compute(self, origin: str, lsdb: Lsdb) -> RouteTable:
        """``compute_routes(origin, lsdb)``, memoized + incremental."""
        return self.compute_state(origin, lsdb).routes

    def clear(self) -> None:
        self._store.clear()
        self._latest.clear()


#: the process-wide shared instance (protocol, verifier, and checker all
#: benefit from each other's warm entries)
shared_spf_cache = SpfCache()


def compute_routes_cached(origin: str, lsdb: Lsdb) -> RouteTable:
    """Drop-in memoized :func:`~repro.routing.spf.compute_routes` over
    the shared cache."""
    return shared_spf_cache.compute(origin, lsdb)
