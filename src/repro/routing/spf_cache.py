"""Memoized SPF: the single biggest repeated computation in the repo.

:func:`repro.routing.spf.compute_routes` is a pure function of the
two-way neighbor graph plus advertised prefixes — LSA sequence numbers
never influence the result.  :meth:`repro.routing.lsdb.Lsdb.fingerprint`
digests exactly that routing-relevant content, so ``(origin,
fingerprint)`` is a sound cache key: equal keys provably yield equal
route tables.

Three subsystems repeat identical SPF work and share this cache:

* the distributed protocol (:mod:`repro.routing.linkstate`) — under a
  failure storm every switch reruns SPF on seq-only LSA refreshes whose
  fingerprints are unchanged;
* the static verifier (:mod:`repro.verify`) — enumerating 16k+ failure
  sets, many of which collapse to the same surviving graph;
* the convergence-agreement invariant (:mod:`repro.check.invariants`) —
  the centralized oracle recomputes every switch's table after every
  topology event.

Determinism is unaffected by construction: a hit returns a dict *equal*
to what :func:`compute_routes` would return (callers treat route tables
as read-only — the protocol copies before exposing them).  Eviction is
LRU over a deterministic access sequence, hence itself deterministic.
The cache is per-process; campaign workers warm it across the trials of
their chunk, and the 1-vs-N-worker byte-identity tests pin that sharing
changes nothing observable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Set, Tuple

from .lsdb import Lsdb
from .spf import RouteTable, compute_routes

#: default bound: a 40-switch grid trial needs ~40 entries per distinct
#: surviving graph; 4096 comfortably covers a verifier enumeration sweep
_MAX_ENTRIES = 4096

_Key = Tuple[str, tuple]


class SpfCacheStats:
    """Deterministic *logical* hit/miss accounting for one consumer.

    The shared cache's physical ``hits``/``misses`` depend on process
    history — which other trials warmed it in the same worker — so they
    can never appear in byte-identical campaign reports.  A stats object
    counts logical reuse instead: a key is a hit iff **this consumer**
    has asked for it before, which is a pure function of the consumer's
    own request sequence and therefore identical for any worker count.
    Physical counters remain on :class:`SpfCache` for the (single
    process) bench harness.
    """

    __slots__ = ("hits", "misses", "_seen")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._seen: Set[_Key] = set()

    def note(self, key: _Key) -> bool:
        """Record one request; True iff it was a (logical) repeat."""
        if key in self._seen:
            self.hits += 1
            return True
        self._seen.add(key)
        self.misses += 1
        return False


class SpfCache:
    """A bounded LRU memo for :func:`compute_routes`."""

    def __init__(self, max_entries: int = _MAX_ENTRIES) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._store: "OrderedDict[_Key, RouteTable]" = OrderedDict()
        #: lifetime counters (observability + the bench harness)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def compute(self, origin: str, lsdb: Lsdb) -> RouteTable:
        """``compute_routes(origin, lsdb)``, memoized.

        The returned table is shared between callers and must be treated
        as read-only.  Consumers that need deterministic accounting keep
        their own :class:`SpfCacheStats` and call :meth:`~SpfCacheStats.
        note` *before* this — never through it, so swapping the cache
        out (the fastpath differential tests do) cannot change what any
        consumer reports.
        """
        key = (origin, lsdb.fingerprint())
        store = self._store
        routes = store.get(key)
        if routes is not None:
            store.move_to_end(key)
            self.hits += 1
            return routes
        self.misses += 1
        routes = compute_routes(origin, lsdb)
        store[key] = routes
        if len(store) > self._max_entries:
            store.popitem(last=False)
        return routes

    def clear(self) -> None:
        self._store.clear()


#: the process-wide shared instance (protocol, verifier, and checker all
#: benefit from each other's warm entries)
shared_spf_cache = SpfCache()


def compute_routes_cached(origin: str, lsdb: Lsdb) -> RouteTable:
    """Drop-in memoized :func:`compute_routes` over the shared cache."""
    return shared_spf_cache.compute(origin, lsdb)
