"""Control planes: link-state (OSPF stand-in), path-vector (BGP stand-in),
centralized (SDN stand-in), plus SPF and static routes."""

from .centralized import (
    CentralizedAgent,
    CentralizedController,
    ControllerParams,
    ControllerStats,
    deploy_centralized,
)
from .linkstate import LinkStateProtocol, ProtocolStats, deploy_linkstate
from .lsdb import Lsa, Lsdb
from .pathvector import (
    PathVectorParams,
    PathVectorProtocol,
    PathVectorStats,
    deploy_pathvector,
)
from .spf import RouteTable, compute_routes
from .static import (
    StaticRoute,
    StaticRouteConflict,
    install_static_routes,
    static_routes_of,
)

__all__ = [
    "CentralizedAgent",
    "CentralizedController",
    "ControllerParams",
    "ControllerStats",
    "deploy_centralized",
    "LinkStateProtocol",
    "ProtocolStats",
    "deploy_linkstate",
    "Lsa",
    "Lsdb",
    "PathVectorParams",
    "PathVectorProtocol",
    "PathVectorStats",
    "deploy_pathvector",
    "RouteTable",
    "compute_routes",
    "StaticRoute",
    "StaticRouteConflict",
    "install_static_routes",
    "static_routes_of",
]
