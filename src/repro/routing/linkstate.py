"""The distributed link-state routing protocol (OSPF stand-in).

This is the reproduction's substitute for Quagga OSPF.  It reproduces the
exact sources of delay the paper decomposes (§I, §III):

1. **failure detection** (~60 ms) — owned by the data plane's detectors;
   this agent only hears about it via :meth:`on_neighbor_change`;
2. **LSA origination and flooding** — real control packets over the live
   links, a per-hop processing delay, sequence-numbered freshness, two-way
   check in SPF;
3. **throttled SPF** — Quagga-style ``timers throttle spf 200 1000 10000``:
   the first computation after a quiet period waits ``spf_initial_delay``;
   consecutive computations are separated by a hold time that doubles under
   churn up to ``spf_hold_max`` — the mechanism behind the paper's observed
   ~9 s timers during failure storms (§IV-B);
4. **FIB update delay** (~10 ms) — routes computed by SPF only take effect
   in the data plane after ``fib_update_delay``.

F²Tree's point is precisely that its static backup routes bypass steps
2 - 4 entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # runtime import would be circular
    from ..dataplane.network import Network

from ..net.fib import FibDelta, FibEntry
from ..net.ip import Prefix
from ..net.packet import Packet
from ..obs.trace import (
    EV_FIB_INSTALL,
    EV_LSA_ACCEPT,
    EV_LSA_ORIGINATE,
    EV_SPF_RUN,
    EV_SPF_SCHEDULE,
)
from ..sim.engine import Simulator, Timer
from ..sim.units import MILLISECOND, Time
from ..dataplane.node import SwitchNode
from ..dataplane.params import NetworkParams
from .lsdb import Lsa, Lsdb
from .spf import RouteTable
from .spf_cache import SpfCacheStats
from .spf_incremental import IncrementalSpfEngine

#: FIB entry source tag for routes installed by this protocol.
SOURCE = "linkstate"

#: bound on the per-prefix change list attached to ``fib.install`` trace
#: events (feeds the per-prefix ``fib_delta`` spans); anything beyond is
#: summarised in ``changes_truncated``
MAX_TRACED_FIB_CHANGES = 16


@dataclass
class ProtocolStats:
    """Observability counters (used heavily by tests and EXPERIMENTS.md)."""

    lsas_originated: int = 0
    lsas_flooded: int = 0
    lsas_accepted: int = 0
    spf_runs: int = 0
    #: SPF runs answered by patching the previous tree (subset of spf_runs)
    spf_incremental_runs: int = 0
    #: SPF runs that executed (or fetched) a from-scratch computation
    spf_full_runs: int = 0
    #: nodes recomputed across all incremental runs (region sizes)
    spf_nodes_touched: int = 0
    fib_installs: int = 0
    #: hold values at each SPF completion — shows the exponential backoff
    hold_history: List[Time] = field(default_factory=list)


class LinkStateProtocol:
    """One router's protocol instance (a `RoutingAgent` for its switch)."""

    def __init__(
        self,
        sim: Simulator,
        switch: SwitchNode,
        params: NetworkParams,
        switch_neighbors: Sequence[str],
        advertised: Sequence[Prefix] = (),
    ) -> None:
        self.sim = sim
        self.switch = switch
        self.params = params
        self._obs = sim.obs
        self.name = switch.name
        #: neighbors participating in the protocol (hosts never do)
        self._protocol_neighbors: Set[str] = set(switch_neighbors)
        self._advertised: Tuple[Prefix, ...] = tuple(advertised)
        self.lsdb = Lsdb()
        self.stats = ProtocolStats()
        #: logical (deterministic, per-instance) SPF cache accounting
        self.spf_cache_stats = SpfCacheStats()
        #: per-instance incremental SPF (full computations hit the shared
        #: cache; single-edge LSDB deltas patch the previous tree in place)
        self._spf_engine = IncrementalSpfEngine(self.name)
        self._seq = 0
        # SPF throttle state
        self._spf_timer = Timer(sim, self._run_spf)
        self._hold_current: Time = params.spf_hold
        self._hold_expiry: Time = 0
        # FIB state
        self._installed: Dict[Prefix, FibEntry] = {}
        self._pending_routes: Optional[RouteTable] = None
        self._install_timer = Timer(sim, self._install_pending)
        self._last_spf_at: Optional[Time] = None
        switch.routing_agent = self

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Originate the initial LSA and begin flooding."""
        self._originate()

    def _live_protocol_neighbors(self) -> List[str]:
        return sorted(
            peer
            for peer in self._protocol_neighbors
            if self.switch.neighbor_alive(peer)
        )

    def _originate(self) -> None:
        self._seq += 1
        lsa = Lsa(
            origin=self.name,
            seq=self._seq,
            neighbors=tuple(self._live_protocol_neighbors()),
            prefixes=self._advertised,
        )
        self.stats.lsas_originated += 1
        obs = self._obs
        obs.metrics.counter("lsa.originated").inc()
        obs.trace.emit(
            self.sim.now, EV_LSA_ORIGINATE, self.name,
            seq=self._seq, neighbors=len(lsa.neighbors),
        )
        self.lsdb.insert(lsa)
        self._flood([lsa], exclude=None)
        self._schedule_spf()

    # ------------------------------------------------------------- flooding

    def _flood(self, lsas: List[Lsa], exclude: Optional[str]) -> None:
        for peer in self._live_protocol_neighbors():
            if peer == exclude:
                continue
            self.stats.lsas_flooded += len(lsas)
            self._obs.metrics.counter("lsa.flooded").inc(len(lsas))
            self.switch.send_control(
                peer, payload=tuple(lsas), size_bytes=self.params.lsa_size_bytes
            )

    def on_control_packet(self, packet: Packet, sender: str) -> None:
        """Receive a batch of flooded LSAs (after a processing delay)."""
        lsas = packet.payload
        self.sim.schedule(
            self.params.lsa_processing_delay, self._process_lsas, lsas, sender
        )

    def _process_lsas(self, lsas: Tuple[Lsa, ...], sender: str) -> None:
        accepted: List[Lsa] = []
        for lsa in lsas:
            if self.lsdb.insert(lsa):
                accepted.append(lsa)
        if not accepted:
            return
        self.stats.lsas_accepted += len(accepted)
        obs = self._obs
        obs.metrics.counter("lsa.accepted").inc(len(accepted))
        obs.trace.emit(
            self.sim.now, EV_LSA_ACCEPT, self.name,
            count=len(accepted), sender=sender,
        )
        self._flood(accepted, exclude=sender)
        self._schedule_spf()

    # ----------------------------------------------------------- detection

    def on_neighbor_change(self, peer: str, up: bool) -> None:
        """Adjacency change reported by the switch's failure detection."""
        if peer not in self._protocol_neighbors:
            return  # a host link; not part of the routing protocol
        if up:
            # database synchronisation with the revived neighbor, so that a
            # healed partition learns the other side's state
            everything = list(self.lsdb.all())
            if everything:
                self.switch.send_control(
                    peer,
                    payload=tuple(everything),
                    size_bytes=self.params.lsa_size_bytes * max(1, len(everything)),
                )
        self._originate()

    # -------------------------------------------------------- SPF throttle

    def _schedule_spf(self) -> None:
        """Quagga-style SPF throttling (see module docstring)."""
        if self._spf_timer.armed:
            return  # the scheduled run will see this change
        now = self.sim.now
        if now >= self._hold_expiry:
            # quiet period: reset the backoff, apply the initial delay
            self._hold_current = self.params.spf_hold
            delay = self.params.spf_initial_delay
        else:
            delay = self._hold_expiry - now
            self._hold_current = min(
                2 * self._hold_current, self.params.spf_hold_max
            )
        self._obs.trace.emit(
            self.sim.now, EV_SPF_SCHEDULE, self.name,
            delay=delay, hold=self._hold_current,
        )
        self._spf_timer.start(delay)

    def _run_spf(self) -> None:
        self.stats.spf_runs += 1
        self.stats.hold_history.append(self._hold_current)
        obs = self._obs
        obs.metrics.counter("spf.runs").inc()
        obs.metrics.histogram("spf.hold_ms").observe(
            self._hold_current / MILLISECOND
        )
        self._last_spf_at = self.sim.now
        self._hold_expiry = self.sim.now + self._hold_current
        # memoized: seq-only LSA refreshes under a failure storm hit the
        # shared cache (the fingerprint ignores sequence numbers); the
        # per-instance stats count *logical* reuse — noted here, outside
        # the cache, so it is deterministic regardless of how warm the
        # shared cache happens to be (or whether it has been swapped out)
        cached = self.spf_cache_stats.note(
            (self.name, self.lsdb.fingerprint())
        )
        routes, report = self._spf_engine.compute(self.lsdb)
        self._pending_routes = routes
        if report.incremental:
            self.stats.spf_incremental_runs += 1
            self.stats.spf_nodes_touched += report.touched
            obs.metrics.counter("spf.incremental.runs").inc()
            obs.metrics.counter("spf.incremental.touched").inc(report.touched)
        else:
            self.stats.spf_full_runs += 1
        obs.metrics.counter(
            "spf.cache.hits" if cached else "spf.cache.misses"
        ).inc()
        # the traced delta is the *logical* transition classification — a
        # pure function of this instance's fingerprint sequence, identical
        # whether the incremental path executed or was force-disabled, so
        # traces stay byte-identical either way (touched counts are
        # execution detail and live in stats/metrics only)
        obs.trace.emit(
            self.sim.now, EV_SPF_RUN, self.name,
            hold=self._hold_current, cached=cached, delta=report.delta,
        )
        self._install_timer.start(self.params.fib_update_delay)

    def _install_pending(self) -> None:
        """FIB download: apply the computed delta against the old download.

        The new route table is diffed against the previous install and
        only the difference touches the FIB — one
        :meth:`~repro.net.fib.Fib.apply_delta` batch, one generation
        bump.  The delta is built in sorted-prefix order so the trace's
        ``changes`` list (and therefore the whole obs trace) is a pure
        function of the route tables, independent of whichever code path
        (full or incremental SPF) produced their dict ordering.
        """
        routes = self._pending_routes
        if routes is None:
            return
        self._pending_routes = None
        self.stats.fib_installs += 1
        obs = self._obs
        fib = self.switch.fib
        withdrawals = tuple(sorted(
            prefix for prefix in self._installed if prefix not in routes
        ))
        replaced: Set[Prefix] = set()
        installs: List[FibEntry] = []
        for prefix in sorted(routes):
            next_hops = routes[prefix]
            current = self._installed.get(prefix)
            if current is not None:
                if current.next_hops == next_hops:
                    continue
                replaced.add(prefix)
            installs.append(FibEntry(prefix, next_hops, source=SOURCE))
        fib.apply_delta(FibDelta(tuple(installs), withdrawals))
        for prefix in withdrawals:
            del self._installed[prefix]
        for entry in installs:
            self._installed[entry.prefix] = entry
        withdrawn = len(withdrawals)
        installed = len(installs)
        # per-prefix change names feed the trace's fib_delta spans; only
        # collected while tracing is on (the list build is pure overhead
        # otherwise)
        changes: Optional[List[str]] = None
        if obs.enabled:
            changes = [f"-{prefix}" for prefix in withdrawals]
            changes.extend(
                f"~{e.prefix}" if e.prefix in replaced else f"+{e.prefix}"
                for e in installs
            )
        obs.metrics.counter("fib.installs").inc()
        if self._last_spf_at is not None:
            obs.metrics.histogram("fib.install_latency_ms").observe(
                (self.sim.now - self._last_spf_at) / MILLISECOND
            )
        detail: Dict[str, object] = {}
        if changes is not None:
            detail["changes"] = changes[:MAX_TRACED_FIB_CHANGES]
            detail["changes_truncated"] = max(
                0, len(changes) - MAX_TRACED_FIB_CHANGES
            )
        obs.trace.emit(
            self.sim.now, EV_FIB_INSTALL, self.name,
            installed=installed, withdrawn=withdrawn,
            changed=installed + withdrawn, **detail,
        )

    # ------------------------------------------------------------- queries

    @property
    def routes(self) -> Dict[Prefix, FibEntry]:
        """Routes currently installed in the FIB by this protocol."""
        return dict(self._installed)

    @property
    def protocol_neighbors(self) -> frozenset:
        """Switch peers this instance speaks the protocol with (hosts
        excluded); alive or not — liveness is the caller's concern."""
        return frozenset(self._protocol_neighbors)

    @property
    def advertised(self) -> Tuple[Prefix, ...]:
        """The prefixes this router originates into the LSDB."""
        return self._advertised


def deploy_linkstate(
    network: "Network", advertise_loopbacks: bool = True
) -> Dict[str, LinkStateProtocol]:
    """Install a protocol instance on every switch of a network.

    ToRs/leaves advertise their host subnet (the paper's "each ToR will
    redistribute the subnet address containing hosts below into OSPF");
    optionally every switch advertises its /32 loopback.
    Returns the per-switch instances; call :meth:`LinkStateProtocol.start`
    happens here at construction order, which is fine because flooding is
    event-driven.
    """
    from ..dataplane.network import Network  # local import to avoid a cycle

    assert isinstance(network, Network)
    instances: Dict[str, LinkStateProtocol] = {}
    for switch in network.switches():
        spec = switch.spec
        advertised: List[Prefix] = []
        if spec.subnet is not None:
            advertised.append(spec.subnet)
        if advertise_loopbacks:
            advertised.append(Prefix(switch.ip, 32))
        switch_neighbors = [
            peer
            for peer in switch.links_by_peer
            if isinstance(network.nodes[peer], SwitchNode)
        ]
        instances[switch.name] = LinkStateProtocol(
            network.sim,
            switch,
            network.params,
            switch_neighbors=switch_neighbors,
            advertised=advertised,
        )
    for protocol in instances.values():
        protocol.start()
    return instances
