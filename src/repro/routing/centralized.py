"""Centralized routing (§V, "Centralized Routing DCNs").

The paper argues F²Tree also helps SDN-style fabrics (PortLand [26]): when
a failure happens, the detecting switch must report it to a controller,
the controller recomputes routes from global state, and new tables are
pushed to every affected switch — a round trip plus computation that grows
with scale, during which packets black-hole.  F²Tree's pre-installed
backup routes cover exactly that window.

This module implements that control plane:

* :class:`CentralizedController` — holds the global link-state view,
  recomputes all switches' routes on a change (with a batching delay and a
  computation cost), and pushes table updates;
* :class:`CentralizedAgent` — the per-switch resident: reports adjacency
  changes upward, installs pushed tables after the FIB download delay.

Control messages use an out-of-band management channel with configurable
one-way latencies (the paper's "one message from the switch ... and one
message from the controller to each affected switch"); in-band signalling
would only make the plain fabric look worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # runtime import would be circular
    from ..dataplane.network import Network

from ..dataplane.node import SwitchNode
from ..dataplane.params import NetworkParams
from ..net.fib import FibDelta, FibEntry
from ..net.ip import Prefix
from ..net.packet import Packet
from ..sim.engine import Simulator, Timer
from ..sim.units import Time, milliseconds
from .lsdb import Lsa, Lsdb
from .spf import RouteTable
from .spf_cache import compute_routes_cached

#: FIB entry source tag for controller-installed routes.
SOURCE = "centralized"


@dataclass(frozen=True)
class ControllerParams:
    """Timing of the centralized control loop."""

    #: one-way switch -> controller report latency (management network)
    report_latency: Time = milliseconds(2)
    #: one-way controller -> switch table-push latency
    push_latency: Time = milliseconds(2)
    #: batching window: reports arriving within it share one recomputation
    batching_delay: Time = milliseconds(10)
    #: global route recomputation cost
    computation_delay: Time = milliseconds(20)


@dataclass
class ControllerStats:
    """Observability counters."""

    reports_received: int = 0
    recomputations: int = 0
    pushes_sent: int = 0


class CentralizedController:
    """The global route computer."""

    def __init__(
        self,
        sim: Simulator,
        params: NetworkParams,
        control: Optional[ControllerParams] = None,
    ) -> None:
        self.sim = sim
        self.params = params
        self.control = control or ControllerParams()
        self.stats = ControllerStats()
        self._agents: Dict[str, "CentralizedAgent"] = {}
        #: the controller's believed adjacency: switch -> set of neighbors
        self._adjacency: Dict[str, Set[str]] = {}
        #: prefixes attached to each switch
        self._attached: Dict[str, Tuple[Prefix, ...]] = {}
        self._recompute_timer = Timer(sim, self._recompute)
        self._dirty = False

    # ------------------------------------------------------------ topology

    def register(self, agent: "CentralizedAgent", neighbors: Sequence[str],
                 attached: Sequence[Prefix]) -> None:
        self._agents[agent.name] = agent
        self._adjacency[agent.name] = set(neighbors)
        self._attached[agent.name] = tuple(attached)

    def bootstrap(self) -> None:
        """Compute and push the initial tables for every switch."""
        self._push_all(self._compute_tables())

    # ------------------------------------------------------------- reports

    def receive_report(self, reporter: str, peer: str, up: bool) -> None:
        """A failure/recovery report has arrived (already delayed by the
        management-network latency)."""
        self.stats.reports_received += 1
        if up:
            self._adjacency[reporter].add(peer)
        else:
            self._adjacency[reporter].discard(peer)
        self._dirty = True
        if not self._recompute_timer.armed:
            self._recompute_timer.start(self.control.batching_delay)

    # ----------------------------------------------------------- computing

    def _global_lsdb(self) -> Lsdb:
        db = Lsdb()
        for name, neighbors in self._adjacency.items():
            db.insert(
                Lsa(
                    origin=name,
                    seq=1,
                    neighbors=tuple(sorted(neighbors)),
                    prefixes=self._attached.get(name, ()),
                )
            )
        return db

    def _compute_tables(self) -> Dict[str, RouteTable]:
        db = self._global_lsdb()
        # memoized: repeated recomputations over an unchanged detected
        # graph (report churn that cancels out) reuse the shared cache
        return {name: compute_routes_cached(name, db) for name in self._agents}

    def _recompute(self) -> None:
        if not self._dirty:
            return
        self._dirty = False
        self.stats.recomputations += 1
        # tables become available after the computation cost, then pushed
        self.sim.schedule(
            self.control.computation_delay, self._push_computed
        )

    def _push_computed(self) -> None:
        self._push_all(self._compute_tables())
        # reports that arrived mid-computation trigger another round
        if self._dirty and not self._recompute_timer.armed:
            self._recompute_timer.start(self.control.batching_delay)

    def _push_all(self, tables: Dict[str, RouteTable]) -> None:
        for name, table in tables.items():
            agent = self._agents[name]
            if agent.would_change(table):
                self.stats.pushes_sent += 1
                self.sim.schedule(
                    self.control.push_latency, agent.receive_table, table
                )


class CentralizedAgent:
    """Per-switch resident of the centralized control plane."""

    def __init__(
        self,
        sim: Simulator,
        switch: SwitchNode,
        params: NetworkParams,
        controller: CentralizedController,
        switch_neighbors: Sequence[str],
        advertised: Sequence[Prefix] = (),
    ) -> None:
        self.sim = sim
        self.switch = switch
        self.params = params
        self.name = switch.name
        self.controller = controller
        self._protocol_neighbors = set(switch_neighbors)
        self._installed: Dict[Prefix, FibEntry] = {}
        self._pending: Optional[RouteTable] = None
        self._install_timer = Timer(sim, self._install_pending)
        self.reports_sent = 0
        switch.routing_agent = self
        controller.register(self, switch_neighbors, advertised)

    # ------------------------------------------------------- RoutingAgent

    def on_neighbor_change(self, peer: str, up: bool) -> None:
        if peer not in self._protocol_neighbors:
            return
        self.reports_sent += 1
        self.sim.schedule(
            self.controller.control.report_latency,
            self.controller.receive_report,
            self.name,
            peer,
            up,
        )

    def on_control_packet(self, packet: Packet, sender: str) -> None:
        """No in-band control traffic in this scheme."""

    # ------------------------------------------------------------- tables

    def would_change(self, table: RouteTable) -> bool:
        """Whether installing ``table`` would modify this switch's FIB."""
        if set(table) != set(self._installed):
            return True
        return any(
            self._installed[prefix].next_hops != next_hops
            for prefix, next_hops in table.items()
        )

    def receive_table(self, table: RouteTable) -> None:
        self._pending = table
        self._install_timer.start(self.params.fib_update_delay)

    def _install_pending(self) -> None:
        # computed delta against the previous push, applied as one batch
        # (one generation bump) in sorted-prefix order — same contract as
        # the link-state protocol's FIB download
        table = self._pending
        if table is None:
            return
        self._pending = None
        fib = self.switch.fib
        withdrawals = tuple(sorted(
            prefix for prefix in self._installed if prefix not in table
        ))
        installs: List[FibEntry] = []
        for prefix in sorted(table):
            current = self._installed.get(prefix)
            if current is not None and current.next_hops == table[prefix]:
                continue
            installs.append(FibEntry(prefix, table[prefix], source=SOURCE))
        fib.apply_delta(FibDelta(tuple(installs), withdrawals))
        for prefix in withdrawals:
            del self._installed[prefix]
        for entry in installs:
            self._installed[entry.prefix] = entry

    @property
    def routes(self) -> Dict[Prefix, FibEntry]:
        return dict(self._installed)


def deploy_centralized(
    network: "Network",
    control: Optional[ControllerParams] = None,
    advertise_loopbacks: bool = True,
) -> Tuple[CentralizedController, Dict[str, CentralizedAgent]]:
    """Install a controller and one agent per switch; bootstrap routes.

    Mirrors :func:`repro.routing.linkstate.deploy_linkstate` so experiment
    harnesses can swap control planes.
    """
    from ..dataplane.network import Network  # local import to avoid a cycle

    assert isinstance(network, Network)
    controller = CentralizedController(network.sim, network.params, control)
    agents: Dict[str, CentralizedAgent] = {}
    for switch in network.switches():
        advertised: List[Prefix] = []
        if switch.spec.subnet is not None:
            advertised.append(switch.spec.subnet)
        if advertise_loopbacks:
            advertised.append(Prefix(switch.ip, 32))
        switch_neighbors = [
            peer
            for peer in switch.links_by_peer
            if isinstance(network.nodes[peer], SwitchNode)
        ]
        agents[switch.name] = CentralizedAgent(
            network.sim,
            switch,
            network.params,
            controller,
            switch_neighbors=switch_neighbors,
            advertised=advertised,
        )
    controller.bootstrap()
    return controller, agents
