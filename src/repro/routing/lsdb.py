"""Link-state advertisements and the link-state database.

Each router originates one LSA describing its live switch adjacencies and
its attached ("stub") prefixes — a ToR's host subnet, plus the router's /32
loopback.  Sequence numbers provide freshness, exactly like OSPF router
LSAs (we skip aging/MaxAge: simulated experiments are shorter than any
refresh interval).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..net.ip import Prefix


@dataclass(frozen=True)
class Lsa:
    """One router's link-state advertisement."""

    origin: str
    seq: int
    neighbors: Tuple[str, ...]
    prefixes: Tuple[Prefix, ...]

    def newer_than(self, other: Optional["Lsa"]) -> bool:
        """Freshness comparison (higher sequence wins)."""
        return other is None or self.seq > other.seq


class Lsdb:
    """The per-router link-state database."""

    def __init__(self) -> None:
        self._by_origin: Dict[str, Lsa] = {}
        self._fingerprint: Optional[Tuple] = None

    def __len__(self) -> int:
        return len(self._by_origin)

    def get(self, origin: str) -> Optional[Lsa]:
        return self._by_origin.get(origin)

    def insert(self, lsa: Lsa) -> bool:
        """Store ``lsa`` if it is fresher; returns True when stored.

        When the fingerprint is already materialized it is patched in
        place (one bisect + tuple splice, O(V) pointer copies) instead
        of being invalidated — a post-failure flood otherwise makes
        every switch re-sort its whole database per received LSA, which
        at k=48 is the single largest reconvergence cost.  A seq-only
        refresh leaves the fingerprint object untouched, preserving the
        cache-hit behaviour the docstring of :meth:`fingerprint` pins.
        """
        old = self._by_origin.get(lsa.origin)
        if not lsa.newer_than(old):
            return False
        self._by_origin[lsa.origin] = lsa
        fp = self._fingerprint
        if fp is not None:
            entry = (lsa.origin, lsa.neighbors, lsa.prefixes)
            if old is not None:
                stale = (old.origin, old.neighbors, old.prefixes)
                if stale == entry:
                    return True
                i = bisect_left(fp, stale)
                fp = fp[:i] + fp[i + 1:]
            j = bisect_left(fp, entry)
            self._fingerprint = fp[:j] + (entry,) + fp[j:]
        return True

    def load(self, reference: "Lsdb") -> None:
        """Bulk-populate from a converged reference database.

        Semantically identical to inserting every LSA of ``reference`` in
        turn (LSAs are immutable, so sharing them across databases is
        safe), but an empty receiver takes the dict-copy fast path and
        inherits the reference's already-computed fingerprint — this is
        what collapses warm start's O(V²) per-switch insert loop into V
        dict copies, and keeps the batch-SPF oracle's fingerprint-keyed
        cache hot without V re-sorts.
        """
        if self._by_origin:
            for lsa in reference._by_origin.values():
                self.insert(lsa)
            return
        self._by_origin = dict(reference._by_origin)
        self._fingerprint = reference._fingerprint

    def fingerprint(self) -> Tuple:
        """A hashable digest of the *routing-relevant* content.

        SPF (:func:`repro.routing.spf.compute_routes`) reads only each
        LSA's neighbors and prefixes — never its sequence number — so the
        fingerprint deliberately omits ``seq``.  Two databases with equal
        fingerprints yield identical route tables for every origin, which
        is what lets the SPF cache share results across seq-only
        refreshes, switches, and trials.  Lazily computed on first use,
        then patched incrementally by :meth:`insert`; a seq-only refresh
        leaves the tuple untouched, so downstream caches still hit.
        """
        fp = self._fingerprint
        if fp is None:
            fp = tuple(sorted(
                (lsa.origin, lsa.neighbors, lsa.prefixes)
                for lsa in self._by_origin.values()
            ))
            self._fingerprint = fp
        return fp

    def all(self) -> Iterator[Lsa]:
        yield from self._by_origin.values()

    def two_way_neighbors(self, origin: str) -> Iterator[str]:
        """Neighbors of ``origin`` confirmed in *both* directions.

        OSPF only uses a link in SPF when both endpoints advertise it; this
        is what prevents half-learned failures from creating phantom links.
        """
        own = self._by_origin.get(origin)
        if own is None:
            return
        for peer in own.neighbors:
            peer_lsa = self._by_origin.get(peer)
            if peer_lsa is not None and origin in peer_lsa.neighbors:
                yield peer
