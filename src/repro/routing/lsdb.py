"""Link-state advertisements and the link-state database.

Each router originates one LSA describing its live switch adjacencies and
its attached ("stub") prefixes — a ToR's host subnet, plus the router's /32
loopback.  Sequence numbers provide freshness, exactly like OSPF router
LSAs (we skip aging/MaxAge: simulated experiments are shorter than any
refresh interval).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..net.ip import Prefix


@dataclass(frozen=True)
class Lsa:
    """One router's link-state advertisement."""

    origin: str
    seq: int
    neighbors: Tuple[str, ...]
    prefixes: Tuple[Prefix, ...]

    def newer_than(self, other: Optional["Lsa"]) -> bool:
        """Freshness comparison (higher sequence wins)."""
        return other is None or self.seq > other.seq


class Lsdb:
    """The per-router link-state database."""

    def __init__(self) -> None:
        self._by_origin: Dict[str, Lsa] = {}
        self._fingerprint: Optional[Tuple] = None

    def __len__(self) -> int:
        return len(self._by_origin)

    def get(self, origin: str) -> Optional[Lsa]:
        return self._by_origin.get(origin)

    def insert(self, lsa: Lsa) -> bool:
        """Store ``lsa`` if it is fresher; returns True when stored."""
        if lsa.newer_than(self._by_origin.get(lsa.origin)):
            self._by_origin[lsa.origin] = lsa
            self._fingerprint = None
            return True
        return False

    def fingerprint(self) -> Tuple:
        """A hashable digest of the *routing-relevant* content.

        SPF (:func:`repro.routing.spf.compute_routes`) reads only each
        LSA's neighbors and prefixes — never its sequence number — so the
        fingerprint deliberately omits ``seq``.  Two databases with equal
        fingerprints yield identical route tables for every origin, which
        is what lets the SPF cache share results across seq-only
        refreshes, switches, and trials.  Lazily computed, invalidated on
        every stored insert; a seq-only refresh recomputes to an *equal*
        tuple, so downstream caches still hit.
        """
        fp = self._fingerprint
        if fp is None:
            fp = tuple(sorted(
                (lsa.origin, lsa.neighbors, lsa.prefixes)
                for lsa in self._by_origin.values()
            ))
            self._fingerprint = fp
        return fp

    def all(self) -> Iterator[Lsa]:
        yield from self._by_origin.values()

    def two_way_neighbors(self, origin: str) -> Iterator[str]:
        """Neighbors of ``origin`` confirmed in *both* directions.

        OSPF only uses a link in SPF when both endpoints advertise it; this
        is what prevents half-learned failures from creating phantom links.
        """
        own = self._by_origin.get(origin)
        if own is None:
            return
        for peer in own.neighbors:
            peer_lsa = self._by_origin.get(peer)
            if peer_lsa is not None and origin in peer_lsa.neighbors:
                yield peer
