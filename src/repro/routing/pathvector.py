"""Path-vector routing — the BGP stand-in (§V, "Other Distributed Routing
Schemes").

Production DCNs also run BGP; the paper notes it "suffers from the slow
failure recovery problem" for the same underlying reason (control-plane
communication and computation, no local backup), aggravated by MRAI-timed
path hunting [13].  This module implements a compact path-vector protocol
so the reproduction can demonstrate F²Tree's claim that its scheme is
routing-protocol-agnostic:

* per-prefix AS-path-style announcements (the "AS" is the switch name),
  loop-rejected on receipt;
* best-path selection by shortest path, with ECMP over equal-length best
  paths from different neighbors;
* per-neighbor **MRAI** (minimum route advertisement interval): the first
  update after a quiet period leaves immediately, subsequent ones batch
  until the timer expires — the classic source of multi-round convergence
  under withdrawals (path hunting);
* withdrawals, session teardown on detected neighbor loss, full-table
  resync on session re-establishment;
* **valley-free export policy** (Gao-Rexford with "below = customer", the
  standard DCN BGP design): a route learned from an upper-layer neighbor
  is only exported to lower-layer neighbors, so a ToR never offers
  transit between two aggregation switches.  Without this, ToRs would
  re-advertise valley paths and mask the downward-redundancy gap the
  paper is about;
* the same FIB-update delay as the link-state protocol.

F²Tree's static backups sit *under* whatever this protocol installs, so a
downward failure is again bridged locally while path hunting plays out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # runtime import would be circular
    from ..dataplane.network import Network

from ..dataplane.node import SwitchNode
from ..dataplane.params import NetworkParams
from ..net.fib import FibEntry
from ..net.ip import Prefix
from ..net.packet import Packet
from ..sim.engine import Simulator, Timer
from ..sim.units import Time, microseconds, milliseconds

#: FIB entry source tag.
SOURCE = "pathvector"

#: An announcement carries the path from the advertiser back to the
#: origin; None means withdrawal.
PathAttr = Optional[Tuple[str, ...]]


@dataclass(frozen=True)
class PathVectorParams:
    """Protocol timing knobs."""

    #: minimum interval between successive advertisements to one neighbor
    mrai: Time = milliseconds(100)
    #: per-update processing delay at the receiver
    processing_delay: Time = microseconds(500)
    #: wire size of one update packet
    update_size_bytes: int = 160


@dataclass
class PathVectorStats:
    updates_sent: int = 0
    updates_received: int = 0
    withdrawals_sent: int = 0
    best_path_changes: int = 0
    fib_installs: int = 0


class PathVectorProtocol:
    """One switch's path-vector speaker (a `RoutingAgent`)."""

    def __init__(
        self,
        sim: Simulator,
        switch: SwitchNode,
        params: NetworkParams,
        switch_neighbors: Sequence[str],
        advertised: Sequence[Prefix] = (),
        protocol_params: Optional[PathVectorParams] = None,
        own_rank: int = 0,
        neighbor_ranks: Optional[Dict[str, int]] = None,
    ) -> None:
        self.sim = sim
        self.switch = switch
        self.params = params
        self.proto = protocol_params or PathVectorParams()
        self.name = switch.name
        self.stats = PathVectorStats()
        #: hierarchy ranks for the valley-free export rule (ToR=1, agg=2,
        #: core=3...); rank 0 everywhere disables the policy
        self.own_rank = own_rank
        self._neighbor_ranks: Dict[str, int] = dict(neighbor_ranks or {})
        self._neighbors: Set[str] = set(switch_neighbors)
        self._sessions_up: Set[str] = set(switch_neighbors)
        self._originated: Tuple[Prefix, ...] = tuple(advertised)
        #: adj-RIB-in: peer -> prefix -> path (from peer to origin)
        self._rib_in: Dict[str, Dict[Prefix, Tuple[str, ...]]] = {
            peer: {} for peer in switch_neighbors
        }
        #: current best: prefix -> (length, sorted tuple of next-hop peers)
        self._best: Dict[Prefix, Tuple[int, Tuple[str, ...]]] = {}
        #: what we last advertised to each peer: prefix -> path
        self._advertised_to: Dict[str, Dict[Prefix, Tuple[str, ...]]] = {
            peer: {} for peer in switch_neighbors
        }
        #: pending (MRAI-gated) updates per peer
        self._pending: Dict[str, Dict[Prefix, PathAttr]] = {
            peer: {} for peer in switch_neighbors
        }
        self._mrai_timers: Dict[str, Timer] = {
            peer: Timer(sim, lambda p=peer: self._mrai_expired(p))
            for peer in switch_neighbors
        }
        self._mrai_open: Dict[str, bool] = {peer: True for peer in switch_neighbors}
        self._installed: Dict[Prefix, FibEntry] = {}
        self._install_timer = Timer(sim, self._install_best)
        switch.routing_agent = self

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Announce originated prefixes to every live session."""
        changed = []
        for prefix in self._originated:
            self._best[prefix] = (0, ())
            changed.append(prefix)
        self._propagate(changed)

    # ------------------------------------------------------------- receive

    def on_control_packet(self, packet: Packet, sender: str) -> None:
        updates = packet.payload
        self.sim.schedule(
            self.proto.processing_delay, self._process_updates, updates, sender
        )

    def _process_updates(
        self, updates: Tuple[Tuple[Prefix, PathAttr], ...], sender: str
    ) -> None:
        if sender not in self._neighbors or sender not in self._sessions_up:
            return
        self.stats.updates_received += len(updates)
        rib = self._rib_in[sender]
        affected: List[Prefix] = []
        for prefix, path in updates:
            if path is None:
                if prefix in rib:
                    del rib[prefix]
                    affected.append(prefix)
                continue
            if self.name in path:
                # loop: our own name already on the path; treat as absent
                if prefix in rib:
                    del rib[prefix]
                    affected.append(prefix)
                continue
            rib[prefix] = path
            affected.append(prefix)
        self._reselect(affected)

    # ----------------------------------------------------------- selection

    def _candidates(self, prefix: Prefix) -> List[Tuple[int, str, Tuple[str, ...]]]:
        found = []
        for peer in sorted(self._sessions_up):
            path = self._rib_in[peer].get(prefix)
            if path is not None:
                found.append((len(path), peer, path))
        return found

    def _reselect(self, prefixes: Sequence[Prefix]) -> None:
        changed: List[Prefix] = []
        for prefix in dict.fromkeys(prefixes):
            if prefix in self._originated:
                continue  # our own prefixes never change
            candidates = self._candidates(prefix)
            if not candidates:
                new_best: Optional[Tuple[int, Tuple[str, ...]]] = None
            else:
                best_len = min(c[0] for c in candidates)
                peers = tuple(
                    sorted(peer for length, peer, _ in candidates if length == best_len)
                )
                new_best = (best_len, peers)
            old = self._best.get(prefix)
            if new_best != old:
                self.stats.best_path_changes += 1
                if new_best is None:
                    self._best.pop(prefix, None)
                else:
                    self._best[prefix] = new_best
                changed.append(prefix)
        if changed:
            self._install_timer.start(self.params.fib_update_delay)
            self._propagate(changed)

    def _install_best(self) -> None:
        fib = self.switch.fib
        self.stats.fib_installs += 1
        wanted: Dict[Prefix, Tuple[str, ...]] = {
            prefix: peers
            for prefix, (length, peers) in self._best.items()
            if prefix not in self._originated and peers
        }
        for prefix in list(self._installed):
            if prefix not in wanted:
                fib.withdraw(prefix)
                del self._installed[prefix]
        for prefix, peers in wanted.items():
            current = self._installed.get(prefix)
            if current is not None and current.next_hops == peers:
                continue
            entry = FibEntry(prefix, peers, source=SOURCE)
            fib.install(entry)
            self._installed[prefix] = entry

    # ---------------------------------------------------------- propagate

    def _exportable(self, learned_from: str, to_peer: str) -> bool:
        """Valley-free rule: routes learned from below go everywhere;
        routes learned from above/peers only go below."""
        if self.own_rank == 0:
            return True
        learned_rank = self._neighbor_ranks.get(learned_from, 0)
        to_rank = self._neighbor_ranks.get(to_peer, 0)
        return learned_rank < self.own_rank or to_rank < self.own_rank

    def _advertisement_for(self, prefix: Prefix, peer: str) -> PathAttr:
        """What (if anything) we may advertise for ``prefix`` to ``peer``."""
        best = self._best.get(prefix)
        if best is None:
            return None
        if prefix in self._originated:
            return (self.name,)
        length, peers = best
        if not peers:
            return None
        # advertise the (deterministic) first best path, prepending self
        first_peer = peers[0]
        if not self._exportable(first_peer, peer):
            return None
        return (self.name,) + self._rib_in[first_peer][prefix]

    def _propagate(self, prefixes: Sequence[Prefix]) -> None:
        for peer in sorted(self._sessions_up):
            pending = self._pending[peer]
            for prefix in prefixes:
                pending[prefix] = self._advertisement_for(prefix, peer)
            self._maybe_send(peer)

    def _maybe_send(self, peer: str) -> None:
        if not self._pending[peer]:
            return
        if self._mrai_open.get(peer, False):
            self._send_pending(peer)
        # else: the armed MRAI timer will flush on expiry

    def _send_pending(self, peer: str) -> None:
        pending = self._pending[peer]
        updates: List[Tuple[Prefix, PathAttr]] = []
        sent_state = self._advertised_to[peer]
        for prefix, path in pending.items():
            if path is None:
                if prefix in sent_state:
                    del sent_state[prefix]
                    updates.append((prefix, None))
                    self.stats.withdrawals_sent += 1
            else:
                if sent_state.get(prefix) != path:
                    sent_state[prefix] = path
                    updates.append((prefix, path))
        pending.clear()
        if not updates:
            return
        self.stats.updates_sent += len(updates)
        self.switch.send_control(
            peer, payload=tuple(updates), size_bytes=self.proto.update_size_bytes
        )
        self._mrai_open[peer] = False
        self._mrai_timers[peer].start(self.proto.mrai)

    def _mrai_expired(self, peer: str) -> None:
        self._mrai_open[peer] = True
        self._maybe_send(peer)

    # ----------------------------------------------------------- sessions

    def on_neighbor_change(self, peer: str, up: bool) -> None:
        if peer not in self._neighbors:
            return
        if up:
            self._sessions_up.add(peer)
            self._advertised_to[peer] = {}
            self._pending[peer] = {
                prefix: self._advertisement_for(prefix, peer)
                for prefix in list(self._best)
            }
            self._mrai_open[peer] = True
            self._maybe_send(peer)
            # routes through the revived peer become candidates again as
            # soon as it re-advertises; nothing to reselect yet
            return
        self._sessions_up.discard(peer)
        lost = list(self._rib_in[peer])
        self._rib_in[peer] = {}
        self._reselect(lost)

    @property
    def routes(self) -> Dict[Prefix, FibEntry]:
        return dict(self._installed)


def deploy_pathvector(
    network: "Network",
    protocol_params: Optional[PathVectorParams] = None,
    advertise_loopbacks: bool = True,
) -> Dict[str, PathVectorProtocol]:
    """Install a path-vector speaker on every switch (mirror of
    :func:`repro.routing.linkstate.deploy_linkstate`)."""
    from ..dataplane.network import Network  # local import to avoid a cycle
    from ..topology.graph import NodeKind

    ranks = {
        NodeKind.TOR: 1,
        NodeKind.LEAF: 1,
        NodeKind.AGG: 2,
        NodeKind.SPINE: 2,
        NodeKind.INTERMEDIATE: 3,
        NodeKind.CORE: 3,
    }

    assert isinstance(network, Network)
    instances: Dict[str, PathVectorProtocol] = {}
    for switch in network.switches():
        advertised: List[Prefix] = []
        if switch.spec.subnet is not None:
            advertised.append(switch.spec.subnet)
        if advertise_loopbacks:
            advertised.append(Prefix(switch.ip, 32))
        switch_neighbors = [
            peer
            for peer in switch.links_by_peer
            if isinstance(network.nodes[peer], SwitchNode)
        ]
        neighbor_ranks = {
            peer: ranks.get(network.switch(peer).spec.kind, 0)
            for peer in switch_neighbors
        }
        instances[switch.name] = PathVectorProtocol(
            network.sim,
            switch,
            network.params,
            switch_neighbors=switch_neighbors,
            advertised=advertised,
            protocol_params=protocol_params,
            own_rank=ranks.get(switch.spec.kind, 0),
            neighbor_ranks=neighbor_ranks,
        )
    for protocol in instances.values():
        protocol.start()
    return instances
