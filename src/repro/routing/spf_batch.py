"""Batch all-origins SPF over a compact graph (numpy-vectorized).

The event-driven protocol computes each router's SPF separately — the
right model for convergence dynamics, but a k=32 fat tree needs 1280
route tables just to *start* converged, and 1280 sequential Dijkstras in
Python is what caps the packet backend at k≈8.  This module computes
every origin's ``(dist, first_hops, routes)`` in one shot:

* the two-way graph comes from the LSDB fingerprint (indexed once via
  :func:`repro.routing.spf_incremental.graph_info`) and is flattened to
  a :class:`~repro.topology.compact.CompactGraph`;
* all-pairs unit-cost distances are computed by synchronized frontier
  expansion — one boolean matrix product per BFS level — so the whole
  fabric's reachability costs a handful of BLAS calls;
* ECMP first-hop sets fall out of the distance matrix
  (``n ∈ hops(s, v)  ⇔  dist(n, v) + 1 == dist(s, v)`` for neighbors
  ``n`` of ``s``) and are packed as per-origin neighbor bitmasks, so
  equal sets share one tuple.

Every result is **provably equal** to the from-scratch oracle
:func:`repro.routing.spf.compute_routes` per origin — the differential
suite in ``tests/test_spf_batch.py`` pins that equality across all four
topology families, with and without numpy.  Without numpy the module
degrades to the per-origin oracle (correct, just not fast), so nothing
here makes numpy a hard dependency.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..net.ip import Prefix
from ..topology.compact import CompactGraph
from .lsdb import Lsdb
from .spf import RouteTable, compute_routes
from .spf_incremental import SpfState, graph_info

try:  # numpy is an optional accelerator, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via engine="python"
    _np = None  # type: ignore[assignment]

#: engine choices for the public entry points
ENGINES = ("auto", "numpy", "python")


def have_numpy() -> bool:
    """Whether the vectorized engine is available."""
    return _np is not None


def _resolve_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"unknown batch-SPF engine {engine!r}")
    if engine == "auto":
        return "numpy" if have_numpy() else "python"
    if engine == "numpy" and not have_numpy():
        raise RuntimeError("numpy engine requested but numpy is unavailable")
    return engine


def _distance_matrix(graph: CompactGraph) -> Any:
    """All-pairs unit-cost distances (-1 = unreachable), shape (V, V).

    Synchronized BFS: the level-``d`` frontier of every source advances
    in one boolean matrix product per level, so the loop runs
    ``diameter`` times regardless of fabric size.
    """
    assert _np is not None
    n = len(graph)
    adjacency = _np.zeros((n, n), dtype=_np.float32)
    indptr = _np.asarray(graph.indptr, dtype=_np.int64)
    indices = _np.asarray(graph.indices, dtype=_np.int64)
    rows = _np.repeat(_np.arange(n, dtype=_np.int64), _np.diff(indptr))
    adjacency[rows, indices] = 1.0
    dist = _np.full((n, n), -1, dtype=_np.int32)
    reached = _np.eye(n, dtype=bool)
    frontier = _np.eye(n, dtype=_np.float32)
    dist[_np.arange(n), _np.arange(n)] = 0
    level = 0
    while True:
        advanced = (frontier @ adjacency) > 0
        advanced &= ~reached
        if not advanced.any():
            return dist
        level += 1
        dist[advanced] = level
        reached |= advanced
        frontier = advanced.astype(_np.float32)


def _origin_rows(
    graph: CompactGraph, dist: Any
) -> Iterator[Tuple[int, Tuple[str, ...], List[int], List[int]]]:
    """Per-origin ``(index, neighbor names, dist row, first-hop bitmasks)``.

    ``bits[t]`` has bit ``i`` set when the origin's ``i``-th (sorted)
    neighbor lies on a shortest path to node ``t`` — the packed form of
    the ECMP first-hop set.
    """
    assert _np is not None
    n = len(graph)
    for s in range(n):
        nbrs = _np.asarray(graph.neighbors(s), dtype=_np.int64)
        row = dist[s]
        if nbrs.size:
            mask = dist[nbrs] + 1 == row[None, :]
            shifts = _np.arange(nbrs.size, dtype=_np.int64)
            bits = (
                mask.astype(_np.int64) << shifts[:, None]
            ).sum(axis=0, dtype=_np.int64)
            bits_list = [int(b) for b in bits.tolist()]
        else:
            bits_list = [0] * n
        nbr_names = tuple(graph.names[int(i)] for i in nbrs.tolist())
        yield s, nbr_names, [int(d) for d in row.tolist()], bits_list


def _unpack(
    bits: int, nbr_names: Tuple[str, ...], memo: Dict[int, Tuple[str, ...]]
) -> Tuple[str, ...]:
    """Bitmask -> sorted next-hop name tuple (memoized per origin)."""
    hops = memo.get(bits)
    if hops is None:
        # neighbor indices ascend with names, so index order is sorted
        hops = tuple(
            name for i, name in enumerate(nbr_names) if bits >> i & 1
        )
        memo[bits] = hops
    return hops


def _aggregate(
    origin_index: int,
    origin_name: str,
    nbr_names: Tuple[str, ...],
    dist_row: List[int],
    bits_row: List[int],
    own_prefixes: frozenset,
    adv_by_prefix: Dict[Prefix, List[int]],
    memo: Dict[int, Tuple[str, ...]],
) -> RouteTable:
    """Prefix aggregation over one origin's packed reachability — the
    exact fold of :func:`repro.routing.spf.aggregate_routes`: nearest
    advertiser wins, ties union their hop sets, own prefixes excluded."""
    table: RouteTable = {}
    for prefix, advertisers in adv_by_prefix.items():
        if prefix in own_prefixes:
            continue
        best_d: Optional[int] = None
        best_bits = 0
        for adv in advertisers:
            if adv == origin_index:
                continue
            d = dist_row[adv]
            if d < 0:
                continue
            bits = bits_row[adv]
            if not bits:
                continue
            if best_d is None or d < best_d:
                best_d, best_bits = d, bits
            elif d == best_d:
                best_bits |= bits
        if best_d is None:
            continue
        table[prefix] = _unpack(best_bits, nbr_names, memo)
    return table


def _advertisers(
    graph: CompactGraph, prefixes: Dict[str, Tuple[Prefix, ...]]
) -> Dict[Prefix, List[int]]:
    adv_by_prefix: Dict[Prefix, List[int]] = {}
    for index, name in enumerate(graph.names):
        for prefix in prefixes.get(name, ()):
            adv_by_prefix.setdefault(prefix, []).append(index)
    return adv_by_prefix


def batch_compute_routes(
    lsdb: Lsdb, engine: str = "auto"
) -> Dict[str, RouteTable]:
    """Route tables for *every* origin of ``lsdb`` in one computation.

    Equal to ``{origin: compute_routes(origin, lsdb)}`` by construction
    (and by the differential suite); the numpy engine computes it in a
    few vectorized passes instead of one Dijkstra per origin.
    """
    resolved = _resolve_engine(engine)
    fingerprint = lsdb.fingerprint()
    info = graph_info(fingerprint)
    if resolved == "python":
        return {
            origin: compute_routes(origin, lsdb)
            for origin in sorted(info.adjacency)
        }
    graph = CompactGraph.from_adjacency(info.adjacency)
    dist = _distance_matrix(graph)
    adv_by_prefix = _advertisers(graph, info.prefixes)
    result: Dict[str, RouteTable] = {}
    for s, nbr_names, dist_row, bits_row in _origin_rows(graph, dist):
        origin = graph.names[s]
        own = frozenset(info.prefixes.get(origin, ()))
        memo: Dict[int, Tuple[str, ...]] = {}
        result[origin] = _aggregate(
            s, origin, nbr_names, dist_row, bits_row, own, adv_by_prefix, memo
        )
    return result


def batch_spf_states(
    lsdb: Lsdb, engine: str = "auto"
) -> Dict[str, SpfState]:
    """Complete :class:`SpfState` per origin — the warm-start payload.

    Seeding each protocol instance's incremental engine with its state
    makes the *next* SPF run after a failure a single-edge patch instead
    of a from-scratch Dijkstra, which is what keeps post-warm-start
    failure handling fast on large fabrics.
    """
    resolved = _resolve_engine(engine)
    fingerprint = lsdb.fingerprint()
    info = graph_info(fingerprint)
    if resolved == "python":
        from .spf_incremental import full_state

        return {
            origin: full_state(origin, lsdb)
            for origin in sorted(info.adjacency)
        }
    graph = CompactGraph.from_adjacency(info.adjacency)
    dist = _distance_matrix(graph)
    adv_by_prefix = _advertisers(graph, info.prefixes)
    states: Dict[str, SpfState] = {}
    for s, nbr_names, dist_row, bits_row in _origin_rows(graph, dist):
        origin = graph.names[s]
        own = frozenset(info.prefixes.get(origin, ()))
        tuple_memo: Dict[int, Tuple[str, ...]] = {}
        set_memo: Dict[int, frozenset] = {}
        dist_map: Dict[str, int] = {}
        hop_map: Dict[str, frozenset] = {}
        for t, d in enumerate(dist_row):
            if d < 0:
                continue
            bits = bits_row[t]
            hops = set_memo.get(bits)
            if hops is None:
                hops = frozenset(_unpack(bits, nbr_names, tuple_memo))
                set_memo[bits] = hops
            name = graph.names[t]
            dist_map[name] = d
            hop_map[name] = hops
        routes = _aggregate(
            s, origin, nbr_names, dist_row, bits_row, own,
            adv_by_prefix, tuple_memo,
        )
        states[origin] = SpfState(
            origin=origin,
            fingerprint=fingerprint,
            dist=dist_map,
            first_hops=hop_map,
            routes=routes,
        )
    return states
