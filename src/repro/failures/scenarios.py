"""Table IV: the seven failure scenarios C1-C7.

Each scenario is defined relative to the flow under test (the traced
forwarding path from the leftmost to the rightmost host), exactly as §IV-A
describes: links "either along the path, or not on the path but may impact
the packet forwarding".  Given a traced path through a 3-layer topology,
:func:`build_scenario` produces the concrete links to fail and the §II-C
condition the scenario belongs to — which the experiments then verify
against both the analytical classifier and the simulated outcome.

========  ==================================================  ==========
label     failures                                            condition
========  ==================================================  ==========
C1        1 ToR<->agg link                                     1st
C2        1 core<->agg link                                    1st
C3        C1 + C2 together                                     1st
C4        2 adjacent ToR<->agg links in the dest pod           2nd
C5        all ToR<->agg links in the pod except the left       2nd
          across neighbor's
C6        1 ToR<->agg link + the right across link             3rd
C7        2 ToR<->agg links + 1 right across link              4th
========  ==================================================  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.failure_analysis import FailureCondition
from ..topology.graph import NodeKind, Topology, TopologyError

LinkKey = Tuple[str, str]

ALL_LABELS = ("C1", "C2", "C3", "C4", "C5", "C6", "C7")
#: scenarios meaningful on topologies without across links
FAT_TREE_LABELS = ("C1", "C2", "C3", "C4", "C5")


@dataclass(frozen=True)
class ConditionScenario:
    """One instantiated Table IV scenario."""

    label: str
    description: str
    failed: Tuple[LinkKey, ...]
    #: the switch whose downward-link failure the condition is about
    sx: str
    #: destination ToR used for classification
    dest_tor: str
    expected_condition: FailureCondition
    #: expected extra hops during fast rerouting (None = reroute fails)
    expected_extra_hops: Optional[int]

    @property
    def applicable_to_fat_tree(self) -> bool:
        return self.label in FAT_TREE_LABELS


@dataclass(frozen=True)
class _PathRoles:
    tor_d: str
    agg_d: str
    core: str
    ring: Tuple[str, ...]  # dest-pod agg ring, position order
    index: int  # agg_d's position in the ring


def _roles(topo: Topology, path: Sequence[str]) -> _PathRoles:
    if len(path) < 7:
        raise TopologyError(
            f"need a 3-layer up/down path (7 nodes), got {len(path)}: {path}"
        )
    tor_d, agg_d, core = path[-2], path[-3], path[-4]
    for name, kind in ((tor_d, NodeKind.TOR), (agg_d, NodeKind.AGG), (core, NodeKind.CORE)):
        actual = topo.node(name).kind
        if actual is not kind:
            raise TopologyError(f"path role mismatch: {name} is {actual}, wanted {kind}")
    pod = topo.node(agg_d).pod
    assert pod is not None
    ring = tuple(n.name for n in topo.pod_members(NodeKind.AGG, pod))
    return _PathRoles(tor_d, agg_d, core, ring, ring.index(agg_d))


def _key(a: str, b: str) -> LinkKey:
    return (a, b) if a <= b else (b, a)


def build_scenario(label: str, topo: Topology, path: Sequence[str]) -> ConditionScenario:
    """Instantiate scenario ``label`` for the flow following ``path``."""
    roles = _roles(topo, path)
    ring, i, n = roles.ring, roles.index, len(roles.ring)
    right1 = ring[(i + 1) % n]
    left1 = ring[(i - 1) % n]
    agg_d, tor_d, core = roles.agg_d, roles.tor_d, roles.core

    if label == "C1":
        return ConditionScenario(
            label, "1 link between ToR and aggregation switch",
            (_key(agg_d, tor_d),), agg_d, tor_d,
            FailureCondition.CONDITION_1, 1,
        )
    if label == "C2":
        return ConditionScenario(
            label, "1 link between core and aggregation switch",
            (_key(core, agg_d),), core, tor_d,
            FailureCondition.CONDITION_1, 1,
        )
    if label == "C3":
        return ConditionScenario(
            label,
            "1 ToR-agg link and 1 core-agg link together",
            (_key(agg_d, tor_d), _key(core, agg_d)), agg_d, tor_d,
            FailureCondition.CONDITION_1, 2,
        )
    if label == "C4":
        if n < 3:
            raise TopologyError(f"C4 needs a pod of >= 3 aggs, ring is {n}")
        return ConditionScenario(
            label,
            "2 adjacent ToR-agg links in the same pod",
            (_key(agg_d, tor_d), _key(right1, tor_d)), agg_d, tor_d,
            FailureCondition.CONDITION_2, 2,
        )
    if label == "C5":
        if n < 3:
            raise TopologyError(f"C5 needs a pod of >= 3 aggs, ring is {n}")
        failed = tuple(
            _key(member, tor_d) for member in ring if member != left1
        )
        return ConditionScenario(
            label,
            "all ToR-agg links in the pod except the left across neighbor's",
            failed, agg_d, tor_d,
            FailureCondition.CONDITION_2, n - 1,
        )
    if label == "C6":
        return ConditionScenario(
            label,
            "1 ToR-agg link and the right across link",
            (_key(agg_d, tor_d), _key(agg_d, right1)), agg_d, tor_d,
            FailureCondition.CONDITION_3, 1,
        )
    if label == "C7":
        if n < 3:
            raise TopologyError(f"C7 needs a pod of >= 3 aggs, ring is {n}")
        right2 = ring[(i + 2) % n]
        return ConditionScenario(
            label,
            "2 ToR-agg links and 1 right across link",
            (
                _key(agg_d, tor_d),
                _key(right1, tor_d),
                _key(right1, right2),
            ),
            agg_d, tor_d,
            FailureCondition.CONDITION_4, None,
        )
    raise ValueError(f"unknown scenario label {label!r}")


def all_scenarios(
    topo: Topology, path: Sequence[str], labels: Sequence[str] = ALL_LABELS
) -> List[ConditionScenario]:
    """Instantiate several scenarios for the same flow."""
    return [build_scenario(label, topo, path) for label in labels]


def render_table_four(scenarios: Sequence[ConditionScenario]) -> str:
    """ASCII rendering of Table IV."""
    lines = [
        f"{'label':<6} {'condition':<12} {'expected extra hops':<20} failures"
    ]
    for s in scenarios:
        extra = "-" if s.expected_extra_hops is None else str(s.expected_extra_hops)
        failures = ", ".join(f"{a}<->{b}" for a, b in s.failed)
        lines.append(
            f"{s.label:<6} {s.expected_condition.name:<12} {extra:<20} {failures}"
        )
    return "\n".join(lines)
