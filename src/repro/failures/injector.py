"""Failure injection: deterministic schedules and random processes.

Two modes, matching the paper's two evaluation styles:

* **Deterministic** (§III, §IV-A): a list of :class:`FailureEvent`s — fail
  these links at these times, optionally restore them later.
* **Random** (§IV-B): failed links picked uniformly among switch-switch
  links; inter-failure times and failure durations both log-normal (the
  shape measured by Gill et al. [1]), with rate/duration calibrated so that
  the 600 s experiment sees ~40 failures averaging ~1 concurrent failure,
  or ~100 failures averaging ~5 (the paper's "1 and 5 concurrent failure
  conditions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..dataplane.network import Network
from ..sim.randomness import RandomStreams, lognormal_from_mean_sigma
from ..sim.units import SECOND, Time, seconds
from ..topology.graph import LinkKind, Topology

LinkKey = Tuple[str, str]


@dataclass(frozen=True)
class FailureEvent:
    """One link's outage: down at ``at``, up at ``restore_at`` (if ever)."""

    at: Time
    a: str
    b: str
    restore_at: Optional[Time] = None

    @property
    def key(self) -> LinkKey:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


def schedule_failures(network: Network, events: Sequence[FailureEvent]) -> None:
    """Register all events with the network's simulator."""
    for event in events:
        network.schedule_link_failure(event.a, event.b, event.at)
        if event.restore_at is not None:
            if event.restore_at <= event.at:
                raise ValueError(f"restore before failure in {event}")
            network.schedule_link_restore(event.a, event.b, event.restore_at)


def fabric_links(topology: Topology) -> List[LinkKey]:
    """Candidate links for random failures: switch-switch links only
    (host NICs are out of scope for the paper's failure model), parallel
    links collapsed to one key (they fail together, like a cable bundle)."""
    keys = {
        link.key
        for link in topology.links.values()
        if link.kind is not LinkKind.HOST
    }
    return sorted(keys)


@dataclass(frozen=True)
class RandomFailurePattern:
    """Log-normal failure process parameters."""

    mean_gap: Time
    mean_duration: Time
    gap_sigma: float = 1.0
    duration_sigma: float = 1.0

    @property
    def expected_concurrency(self) -> float:
        """Little's-law average number of concurrently failed links."""
        return self.mean_duration / self.mean_gap


def paper_failure_pattern(concurrency: int, horizon: Time = seconds(600)) -> RandomFailurePattern:
    """The §IV-B calibrations: ~40 failures in 600 s at concurrency 1,
    ~100 failures at concurrency 5 (scaled linearly for other horizons)."""
    if concurrency == 1:
        gap = horizon // 40
        return RandomFailurePattern(mean_gap=gap, mean_duration=gap)
    if concurrency == 5:
        gap = horizon // 100
        return RandomFailurePattern(mean_gap=gap, mean_duration=5 * gap)
    # generic calibration: keep the 1-concurrency arrival rate scaling
    gap = horizon // (40 * concurrency) * 2
    return RandomFailurePattern(mean_gap=gap, mean_duration=concurrency * gap)


def generate_random_failures(
    topology: Topology,
    pattern: RandomFailurePattern,
    horizon: Time,
    streams: RandomStreams,
    start: Time = 0,
) -> List[FailureEvent]:
    """Draw a failure schedule over [start, start + horizon).

    A link already down is never failed again before it restores, so the
    generated schedule is consistent (each event is a distinct outage).
    """
    rng = streams.stream("failures")
    candidates = fabric_links(topology)
    if not candidates:
        raise ValueError("topology has no fabric links to fail")
    events: List[FailureEvent] = []
    down_until: dict[LinkKey, Time] = {}
    now = start
    while True:
        gap = round(
            lognormal_from_mean_sigma(rng, pattern.mean_gap, pattern.gap_sigma)
        )
        now += max(gap, 1)
        if now >= start + horizon:
            break
        up_candidates = [
            key for key in candidates if down_until.get(key, 0) <= now
        ]
        if not up_candidates:
            continue
        key = up_candidates[rng.randrange(len(up_candidates))]
        duration = round(
            lognormal_from_mean_sigma(
                rng, pattern.mean_duration, pattern.duration_sigma
            )
        )
        duration = max(duration, SECOND // 1000)
        restore_at = now + duration
        down_until[key] = restore_at
        events.append(FailureEvent(now, key[0], key[1], restore_at))
    return events


def concurrency_profile(
    events: Sequence[FailureEvent], horizon: Time
) -> Tuple[int, float]:
    """(event count, time-averaged concurrent failures) of a schedule."""
    points: List[Tuple[Time, int]] = []
    for event in events:
        points.append((event.at, 1))
        points.append((event.restore_at or horizon, -1))
    points.sort()
    area = 0
    level = 0
    last = 0
    for t, delta in points:
        t = min(t, horizon)
        area += level * (t - last)
        last = t
        level += delta
    area += level * max(0, horizon - last)
    return len(events), area / horizon if horizon else 0.0
