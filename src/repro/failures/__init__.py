"""Failure machinery: deterministic injection, random processes, scenarios."""

from .injector import (
    FailureEvent,
    LinkKey,
    RandomFailurePattern,
    concurrency_profile,
    fabric_links,
    generate_random_failures,
    paper_failure_pattern,
    schedule_failures,
)
from .scenarios import (
    ALL_LABELS,
    FAT_TREE_LABELS,
    ConditionScenario,
    all_scenarios,
    build_scenario,
    render_table_four,
)

__all__ = [
    "FailureEvent",
    "LinkKey",
    "RandomFailurePattern",
    "concurrency_profile",
    "fabric_links",
    "generate_random_failures",
    "paper_failure_pattern",
    "schedule_failures",
    "ALL_LABELS",
    "FAT_TREE_LABELS",
    "ConditionScenario",
    "all_scenarios",
    "build_scenario",
    "render_table_four",
]
