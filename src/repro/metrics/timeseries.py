"""Time-series metrics: throughput bins, connectivity gaps, collapse.

These implement the paper's measurement methodology literally:

* instantaneous throughput in **20 ms bins** (Fig 2, Fig 4's TCP metric);
* **duration of connectivity loss** — the time between the last packet
  received before the outage window and the first received after it
  (Table III's definition, with the 100 us probe interval as granularity);
* **duration of throughput collapse** — how long binned throughput stays
  below half the pre-failure average (Table III / Fig 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..sim.units import Time, milliseconds

#: (timestamp, bytes) delivery records
Delivery = Tuple[Time, int]

DEFAULT_BIN: Time = milliseconds(20)


@dataclass(frozen=True)
class ThroughputBin:
    """One bin of received throughput."""

    start: Time
    width: Time
    bytes: int

    @property
    def mbps(self) -> float:
        """Received rate in megabits/second.

        ``bytes * 8 / width`` is bits per nanosecond, i.e. gigabits per
        second; the ``* 1000`` scales Gbps to Mbps.  A full 1 Gbps link
        therefore reads 1000.0.
        """
        return self.bytes * 8 * 1000.0 / self.width


def throughput_series(
    deliveries: Sequence[Delivery],
    start: Time,
    end: Time,
    bin_width: Time = DEFAULT_BIN,
) -> List[ThroughputBin]:
    """Bin deliveries into fixed-width throughput bins covering [start, end).

    An empty window (``end <= start``) yields an empty series.
    """
    if bin_width <= 0:
        raise ValueError("bin width must be positive")
    if end <= start:
        return []
    n_bins = (end - start + bin_width - 1) // bin_width
    counts = [0] * n_bins
    for timestamp, n_bytes in deliveries:
        if start <= timestamp < end:
            counts[(timestamp - start) // bin_width] += n_bytes
    return [
        ThroughputBin(start + i * bin_width, bin_width, counts[i])
        for i in range(n_bins)
    ]


def connectivity_gaps(
    arrival_times: Sequence[Time], threshold: Time
) -> List[Tuple[Time, Time]]:
    """All inter-arrival gaps longer than ``threshold``, as (from, to)."""
    gaps = []
    for earlier, later in zip(arrival_times, arrival_times[1:]):
        if later - earlier > threshold:
            gaps.append((earlier, later))
    return gaps


def connectivity_loss_duration(
    arrival_times: Sequence[Time],
    failure_time: Time,
    threshold: Time = milliseconds(5),
) -> Time:
    """Duration of the connectivity-loss window caused by a failure.

    Per Table III: the difference between the arrival of the last packet
    before the window and the first packet after it.  The first
    over-threshold gap ending after ``failure_time`` is the window; zero
    means connectivity was never interrupted (for longer than the
    threshold — gaps shorter than ``threshold`` are measurement noise at
    the probe granularity).
    """
    for earlier, later in zip(arrival_times, arrival_times[1:]):
        if later - earlier > threshold and later > failure_time:
            return later - earlier
    return 0


def pre_failure_average(
    bins: Sequence[ThroughputBin], failure_time: Time, settle: Time = milliseconds(100)
) -> float:
    """Average bytes/bin over complete bins in [start+settle, failure)."""
    usable = [
        b.bytes
        for b in bins
        if b.start >= bins[0].start + settle and b.start + b.width <= failure_time
    ]
    if not usable:
        raise ValueError("no complete pre-failure bins to average")
    return sum(usable) / len(usable)


def throughput_collapse_duration(
    deliveries: Sequence[Delivery],
    flow_start: Time,
    failure_time: Time,
    end: Time,
    bin_width: Time = DEFAULT_BIN,
) -> Time:
    """How long binned throughput stays below half its pre-failure average.

    Measured from the first sub-half bin at/after the failure until the
    first bin back at or above half the baseline (Table III's "duration of
    throughput collapse", 20 ms bins).
    """
    bins = throughput_series(deliveries, flow_start, end, bin_width)
    if not bins:
        return 0
    baseline = pre_failure_average(bins, failure_time)
    half = baseline / 2
    collapse_start: Optional[Time] = None
    for b in bins:
        if b.start + b.width <= failure_time:
            continue
        if collapse_start is None:
            if b.bytes < half:
                collapse_start = b.start
        elif b.bytes >= half:
            return b.start - collapse_start
    if collapse_start is not None:
        return end - collapse_start
    return 0


def render_throughput(
    bins: Sequence[ThroughputBin], failure_time: Optional[Time] = None,
    max_width: int = 50,
) -> str:
    """ASCII rendering of a throughput time series (Fig 2-style)."""
    if not bins:
        return "(no data)"
    peak = max(b.bytes for b in bins)
    if peak == 0:
        return "(no traffic in any bin)"
    lines = []
    for b in bins:
        bar = "#" * round(b.bytes / peak * max_width)
        marker = " <-- failure" if (
            failure_time is not None and b.start <= failure_time < b.start + b.width
        ) else ""
        lines.append(
            f"{b.start / 1e6:9.1f}ms {b.mbps:8.1f} Mbps |{bar}{marker}"
        )
    return "\n".join(lines)
