"""Request-level metrics for the partition-aggregate workload (§IV-B).

The paper's headline application metric is the **deadline-miss ratio**: the
fraction of partition-aggregate requests whose completion (all eight worker
responses received) takes longer than 250 ms [23].  Fig 6(b) additionally
shows the CDF of completion times above 100 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sim.units import Time, milliseconds

#: the intra-DC deadline assumed by the paper (after Wilson et al. [23])
DEFAULT_DEADLINE: Time = milliseconds(250)


@dataclass
class RequestRecord:
    """Outcome of one partition-aggregate request (fan-out of N workers)."""

    started_at: Time
    completed_at: Optional[Time] = None

    @property
    def completion_time(self) -> Optional[Time]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclass
class RequestStats:
    """Aggregated request outcomes."""

    records: List[RequestRecord] = field(default_factory=list)
    #: completion assumed for requests still incomplete at experiment end
    censored_at: Optional[Time] = None

    @property
    def total(self) -> int:
        return len(self.records)

    def completion_times(self) -> List[Time]:
        """Completion times; incomplete requests count as ``censored_at``
        (they certainly took at least that long)."""
        times = []
        for record in self.records:
            t = record.completion_time
            if t is None:
                if self.censored_at is not None:
                    t = max(self.censored_at - record.started_at, 0)
                else:
                    continue
            times.append(t)
        return times

    def deadline_miss_ratio(self, deadline: Time = DEFAULT_DEADLINE) -> float:
        """Fraction of requests completing after ``deadline`` (Fig 6(a))."""
        times = self.completion_times()
        if not times:
            return 0.0
        return sum(1 for t in times if t > deadline) / len(times)

    def fraction_longer_than(self, threshold: Time) -> float:
        times = self.completion_times()
        if not times:
            return 0.0
        return sum(1 for t in times if t > threshold) / len(times)

    def cdf(self) -> List[Tuple[Time, float]]:
        """Empirical CDF points (time, P[completion <= time])."""
        times = sorted(self.completion_times())
        n = len(times)
        return [(t, (i + 1) / n) for i, t in enumerate(times)]

    def tail_cdf_above(self, threshold: Time) -> List[Tuple[Time, float]]:
        """The Fig 6(b) view: CDF restricted to completions > threshold,
        with probabilities still relative to *all* requests."""
        return [(t, p) for t, p in self.cdf() if t > threshold]

    def percentile(self, q: float) -> Time:
        """The q-th percentile completion time (0 <= q <= 100)."""
        times = sorted(self.completion_times())
        if not times:
            raise ValueError("no completed requests")
        index = min(len(times) - 1, max(0, round(q / 100 * (len(times) - 1))))
        return times[index]


def reduction_ratio(baseline: float, improved: float) -> float:
    """Relative reduction (the paper's "reduces ... by 96%")."""
    if baseline <= 0:
        return 0.0
    return (baseline - improved) / baseline
