"""Measurement layer: throughput/connectivity/collapse and request metrics."""

from .requests import (
    DEFAULT_DEADLINE,
    RequestRecord,
    RequestStats,
    reduction_ratio,
)
from .timeseries import (
    DEFAULT_BIN,
    Delivery,
    ThroughputBin,
    connectivity_gaps,
    connectivity_loss_duration,
    pre_failure_average,
    render_throughput,
    throughput_collapse_duration,
    throughput_series,
)

__all__ = [
    "DEFAULT_DEADLINE",
    "RequestRecord",
    "RequestStats",
    "reduction_ratio",
    "DEFAULT_BIN",
    "Delivery",
    "ThroughputBin",
    "connectivity_gaps",
    "connectivity_loss_duration",
    "pre_failure_average",
    "render_throughput",
    "throughput_collapse_duration",
    "throughput_series",
]
