"""The runtime network: topology + data plane + failure injection.

:class:`Network` instantiates runtime switches, hosts and links from a
:class:`~repro.topology.graph.Topology`, installs the connected routes
(each ToR's host subnet), and offers the experiment-facing controls:
failing/restoring links or whole switches (a switch failure is modelled as
the failure of all its links, exactly as the paper states in footnote 1),
and offline path tracing through the current FIBs.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..net.fib import FibEntry, LOCAL
from ..net.packet import DEFAULT_TTL, Packet, PROTO_UDP
from ..sim.engine import PRIORITY_CONTROL, Simulator
from ..sim.units import Time
from ..topology.addressing import AddressPlan, assign_addresses
from ..topology.graph import NodeKind, Topology, TopologyError
from .link import RuntimeLink
from .node import HostNode, NetworkNode, SwitchNode
from .params import NetworkParams


class Network:
    """A simulated network bound to a simulator instance."""

    def __init__(
        self,
        topology: Topology,
        sim: Optional[Simulator] = None,
        params: Optional[NetworkParams] = None,
        plan: Optional[AddressPlan] = None,
    ) -> None:
        self.topology = topology
        self.sim = sim or Simulator()
        self.params = params or NetworkParams()
        self.plan = plan or assign_addresses(topology)

        self.nodes: Dict[str, NetworkNode] = {}
        self.links: List[RuntimeLink] = []
        self._links_by_pair: Dict[Tuple[str, str], List[RuntimeLink]] = {}

        self._build()

    # ----------------------------------------------------------------- build

    def _build(self) -> None:
        for spec in self.topology.nodes.values():
            if spec.kind is NodeKind.HOST:
                self.nodes[spec.name] = HostNode(self.sim, self.params, spec)
            else:
                self.nodes[spec.name] = SwitchNode(self.sim, self.params, spec)

        for link_spec in self.topology.links.values():
            node_a = self.nodes[link_spec.a]
            node_b = self.nodes[link_spec.b]
            link = RuntimeLink(self.sim, self.params, link_spec, node_a, node_b)
            node_a.attach_link(link)
            node_b.attach_link(link)
            self.links.append(link)
            self._links_by_pair.setdefault(link_spec.key, []).append(link)

        # connected routes: each ToR/leaf owns its host subnet
        for tor_spec in self.topology.nodes_of_kind(NodeKind.TOR, NodeKind.LEAF):
            tor = self.switch(tor_spec.name)
            if tor_spec.subnet is None:
                raise TopologyError(f"{tor_spec.name} has no subnet")
            tor.fib.install(
                FibEntry(tor_spec.subnet, (LOCAL,), source="connected")
            )
            for host_spec in self.topology.host_of_tor(tor_spec.name):
                host_links = self._links_by_pair[
                    tuple(sorted((tor_spec.name, host_spec.name)))
                ]
                assert host_spec.ip is not None
                tor.attach_host(host_spec.ip, host_links[0])

    # ----------------------------------------------------------------- query

    def node(self, name: str) -> NetworkNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"no runtime node {name!r}") from None

    def switch(self, name: str) -> SwitchNode:
        node = self.node(name)
        if not isinstance(node, SwitchNode):
            raise TopologyError(f"{name!r} is not a switch")
        return node

    def host(self, name: str) -> HostNode:
        node = self.node(name)
        if not isinstance(node, HostNode):
            raise TopologyError(f"{name!r} is not a host")
        return node

    def switches(self) -> List[SwitchNode]:
        return [n for n in self.nodes.values() if isinstance(n, SwitchNode)]

    def hosts(self) -> List[HostNode]:
        return [n for n in self.nodes.values() if isinstance(n, HostNode)]

    def links_between(self, a: str, b: str) -> List[RuntimeLink]:
        return list(self._links_by_pair.get(tuple(sorted((a, b))), ()))

    def link_between(self, a: str, b: str) -> RuntimeLink:
        found = self.links_between(a, b)
        if len(found) != 1:
            raise TopologyError(
                f"expected exactly one runtime link {a}<->{b}, found {len(found)}"
            )
        return found[0]

    def drop_summary(self) -> Counter:
        """Aggregate per-node drop reasons across the network."""
        total: Counter = Counter()
        for node in self.nodes.values():
            total.update(node.drops)
        return total

    # ------------------------------------------------------------- failures

    def fail_link(self, a: str, b: str) -> None:
        """Take every (parallel) link between ``a`` and ``b`` down now."""
        found = self.links_between(a, b)
        if not found:
            raise TopologyError(f"no link {a}<->{b} to fail")
        for link in found:
            link.fail()

    def restore_link(self, a: str, b: str) -> None:
        found = self.links_between(a, b)
        if not found:
            raise TopologyError(f"no link {a}<->{b} to restore")
        for link in found:
            link.restore()

    def fail_link_direction(self, from_node: str, to_node: str) -> None:
        """Unidirectional failure: kill only the ``from -> to`` direction
        of every (parallel) link between the pair."""
        found = self.links_between(from_node, to_node)
        if not found:
            raise TopologyError(f"no link {from_node}<->{to_node} to fail")
        for link in found:
            link.fail_direction(from_node)

    def restore_link_direction(self, from_node: str, to_node: str) -> None:
        found = self.links_between(from_node, to_node)
        if not found:
            raise TopologyError(f"no link {from_node}<->{to_node} to restore")
        for link in found:
            link.restore_direction(from_node)

    def schedule_directional_failure(self, from_node: str, to_node: str, at: Time) -> None:
        self.sim.schedule_at(
            at, self.fail_link_direction, from_node, to_node,
            priority=PRIORITY_CONTROL,
        )

    def fail_switch(self, name: str) -> None:
        """Fail a whole switch = fail all of its links (paper footnote 1)."""
        for link in self.switch(name).links:
            link.fail()

    def restore_switch(self, name: str) -> None:
        for link in self.switch(name).links:
            link.restore()

    def schedule_link_failure(self, a: str, b: str, at: Time) -> None:
        """Schedule a bidirectional link failure at absolute time ``at``."""
        self.sim.schedule_at(at, self.fail_link, a, b, priority=PRIORITY_CONTROL)

    def schedule_link_restore(self, a: str, b: str, at: Time) -> None:
        self.sim.schedule_at(at, self.restore_link, a, b, priority=PRIORITY_CONTROL)

    # ---------------------------------------------------------------- tracing

    def trace_route(
        self,
        src_host: str,
        dst_host: str,
        protocol: int = PROTO_UDP,
        sport: int = 10000,
        dport: int = 20000,
        max_hops: int = DEFAULT_TTL,
        check_actual: bool = False,
    ) -> Tuple[List[str], bool]:
        """The path a packet of this five-tuple would take *right now*.

        Walks the switches' :meth:`~repro.dataplane.node.SwitchNode.resolve`
        without scheduling any events.  Returns ``(names, completed)`` —
        ``completed`` is False when the walk hits a dead end or exceeds
        ``max_hops`` (e.g. the condition-4 ping-pong loop).

        Forwarding decisions always follow the switches' *detected* state
        (what real hardware acts on).  With ``check_actual=True`` the walk
        additionally fails when the chosen link is actually dead — i.e.
        it answers "would a packet sent now arrive?", exposing the
        undetected-failure black hole.
        """
        src = self.host(src_host)
        dst = self.host(dst_host)
        probe = Packet(
            src=src.ip,
            dst=dst.ip,
            protocol=protocol,
            size_bytes=64,
            sport=sport,
            dport=dport,
        )
        path = [src_host]
        if src.uplink is None:
            return path, False
        current: NetworkNode = src.uplink.other(src_host)
        for _ in range(max_hops):
            path.append(current.name)
            if isinstance(current, HostNode):
                return path, current.name == dst_host
            assert isinstance(current, SwitchNode)
            entry, next_hop = current.resolve(probe)
            if entry is None:
                return path, False
            if next_hop == LOCAL:
                if probe.dst.value != dst.ip.value:
                    return path, False
                path.append(dst_host)
                return path, True
            live = current.live_links_to(next_hop)  # type: ignore[arg-type]
            if not live:
                return path, False
            chosen = live[0]
            if check_actual and not chosen.channel_from(current.name).up:
                return path, False
            current = chosen.other(current.name)
        return path, False
