"""Runtime links: store-and-forward channels plus failure detection.

A :class:`RuntimeLink` wraps one topology link with

* two independent :class:`Channel` directions (FIFO output queue, serialization
  at the link rate, fixed propagation delay, drop-tail), and
* a **detection state machine per endpoint**: when the link actually fails,
  packets die immediately, but each endpoint only *learns* of the failure
  ``detection_delay`` later (BFD-scale, 60 ms by default).  The window in
  between is the black hole the paper measures.  A flap shorter than the
  detection delay is never reported — exactly like a real BFD session that
  never misses enough hellos.

The channel uses an *epoch* counter so that packets serialized before a
failure are dropped at delivery time without having to track per-packet
event handles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING

from ..net.packet import Packet
from ..obs.trace import EV_LINK_DETECTED, EV_LINK_FAIL, EV_LINK_RESTORE
from ..sim.engine import PRIORITY_NORMAL, Simulator, Timer
from ..sim.units import Time, transmission_delay
from ..topology.graph import Link as LinkSpec
from .params import NetworkParams

#: Buckets for the output-queue occupancy histogram (packets, at enqueue).
QUEUE_DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import NetworkNode


@dataclass
class LinkStats:
    """Counters per link direction."""

    sent: int = 0
    delivered: int = 0
    dropped_queue: int = 0
    dropped_down: int = 0
    #: total serialization time consumed (ns) — busy_ns / elapsed = utilization
    busy_ns: int = 0
    #: high-watermark of the output queue (packets)
    max_queue_depth: int = 0

    def utilization(self, window_ns: int) -> float:
        """Fraction of ``window_ns`` the transmitter was busy."""
        if window_ns <= 0:
            raise ValueError("window must be positive")
        return min(1.0, self.busy_ns / window_ns)


class Channel:
    """One direction of a link: ``src`` node -> ``dst`` node."""

    def __init__(
        self,
        sim: Simulator,
        params: NetworkParams,
        src: "NetworkNode",
        dst: "NetworkNode",
    ) -> None:
        self._sim = sim
        self._params = params
        self._obs = sim.obs
        self.src = src
        self.dst = dst
        self.up = True
        self.epoch = 0
        self._next_free: Time = 0
        self._queued = 0
        self.stats = LinkStats()

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the channel; returns False when dropped.

        Enqueueing onto an actually-down channel silently loses the packet —
        the *sender does not know* unless its detection state says so, which
        is exactly how undetected failures black-hole traffic.
        """
        self.stats.sent += 1
        if not self.up:
            self.stats.dropped_down += 1
            obs = self._obs
            if obs.enabled:
                obs.metrics.counter("link.dropped", reason="down").inc()
            return False
        if self._queued >= self._params.queue_capacity:
            self.stats.dropped_queue += 1
            obs = self._obs
            if obs.enabled:
                obs.metrics.counter("link.dropped", reason="queue_full").inc()
            return False
        now = self._sim.now
        start = max(now, self._next_free)
        tx = transmission_delay(packet.size_bytes, self._params.link_rate_gbps)
        finish = start + tx
        self._next_free = finish
        self._queued += 1
        self.stats.busy_ns += tx
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, self._queued)
        obs = self._obs
        if obs.enabled:
            obs.metrics.histogram(
                "link.queue_depth", buckets=QUEUE_DEPTH_BUCKETS
            ).observe(self._queued)
        arrival = finish + self._params.propagation_delay
        self._sim.schedule_at(finish, self._serialized, priority=PRIORITY_NORMAL)
        self._sim.schedule_at(
            arrival, self._deliver, packet, self.epoch, priority=PRIORITY_NORMAL
        )
        return True

    def _serialized(self) -> None:
        self._queued -= 1

    def _deliver(self, packet: Packet, epoch: int) -> None:
        if epoch != self.epoch or not self.up:
            self.stats.dropped_down += 1
            obs = self._obs
            if obs.enabled:
                obs.metrics.counter("link.dropped", reason="down_in_flight").inc()
            return
        self.stats.delivered += 1
        self.dst.receive(packet, sender=self.src.name)

    def set_up(self, up: bool) -> None:
        """Change the actual channel state; a transition to down (or a
        down->up bounce) invalidates in-flight packets via the epoch."""
        if up != self.up:
            self.epoch += 1
            self.up = up
            if up:
                self._next_free = self._sim.now


class _EndpointDetector:
    """Failure/recovery detector for one endpoint of a link.

    Tracks the *detected* state with a delay behind the observed state;
    flaps shorter than the detection delay are never reported (like a BFD
    session that never misses enough hellos).
    """

    def __init__(
        self,
        sim: Simulator,
        node: "NetworkNode",
        notify: Callable[["NetworkNode", bool], None],
        down_delay: Time,
        up_delay: Time,
    ) -> None:
        self.node = node
        self.detected_up = True
        self._notify = notify
        self._down_delay = down_delay
        self._up_delay = up_delay
        self._timer = Timer(sim, self._fire)
        self._pending: Optional[bool] = None  # state to report when timer fires

    def observe(self, up: bool) -> None:
        """Feed the currently-observable state; idempotent."""
        if up:
            self._link_came_up()
        else:
            self._link_went_down()

    def _link_went_down(self) -> None:
        if self.detected_up:
            if self._pending is not False:
                self._pending = False
                self._timer.start(self._down_delay)
        elif self._pending is True:
            # recovery was being detected but the outage resumed
            self._timer.cancel()
            self._pending = None

    def _link_came_up(self) -> None:
        if self.detected_up:
            # the outage was shorter than the detection delay: never report it
            if self._pending is False:
                self._timer.cancel()
                self._pending = None
        elif self._pending is not True:
            self._pending = True
            self._timer.start(self._up_delay)

    def _fire(self) -> None:
        assert self._pending is not None
        self.detected_up = self._pending
        self._pending = None
        self._notify(self.node, self.detected_up)

    def force(self, up: bool) -> None:
        """Set the detected state synchronously (test/analysis hook).

        Cancels any in-flight detection and invalidates the node's
        liveness caches directly — *without* the routing-agent
        notification — so frozen-control-plane experiments can flip
        beliefs while the data plane stays cache-coherent.
        """
        self._timer.cancel()
        self._pending = None
        if self.detected_up != up:
            self.detected_up = up
            self.node._bump_adjacency_epoch()


class RuntimeLink:
    """A bidirectional link instance bound to two runtime nodes.

    Failures may be bidirectional (the paper's evaluation) or
    **unidirectional** (the paper's stated future work): one direction's
    channel dies while the other keeps delivering.  What each endpoint can
    *detect* depends on ``params.detection_mode``:

    * ``"bfd"`` (default) — the session needs both directions, so either
      direction failing is detected by **both** endpoints;
    * ``"interface"`` — an endpoint only notices when its **incoming**
      direction dies (loss-of-signal); the sender into a unidirectionally
      dead link keeps transmitting into the void.
    """

    def __init__(
        self,
        sim: Simulator,
        params: NetworkParams,
        spec: LinkSpec,
        node_a: "NetworkNode",
        node_b: "NetworkNode",
    ) -> None:
        self.spec = spec
        self.params = params
        self._sim = sim
        self.node_a = node_a
        self.node_b = node_b
        self.channel_ab = Channel(sim, params, node_a, node_b)
        self.channel_ba = Channel(sim, params, node_b, node_a)
        #: observers of *actual* channel-state changes (the fluid
        #: backend's recompute trigger — deliverability changes at the
        #: failure instant, before any endpoint detects it)
        self.state_listeners: List[Callable[[], None]] = []
        self._detectors = {
            node_a.name: _EndpointDetector(
                sim, node_a, self._on_detected, params.detection_delay,
                params.up_detection_delay,
            ),
            node_b.name: _EndpointDetector(
                sim, node_b, self._on_detected, params.detection_delay,
                params.up_detection_delay,
            ),
        }

    @property
    def actually_up(self) -> bool:
        """True while both directions work."""
        return self.channel_ab.up and self.channel_ba.up

    @property
    def name(self) -> str:
        return str(self.spec)

    def channel_from(self, node_name: str) -> Channel:
        """The outgoing channel as seen from ``node_name``."""
        if node_name == self.node_a.name:
            return self.channel_ab
        if node_name == self.node_b.name:
            return self.channel_ba
        raise ValueError(f"{node_name} is not an endpoint of {self.name}")

    def other(self, node_name: str) -> "NetworkNode":
        if node_name == self.node_a.name:
            return self.node_b
        if node_name == self.node_b.name:
            return self.node_a
        raise ValueError(f"{node_name} is not an endpoint of {self.name}")

    def detected_up_by(self, node_name: str) -> bool:
        """Whether ``node_name`` currently believes this link is up."""
        return self._detectors[node_name].detected_up

    def force_detection(self, up: bool) -> None:
        """Force both endpoints' *detected* state synchronously.

        For frozen-dataplane tests and offline analysis that flip
        beliefs without running simulator events: detection timers are
        cancelled, liveness caches are invalidated, and routing agents
        are **not** notified (the control plane stays frozen).
        """
        for detector in self._detectors.values():
            detector.force(up)

    def fail(self) -> None:
        """Take the link down in both directions (the paper's failures)."""
        self.channel_ab.set_up(False)
        self.channel_ba.set_up(False)
        obs = self._sim.obs
        obs.metrics.counter("link.failures").inc()
        obs.trace.emit(self._sim.now, EV_LINK_FAIL, self.name)
        self._sync_detectors()
        self._notify_state()

    def restore(self) -> None:
        """Bring both directions back up."""
        self.channel_ab.set_up(True)
        self.channel_ba.set_up(True)
        obs = self._sim.obs
        obs.metrics.counter("link.restores").inc()
        obs.trace.emit(self._sim.now, EV_LINK_RESTORE, self.name)
        self._sync_detectors()
        self._notify_state()

    def fail_direction(self, from_name: str) -> None:
        """Kill only the ``from_name`` -> peer direction (unidirectional)."""
        self.channel_from(from_name).set_up(False)
        obs = self._sim.obs
        obs.metrics.counter("link.failures").inc()
        obs.trace.emit(
            self._sim.now, EV_LINK_FAIL, self.name, direction=from_name
        )
        self._sync_detectors()
        self._notify_state()

    def restore_direction(self, from_name: str) -> None:
        """Revive only the ``from_name`` -> peer direction."""
        self.channel_from(from_name).set_up(True)
        obs = self._sim.obs
        obs.metrics.counter("link.restores").inc()
        obs.trace.emit(
            self._sim.now, EV_LINK_RESTORE, self.name, direction=from_name
        )
        self._sync_detectors()
        self._notify_state()

    def _notify_state(self) -> None:
        for listener in self.state_listeners:
            listener()

    def _observable_up(self, node_name: str) -> bool:
        """What ``node_name``'s detection mechanism can currently see."""
        incoming = (
            self.channel_ba if node_name == self.node_a.name else self.channel_ab
        )
        if self.params.detection_mode == "interface":
            return incoming.up
        # bfd: the session needs both directions
        return self.channel_ab.up and self.channel_ba.up

    def _sync_detectors(self) -> None:
        for name, detector in self._detectors.items():
            detector.observe(self._observable_up(name))

    def _on_detected(self, node: "NetworkNode", up: bool) -> None:
        obs = self._sim.obs
        obs.metrics.counter(
            "link.detections", state="up" if up else "down"
        ).inc()
        obs.trace.emit(
            self._sim.now,
            EV_LINK_DETECTED,
            node.name,
            link=self.name,
            peer=self.other(node.name).name,
            up=up,
        )
        node.on_adjacency_change(self, up)
