"""Network-wide timing and capacity parameters.

Defaults reproduce the paper's measured / configured constants:

* 1 Gbps links with 5 us propagation delay (§IV: ~250 us RTT, ~100 us
  one-way end-to-end delay over 6 hops);
* 60 ms failure detection (BFD-scale; measured on the testbed, §III);
* 10 ms FIB update delay (measured on the testbed, §III);
* Quagga's default SPF throttling ``timers throttle spf 200 1000 10000`` —
  200 ms initial delay, 1 s hold doubling up to 10 s under churn, which is
  how the paper's fat tree exhibits ~272 ms single-failure recovery and ~9 s
  timers under failure storms (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..sim.units import Time, microseconds, milliseconds


@dataclass(frozen=True)
class NetworkParams:
    """Timing/capacity knobs shared by every link and switch."""

    #: Link rate in Gbps (1 bit/ns).
    link_rate_gbps: float = 1.0
    #: Per-link propagation delay.
    propagation_delay: Time = microseconds(5)
    #: Output queue capacity per link direction, in packets.
    queue_capacity: int = 256
    #: Per-switch packet processing delay (0: the paper's 100 us one-way
    #: delay is fully explained by transmission + propagation).
    switch_processing_delay: Time = 0

    #: Time from a link actually failing to an endpoint *detecting* it.
    detection_delay: Time = milliseconds(60)
    #: Time from a link recovering to an endpoint detecting the recovery
    #: (adjacency re-establishment; same scale as down detection).
    up_detection_delay: Time = milliseconds(60)
    #: What endpoints can detect: "bfd" — either direction failing brings
    #: the session down at *both* ends; "interface" — an endpoint only
    #: notices when its incoming direction dies (loss of signal).  The
    #: distinction only matters for unidirectional failures (the paper's
    #: future work; see the unidirectional extension benchmark).
    detection_mode: str = "bfd"

    #: Delay between an SPF run finishing and its routes being active
    #: (FIB download; measured ~10 ms on the testbed).
    fib_update_delay: Time = milliseconds(10)

    #: SPF throttle: delay from first LSDB change to the first SPF run.
    spf_initial_delay: Time = milliseconds(200)
    #: SPF throttle: initial hold time between consecutive SPF runs.
    spf_hold: Time = milliseconds(1000)
    #: SPF throttle: maximum hold time (exponential backoff cap).
    spf_hold_max: Time = milliseconds(10000)

    #: Per-hop processing delay for flooded LSAs (CPU cost of flooding;
    #: the testbed attributes ~2-3 ms of the 272 ms loss to LSA propagation
    #: and CPU processing across a few hops).
    lsa_processing_delay: Time = microseconds(500)
    #: Wire size of one LSA packet.
    lsa_size_bytes: int = 120

    #: Data-plane backend: "packet" simulates every packet as events;
    #: "flow" computes per-flow throughput/FCT/loss analytically (max-min
    #: fair share per link) while failures, detection, flooding, and
    #: SPF/FIB convergence stay event-driven (see repro.sim.flow).
    backend: str = "packet"
    #: Fair-share solver engine for the flow backend ("auto" | "numpy" |
    #: "python"); "auto" prefers the vectorized engine when numpy is
    #: importable.  Both engines return bitwise-identical rates
    #: (see :mod:`repro.sim.flow.fairshare`), so this is purely a speed
    #: knob — results never depend on it.
    flow_engine: str = "auto"

    def with_overrides(self, **changes: Any) -> "NetworkParams":
        """A copy with the given fields replaced (ablation harness hook)."""
        return replace(self, **changes)


#: Parameters matching the paper's testbed/emulation environment.
PAPER_DEFAULTS = NetworkParams()
