"""Runtime nodes: L3 switches and end hosts.

**Switches** implement the forwarding behaviour the whole paper rests on
(§II-A/§II-B): an incoming packet is looked up in the FIB, matches are
walked from the longest prefix down, and at each match the next hops whose
adjacency is *locally detected dead* are pruned.  The first match with a
surviving next hop wins; ECMP hashing picks among survivors.  This single
mechanism produces:

* normal shortest-path forwarding,
* ECMP's immediate protection of upward links (prune one of N/2-1 equals),
* F²Tree's fast reroute (fall through to the /16 and then /15 static
  backups when every longer match is dead), and
* the condition-4 ping-pong (§II-C): two adjacent switches bouncing a
  packet over their ring until TTL expiry — fidelity we rely on for C7.

**Hosts** are deliberately thin: one uplink to their ToR (which is also
their default route), a protocol/port demux for the transport layer, and a
receive tap for the metrics collectors.

Per the production convention in §II-B, a switch bundles all ports into one
L3 interface with a single IP, so next hops are *neighbor switches*, not
interfaces; with parallel links (Aspen) the neighbor is alive while any of
the parallel links is detected up.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Protocol, TYPE_CHECKING, Tuple

from ..net.ecmp import fnv1a_64, select_next_hop
from ..net.fib import Fib, FibEntry, LOCAL
from ..net.ip import IPv4Address
from ..net.packet import PROTO_ROUTING, Packet
from ..obs.trace import EV_FIB_FALLTHROUGH, EV_PKT_DELIVER, EV_PKT_DROP
from ..sim.engine import Simulator
from .link import RuntimeLink
from .params import NetworkParams

#: Buckets for the FIB match-walk-length histogram: 1 = longest prefix won,
#: 2+ = fall-through past dead matches (3 = the /24 -> /16 -> /15 chain).
MATCH_DEPTH_BUCKETS = (1, 2, 3, 4, 8)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.graph import Node as NodeSpec


class RoutingAgent(Protocol):
    """What a switch expects from its control-plane resident."""

    def on_neighbor_change(self, peer: str, up: bool) -> None:
        """Called when the switch's detection declares a neighbor up/down."""

    def on_control_packet(self, packet: Packet, sender: str) -> None:
        """Called for packets addressed to this switch with PROTO_ROUTING."""


#: handler(packet, local_node) for transport demultiplexing
PacketHandler = Callable[[Packet, "NetworkNode"], None]


class NetworkNode:
    """Common behaviour of switches and hosts."""

    def __init__(self, sim: Simulator, params: NetworkParams, spec: "NodeSpec") -> None:
        if spec.ip is None:
            raise ValueError(f"node {spec.name} has no address; assign_addresses first")
        self.sim = sim
        self.params = params
        self.spec = spec
        #: cached observability facade — hot paths check one attribute
        self._obs = sim.obs
        self.name = spec.name
        self.ip: IPv4Address = spec.ip
        self.links: List[RuntimeLink] = []
        self.links_by_peer: Dict[str, List[RuntimeLink]] = {}
        #: bumped whenever this node's *detected* adjacency changes; every
        #: liveness cache below (and the switch resolve cache) keys off it
        self.adjacency_epoch = 0
        #: peer -> live links, valid for the current adjacency epoch
        self._live_links_cache: Dict[str, List[RuntimeLink]] = {}
        #: peer -> liveness bool, valid for the current adjacency epoch
        self._alive_cache: Dict[str, bool] = {}
        self.drops: Counter = Counter()
        #: observers of detected-adjacency changes (the fluid backend's
        #: recompute trigger); called synchronously on every epoch bump
        self.epoch_listeners: List[Callable[[], None]] = []
        #: handlers keyed by (protocol, local port); port 0 = any port
        self._handlers: Dict[tuple, PacketHandler] = {}
        #: taps invoked for every locally-delivered packet
        self.receive_taps: List[PacketHandler] = []

    # ------------------------------------------------------------- plumbing

    def attach_link(self, link: RuntimeLink) -> None:
        peer = link.other(self.name).name
        self.links.append(link)
        self.links_by_peer.setdefault(peer, []).append(link)
        self._bump_adjacency_epoch()

    def _bump_adjacency_epoch(self) -> None:
        """Invalidate every liveness-derived cache on this node."""
        self.adjacency_epoch += 1
        self._live_links_cache.clear()
        self._alive_cache.clear()
        for listener in self.epoch_listeners:
            listener()

    def live_links_to(self, peer: str) -> List[RuntimeLink]:
        """Links to ``peer`` this node currently believes are up.

        Cached per adjacency epoch; callers must treat the list as
        read-only (every mutation path goes through the detectors, which
        bump the epoch via :meth:`on_adjacency_change`).
        """
        cached = self._live_links_cache.get(peer)
        if cached is None:
            name = self.name
            cached = [
                link
                for link in self.links_by_peer.get(peer, ())
                if link.detected_up_by(name)
            ]
            self._live_links_cache[peer] = cached
        return cached

    def neighbor_alive(self, peer: str) -> bool:
        """True while at least one link to ``peer`` is detected up.

        Short-circuits on the first detected-up link — no list is built
        on the per-packet path — and memoizes per adjacency epoch.
        """
        alive = self._alive_cache.get(peer)
        if alive is None:
            alive = False
            name = self.name
            for link in self.links_by_peer.get(peer, ()):
                if link.detected_up_by(name):
                    alive = True
                    break
            self._alive_cache[peer] = alive
        return alive

    def register_handler(self, protocol: int, port: int, handler: PacketHandler) -> None:
        """Register a transport handler; ``port=0`` catches every port."""
        key = (protocol, port)
        if key in self._handlers:
            raise ValueError(f"{self.name}: handler already bound for {key}")
        self._handlers[key] = handler

    def unregister_handler(self, protocol: int, port: int) -> None:
        self._handlers.pop((protocol, port), None)

    def port_in_use(self, protocol: int, port: int) -> bool:
        """Whether a handler is bound to (protocol, port)."""
        return (protocol, port) in self._handlers

    # ------------------------------------------------------------- receive

    def receive(self, packet: Packet, sender: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def _record_drop(self, reason: str) -> None:
        """Count a drop locally and (when tracing) in the obs layer."""
        self.drops[reason] += 1
        obs = self._obs
        if obs.enabled:
            obs.metrics.counter("pkt.dropped", reason=reason).inc()
            obs.trace.emit(self.sim.now, EV_PKT_DROP, self.name, reason=reason)

    def deliver_local(self, packet: Packet, sender: str) -> None:
        """Hand a packet addressed to this node to the upper layers."""
        obs = self._obs
        if obs.enabled:
            obs.metrics.counter("pkt.delivered").inc()
            obs.trace.emit(
                self.sim.now,
                EV_PKT_DELIVER,
                self.name,
                proto=packet.protocol,
                sport=packet.sport,
                dport=packet.dport,
                size=packet.size_bytes,
                hops=packet.hops,
            )
        for tap in self.receive_taps:
            tap(packet, self)
        handler = self._handlers.get((packet.protocol, packet.dport))
        if handler is None:
            handler = self._handlers.get((packet.protocol, 0))
        if handler is None:
            self._record_drop("no_handler")
            return
        handler(packet, self)

    def on_adjacency_change(self, link: RuntimeLink, up: bool) -> None:
        """Failure detection callback; switches extend this.

        Detected link state only ever changes immediately before this is
        invoked (``_EndpointDetector._fire``), so bumping the epoch here
        is what keeps the liveness caches coherent."""
        self._bump_adjacency_epoch()


class SwitchNode(NetworkNode):
    """An L3 switch: FIB, ECMP, local fast-reroute fall-through."""

    def __init__(self, sim: Simulator, params: NetworkParams, spec: "NodeSpec") -> None:
        super().__init__(sim, params, spec)
        self.fib = Fib()
        self.salt = fnv1a_64(spec.name.encode("utf-8"))
        #: destination value -> (entry, live next hops, depth), valid for
        #: _resolve_cache_key = (fib generation, adjacency epoch); the
        #: ECMP hash stays per-packet, so caching the pruned candidate
        #: set cannot change which hop any flow takes
        self._resolve_cache: Dict[int, tuple] = {}
        self._resolve_cache_key = (-1, -1)
        self.routing_agent: Optional[RoutingAgent] = None
        #: directly attached hosts: ip value -> link to the host
        self.local_hosts: Dict[int, RuntimeLink] = {}
        #: taps invoked for every *forwarded* packet (path tracing, loops)
        self.forward_taps: List[Callable[[Packet, str], None]] = []

    # ------------------------------------------------------------- control

    def attach_host(self, host_ip: IPv4Address, link: RuntimeLink) -> None:
        self.local_hosts[host_ip.value] = link

    def on_adjacency_change(self, link: RuntimeLink, up: bool) -> None:
        """Detection outcome: tell the routing agent about the peer.

        With parallel links the peer is only reported down when its last
        live link goes, and up on the first revival.
        """
        super().on_adjacency_change(link, up)  # invalidate liveness caches
        peer = link.other(self.name).name
        live = len(self.live_links_to(peer))
        if self.routing_agent is None:
            return
        if not up and live == 0:
            self.routing_agent.on_neighbor_change(peer, up=False)
        elif up and live == 1:
            self.routing_agent.on_neighbor_change(peer, up=True)

    def send_control(self, peer: str, payload: object, size_bytes: int) -> bool:
        """Send a hop-by-hop control packet to a direct neighbor.

        Control traffic is addressed to the neighbor itself and never
        FIB-routed; it only crosses links this switch believes are up.
        """
        live = self.live_links_to(peer)
        if not live:
            return False
        packet = Packet(
            src=self.ip,
            dst=live[0].other(self.name).ip,
            protocol=PROTO_ROUTING,
            size_bytes=size_bytes,
            payload=payload,
            created_at=self.sim.now,
        )
        return live[0].channel_from(self.name).enqueue(packet)

    # ------------------------------------------------------------ data path

    def receive(self, packet: Packet, sender: str) -> None:
        if packet.dst == self.ip:
            if packet.protocol == PROTO_ROUTING:
                if self.routing_agent is not None:
                    self.routing_agent.on_control_packet(packet, sender)
                return
            self.deliver_local(packet, sender)
            return
        self.forward(packet)

    def forward(self, packet: Packet) -> None:
        """FIB fall-through forwarding (see module docstring)."""
        if packet.ttl <= 1:
            self._record_drop("ttl_expired")
            return
        entry, next_hop, depth = self._resolve_indexed(packet)
        if entry is None:
            self._record_drop("no_route")
            return
        obs = self._obs
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("pkt.forwarded").inc()
            metrics.histogram(
                "fib.match_depth", buckets=MATCH_DEPTH_BUCKETS
            ).observe(depth + 1)
            if depth > 0:
                metrics.counter("fib.fallthrough").inc()
                if entry.source == "static":
                    metrics.counter("fib.backup_route_hits").inc()
                obs.trace.emit(
                    self.sim.now,
                    EV_FIB_FALLTHROUGH,
                    self.name,
                    prefix=str(entry.prefix),
                    source=entry.source,
                    depth=depth,
                )
        packet.forwarded()
        for tap in self.forward_taps:
            tap(packet, self.name)
        if next_hop == LOCAL:
            self._deliver_to_host(packet)
            return
        link = self.link_for(next_hop, packet.flow_key)  # live by resolve()
        link.channel_from(self.name).enqueue(packet)

    def link_for(self, next_hop: str, flow_key: tuple) -> RuntimeLink:
        """The (possibly parallel) link this flow uses toward ``next_hop``.

        Deterministic per flow — also used by experiments that must fail
        exactly the member link a flow is hashed onto (Aspen trees).
        """
        links = self.live_links_to(next_hop)
        return select_next_hop(links, flow_key, self.salt ^ 0xA5A5)

    def resolve(
        self, packet: Packet
    ) -> Tuple[Optional[FibEntry], Optional[str]]:
        """The (entry, next hop) the switch would use for ``packet``.

        Walks FIB matches longest-first, pruning next hops whose adjacency
        is detected dead; shared by actual forwarding and by offline path
        tracing.  Returns ``(None, None)`` when no live route exists.
        """
        entry, next_hop, _depth = self._resolve_indexed(packet)
        return entry, next_hop

    def _resolve_indexed(
        self, packet: Packet
    ) -> Tuple[Optional[FibEntry], Optional[str], int]:
        """:meth:`resolve` plus how many matches were walked to get there.

        ``depth`` 0 means the longest match had a live next hop; >0 counts
        the dead longer matches skipped (backup-route fall-through).

        The (entry, live hop set, depth) triple is a pure function of the
        destination given the FIB generation and adjacency epoch, so it is
        cached per destination; only the flow-key ECMP selection runs per
        packet.  :meth:`_resolve_walk` is the uncached reference walk the
        differential tests compare against.
        """
        key = (self.fib.generation, self.adjacency_epoch)
        cache = self._resolve_cache
        if self._resolve_cache_key != key:
            cache.clear()
            self._resolve_cache_key = key
        dst = packet.dst
        cached = cache.get(dst.value)
        if cached is None:
            cached = self._resolve_walk(dst)
            cache[dst.value] = cached
        entry, live, depth = cached
        if entry is None:
            return None, None, depth
        return entry, select_next_hop(live, packet.flow_key, self.salt), depth

    def _resolve_walk(
        self, dst: IPv4Address
    ) -> Tuple[Optional[FibEntry], Optional[List[str]], int]:
        """Uncached LPM fall-through: ``(entry, live hops, depth)``.

        Walks the (itself cached) FIB chain longest-first, pruning next
        hops whose adjacency is detected dead — byte-identical to the
        pre-cache walk over ``Fib.matches``.
        """
        depth = 0
        for entry in self.fib.chain(dst):
            live = [
                nh
                for nh in entry.next_hops
                if nh == LOCAL or self.neighbor_alive(nh)  # type: ignore[arg-type]
            ]
            if live:
                return entry, live, depth
            depth += 1
        return None, None, depth

    def _deliver_to_host(self, packet: Packet) -> None:
        link = self.local_hosts.get(packet.dst.value)
        if link is None:
            self._record_drop("unknown_host")
            return
        if not link.detected_up_by(self.name):
            self._record_drop("host_link_down")
            return
        link.channel_from(self.name).enqueue(packet)


class HostNode(NetworkNode):
    """An end host: one uplink, protocol demux, nothing else."""

    def __init__(self, sim: Simulator, params: NetworkParams, spec: "NodeSpec") -> None:
        super().__init__(sim, params, spec)
        self.uplink: Optional[RuntimeLink] = None

    def attach_link(self, link: RuntimeLink) -> None:
        if self.uplink is not None:
            raise ValueError(f"host {self.name} is single-homed; second link {link.name}")
        super().attach_link(link)
        self.uplink = link

    def send(self, packet: Packet) -> bool:
        """Send toward the ToR (the host's default gateway)."""
        if self.uplink is None:
            raise RuntimeError(f"host {self.name} has no uplink")
        return self.uplink.channel_from(self.name).enqueue(packet)

    def receive(self, packet: Packet, sender: str) -> None:
        if packet.dst != self.ip:
            self._record_drop("not_mine")
            return
        self.deliver_local(packet, sender)
