"""Data plane: runtime links, L3 switches, hosts and the network container."""

from .link import Channel, LinkStats, RuntimeLink
from .network import Network
from .node import HostNode, NetworkNode, PacketHandler, RoutingAgent, SwitchNode
from .params import NetworkParams, PAPER_DEFAULTS

__all__ = [
    "Channel",
    "LinkStats",
    "RuntimeLink",
    "Network",
    "HostNode",
    "NetworkNode",
    "PacketHandler",
    "RoutingAgent",
    "SwitchNode",
    "NetworkParams",
    "PAPER_DEFAULTS",
]
