"""Seeded-violation corpus: the analyzer's own falsifiability proof.

Following the PR 3/4 convention (``repro check --selftest`` seeds fault
mutants, ``repro verify --selftest`` seeds wiring defects), the lint
ships one minimal fixture per rule.  ``run_selftest`` proves the
diagonal: every fixture must be caught by **exactly** its rule — firing
nothing means the rule has no teeth; firing extra rules means fixtures
(and by extension real findings) are not attributable.  An analyzer that
passes this matrix is known to detect what it claims and nothing else.

Each fixture also carries a ``clean`` twin — the minimal compliant
rewrite — which must produce no findings at all, so the matrix pins
both the positive and the negative edge of every rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .engine import lint_source

#: path label placing fixtures inside the repro source scope
_SRC = "src/repro/example.py"


@dataclass(frozen=True)
class Fixture:
    """One seeded violation and the single rule that must catch it."""

    rule: str
    #: path label the fixture is linted under (drives rule scoping)
    path: str
    #: minimal source that violates exactly this rule
    source: str
    #: minimal compliant rewrite (must lint clean)
    clean: str


FIXTURES: Tuple[Fixture, ...] = (
    Fixture(
        rule="wall-clock",
        path=_SRC,
        source="import time\nstamp = time.time()\n",
        clean="stamp = sim.now\n",
    ),
    Fixture(
        rule="perf-counter",
        path=_SRC,
        source="import time\nt0 = time.perf_counter()\n",
        clean="import time\ndeadline = time.monotonic()\n",
    ),
    Fixture(
        rule="module-random",
        path=_SRC,
        source="import random\ndraw = random.random()\n",
        clean="draw = streams.stream('failures').random()\n",
    ),
    Fixture(
        rule="set-iteration",
        path=_SRC,
        source="for node in {'a', 'b'}:\n    visit(node)\n",
        clean="for node in sorted({'a', 'b'}):\n    visit(node)\n",
    ),
    Fixture(
        rule="span-id",
        path="src/repro/obs/spans.py",
        source="span_id = id(span)\n",
        clean="span_id = next_sequence()\n",
    ),
    Fixture(
        rule="unsorted-json",
        path="src/repro/check/example.py",
        source="import json\nblob = json.dumps(payload)\n",
        clean="import json\nblob = json.dumps(payload, sort_keys=True)\n",
    ),
    Fixture(
        rule="sim-time-eq",
        path=_SRC,
        source="if engine.now == start + timeout:\n    expire()\n",
        clean="if engine.now >= start + timeout:\n    expire()\n",
    ),
    Fixture(
        rule="unseeded-rng",
        path=_SRC,
        source="import random\nrng = random.Random(42)\n",
        clean=(
            "import random\n"
            "rng = random.Random(derive_seed(master_seed, 'workload'))\n"
        ),
    ),
    Fixture(
        rule="mutable-default",
        path=_SRC,
        source="def collect(events=[]):\n    return events\n",
        clean=(
            "def collect(events=None):\n"
            "    return [] if events is None else events\n"
        ),
    ),
    Fixture(
        rule="executor-lambda",
        path=_SRC,
        source="future = pool.submit(lambda: run_trial(spec))\n",
        clean="future = pool.submit(run_trial, spec)\n",
    ),
    Fixture(
        rule="heappush-unsorted",
        path=_SRC,
        source=(
            "import heapq\n"
            "for name, cost in table.items():\n"
            "    heapq.heappush(heap, (cost, name))\n"
        ),
        clean=(
            "import heapq\n"
            "for name, cost in sorted(table.items()):\n"
            "    heapq.heappush(heap, (cost, name))\n"
        ),
    ),
    Fixture(
        rule="flow-dict-iteration",
        path="src/repro/sim/flow/example.py",
        source=(
            "for name, flow in active.items():\n"
            "    advance(flow)\n"
        ),
        clean=(
            "for name in sorted(active):\n"
            "    advance(active[name])\n"
        ),
    ),
    Fixture(
        rule="unused-suppression",
        path=_SRC,
        source="budget = 1  # repro-lint: ignore[wall-clock]\n",
        clean="budget = 1\n",
    ),
)


@dataclass(frozen=True)
class SelftestResult:
    """One row of the diagonal matrix."""

    name: str
    expected: str
    #: rule ids fired by the seeded violation (must be exactly (expected,))
    caught: Tuple[str, ...]
    #: rule ids fired by the compliant twin (must be empty)
    baseline: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.baseline and self.caught == (self.expected,)


def run_selftest() -> List[SelftestResult]:
    """Lint every fixture (and its clean twin) with the full rule set."""
    results: List[SelftestResult] = []
    for fixture in FIXTURES:
        caught = tuple(
            sorted({f.rule for f in lint_source(fixture.source, fixture.path)})
        )
        baseline = tuple(
            sorted({f.rule for f in lint_source(fixture.clean, fixture.path)})
        )
        results.append(
            SelftestResult(
                name=fixture.rule,
                expected=fixture.rule,
                caught=caught,
                baseline=baseline,
            )
        )
    return results


def render_selftest(results: List[SelftestResult]) -> str:
    """ASCII diagonal: one row per fixture, PASS only on exact catches."""
    lines = ["repro lint --selftest — seeded-violation diagonal"]
    for result in results:
        verdict = "PASS" if result.ok else "FAIL"
        caught = ", ".join(result.caught) or "(nothing)"
        lines.append(f"  {verdict}  {result.name:<20} caught: {caught}")
        if result.baseline:
            lines.append(
                f"        clean twin unexpectedly fired: "
                f"{', '.join(result.baseline)}"
            )
    passed = sum(1 for r in results if r.ok)
    lines.append(f"{passed}/{len(results)} fixtures caught exactly")
    return "\n".join(lines)
