"""The rule catalog: each simulation-safety convention as a pluggable rule.

A :class:`Rule` packages one convention — id, severity, a one-line
summary (rendered into the catalog by ``repro lint --list``), per-path
scoping, and the AST hooks it listens on.  Rules register themselves
into the module-level :data:`REGISTRY` via the :func:`register`
decorator; the engine (:mod:`repro.lint.engine`) parses each file once
and fans every node event out to all rules in scope for that path.

Scoping speaks in *path suffixes and directory components* (the same
convention the original ``tools/lint_determinism.py`` used) so the
analyzer gives identical verdicts whether invoked with absolute paths,
repo-relative paths, or from inside ``src/``.

The five determinism rules (``wall-clock``, ``perf-counter``,
``module-random``, ``set-iteration``, ``span-id``) are migrated from
``tools/lint_determinism.py`` and keep their historical ids; the
remaining rules extend the analysis to serialization canonicality,
seed discipline, and worker-pool picklability (DESIGN.md §12).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple, Type

from .findings import SEV_ERROR, Finding

# ------------------------------------------------------------ path scoping


def normalize_path(path: str) -> str:
    """Forward-slash form of ``path`` (scoping matches on components)."""
    return str(path).replace("\\", "/")


def _has_dir(path: str, prefix: str) -> bool:
    """True when ``prefix`` (a ``/``-joined component run, e.g.
    ``src/repro/check``) appears on a component boundary in ``path``."""
    return ("/" + path).find("/" + prefix + "/") >= 0 or path.startswith(
        prefix + "/"
    )


def _in_repro_source(path: str) -> bool:
    """True for files of the ``repro`` package itself (``src/repro/...``),
    as opposed to tests, benchmarks, or tools."""
    return _has_dir(path, "src/repro") or path.startswith("repro/")


def _dotted(node: ast.AST) -> str:
    """The dotted name of an attribute/name chain ('' if not one)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_bare_set(node: ast.AST) -> bool:
    """A set display, set comprehension, or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        return isinstance(func, ast.Name) and func.id in ("set", "frozenset")
    return False


def _is_dict_view(node: ast.AST) -> bool:
    """A call to ``.items()`` / ``.keys()`` / ``.values()``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("items", "keys", "values")
        and not node.args
        and not node.keywords
    )


# ------------------------------------------------------------ rule context


class Context:
    """Per-file state the engine threads through every rule hook."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        #: line numbers of enclosing ``for`` loops iterating a dict view
        #: (maintained by the engine; consumed by heappush-unsorted)
        self.dict_view_loops: List[int] = []

    def add(self, rule: "Rule", node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                rule=rule.id,
                message=message,
                severity=rule.severity,
            )
        )


# ------------------------------------------------------------ rule base


class Rule:
    """One pluggable convention.

    Subclasses set :attr:`id` / :attr:`summary`, override
    :meth:`applies_to` for path scoping, and implement whichever hooks
    they need.  Hooks must be side-effect-free apart from
    ``ctx.add(...)`` — the engine calls every in-scope rule from a
    single AST walk.
    """

    #: stable rule identifier (used in findings, suppressions, fixtures)
    id: str = ""
    #: one-line description for the catalog and DESIGN.md §12 table
    summary: str = ""
    severity: str = SEV_ERROR

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (normalized, ``/``-joined)."""
        return True

    # --- hooks (no-ops by default) ------------------------------------
    def on_call(self, node: ast.Call, ctx: Context) -> None:
        """Every ``ast.Call`` in the module."""

    def on_iteration(self, node: ast.AST, iter_node: ast.AST, ctx: Context) -> None:
        """Every ``for``/``async for`` statement and comprehension
        generator; ``iter_node`` is the iterable expression."""

    def on_compare(self, node: ast.Compare, ctx: Context) -> None:
        """Every comparison expression."""

    def on_function(self, node: ast.AST, ctx: Context) -> None:
        """Every function/lambda definition (sync or async)."""


#: rule id -> singleton instance, in registration order
REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index the rule by id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if rule.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (deterministic catalog order)."""
    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]


def rules_by_id(ids: Iterable[str]) -> List[Rule]:
    """Resolve rule ids to instances (raises ``KeyError`` on unknowns)."""
    return [REGISTRY[rule_id] for rule_id in ids]


# =================================================================
# migrated determinism rules (tools/lint_determinism.py heritage)
# =================================================================


@register
class WallClockRule(Rule):
    id = "wall-clock"
    summary = (
        "wall-clock reads (time.time, datetime.now, ...); simulated time "
        "comes from Simulator.now"
    )

    #: dotted-call suffixes that read a wall clock.  ``time.monotonic``
    #: is deliberately absent: the campaign runner and CLI use it for
    #: operator-facing timeout bookkeeping that never feeds back into
    #: simulated behaviour.
    CALLS = (
        "date.today",
        "datetime.now",
        "datetime.today",
        "datetime.utcnow",
        "time.time",
        "time.time_ns",
    )

    def on_call(self, node: ast.Call, ctx: Context) -> None:
        dotted = _dotted(node.func)
        for suffix in self.CALLS:
            if dotted == suffix or dotted.endswith("." + suffix):
                ctx.add(
                    self, node,
                    f"{dotted}() reads the wall clock; use the simulated "
                    f"clock (Simulator.now)",
                )
                return


@register
class PerfCounterRule(Rule):
    id = "perf-counter"
    summary = (
        "perf_counter stopwatching outside the benchmark harness "
        "(benchmarks/, repro/bench.py)"
    )

    CALLS = ("time.perf_counter", "time.perf_counter_ns")

    def applies_to(self, path: str) -> bool:
        if path.endswith("repro/bench.py"):
            return False
        return not any(
            part == "benchmarks" for part in path.split("/")
        )

    def on_call(self, node: ast.Call, ctx: Context) -> None:
        dotted = _dotted(node.func)
        for suffix in self.CALLS:
            if dotted == suffix or dotted.endswith("." + suffix):
                ctx.add(
                    self, node,
                    f"{dotted}() stopwatches wall time; only the benchmark "
                    f"harness (benchmarks/, repro/bench.py) may time itself",
                )
                return


@register
class ModuleRandomRule(Rule):
    id = "module-random"
    summary = (
        "calls through the shared `random` module RNG; draw from seeded "
        "repro.sim.randomness streams"
    )

    #: attributes of ``random`` that are fine to call (seeded or
    #: explicitly operator-facing RNG construction)
    ALLOWED = ("Random", "SystemRandom")

    def applies_to(self, path: str) -> bool:
        # sim/randomness.py is the one place allowed to touch `random`
        return not path.endswith("sim/randomness.py")

    def on_call(self, node: ast.Call, ctx: Context) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr not in self.ALLOWED
        ):
            ctx.add(
                self, node,
                f"random.{func.attr}() uses the shared module RNG; draw "
                f"from a seeded repro.sim.randomness stream",
            )


@register
class SetIterationRule(Rule):
    id = "set-iteration"
    summary = (
        "iteration over a bare set display/call: hash-order dependent "
        "under unpinned PYTHONHASHSEED"
    )

    def on_iteration(self, node: ast.AST, iter_node: ast.AST, ctx: Context) -> None:
        if _is_bare_set(iter_node):
            ctx.add(
                self, node,
                "iteration over a bare set is hash-order dependent; "
                "sort it (or iterate something ordered)",
            )


@register
class SpanIdRule(Rule):
    id = "span-id"
    summary = (
        "id()/hash() in the span/export layer; identity must come from "
        "derive_seed or sequence counters"
    )

    #: modules whose *output* (span ids, export lanes) must be
    #: byte-identical across processes
    STRICT_SUFFIXES = ("obs/spans.py", "obs/export.py")

    def applies_to(self, path: str) -> bool:
        return path.endswith(self.STRICT_SUFFIXES)

    def on_call(self, node: ast.Call, ctx: Context) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("id", "hash"):
            ctx.add(
                self, node,
                f"{func.id}() depends on interpreter object identity; "
                f"span/export identity must derive from "
                f"sim.randomness.derive_seed or sequence counters",
            )


# =================================================================
# simulation-safety rules (new in repro.lint)
# =================================================================


@register
class UnsortedJsonRule(Rule):
    id = "unsorted-json"
    summary = (
        "json.dump(s) without sort_keys=True on report/bundle "
        "serialization paths; byte-identity needs canonical key order"
    )

    #: the serialization paths whose output the replay/report machinery
    #: compares byte-for-byte
    SCOPES = (
        "repro/campaign",
        "repro/check",
        "repro/obs",
        "repro/verify",
    )

    def applies_to(self, path: str) -> bool:
        return path.endswith("repro/bench.py") or any(
            _has_dir(path, scope) or _has_dir(path, "src/" + scope)
            for scope in self.SCOPES
        )

    def on_call(self, node: ast.Call, ctx: Context) -> None:
        dotted = _dotted(node.func)
        if dotted not in ("json.dump", "json.dumps") and not dotted.endswith(
            (".json.dump", ".json.dumps")
        ):
            return
        for keyword in node.keywords:
            if keyword.arg == "sort_keys":
                value = keyword.value
                if isinstance(value, ast.Constant) and value.value is True:
                    return
                break
        ctx.add(
            self, node,
            f"{dotted}() without sort_keys=True on a serialization path; "
            f"reports and bundles must be byte-identical across runs",
        )


@register
class SimTimeEqRule(Rule):
    id = "sim-time-eq"
    summary = (
        "== / != between simulated time (.now) and a computed time "
        "expression; float arithmetic makes exact equality fragile"
    )

    def applies_to(self, path: str) -> bool:
        # tests deliberately pin exact (integer) timestamps; the model
        # itself must never branch on exact equality with derived times
        return _in_repro_source(path)

    @staticmethod
    def _mentions_now(expr: ast.AST) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Attribute) and sub.attr == "now":
                return True
            if isinstance(sub, ast.Name) and sub.id == "now":
                return True
        return False

    @staticmethod
    def _is_computed(expr: ast.AST) -> bool:
        """Arithmetic or a call anywhere in the operand: the value is
        *derived*, so float equality depends on rounding history.
        Comparisons between stored timestamps (names, attributes,
        subscripts) stay exact and are the engine's legitimate
        same-timestamp draining idiom."""
        return any(
            isinstance(sub, (ast.BinOp, ast.Call)) for sub in ast.walk(expr)
        )

    def on_compare(self, node: ast.Compare, ctx: Context) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        if not any(self._mentions_now(operand) for operand in operands):
            return
        if any(self._is_computed(operand) for operand in operands):
            ctx.add(
                self, node,
                "== / != between simulated time and a computed time "
                "expression; float clock arithmetic makes exact equality "
                "timing-fragile — use ordered comparison or an explicit "
                "tolerance",
            )


@register
class UnseededRngRule(Rule):
    id = "unseeded-rng"
    summary = (
        "random.Random(...) seeded from anything but "
        "sim.randomness.derive_seed"
    )

    def applies_to(self, path: str) -> bool:
        return _in_repro_source(path)

    def on_call(self, node: ast.Call, ctx: Context) -> None:
        if _dotted(node.func) != "random.Random":
            return
        if len(node.args) == 1 and not node.keywords:
            arg = node.args[0]
            if isinstance(arg, ast.Call):
                seed_fn = _dotted(arg.func)
                if seed_fn == "derive_seed" or seed_fn.endswith(".derive_seed"):
                    return
        ctx.add(
            self, node,
            "random.Random(...) must be seeded from "
            "sim.randomness.derive_seed(master_seed, name) so streams "
            "stay independent and replayable",
        )


@register
class MutableDefaultRule(Rule):
    id = "mutable-default"
    summary = "mutable default argument ([] / {} / set()) in repro source"

    def applies_to(self, path: str) -> bool:
        return _in_repro_source(path)

    @staticmethod
    def _is_mutable(default: ast.AST) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(default, ast.Call):
            func = default.func
            return isinstance(func, ast.Name) and func.id in (
                "list", "dict", "set", "bytearray",
            )
        return False

    def on_function(self, node: ast.AST, ctx: Context) -> None:
        args = getattr(node, "args", None)
        if args is None:
            return
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                ctx.add(
                    self, node,
                    "mutable default argument is shared across calls and "
                    "across trials in one worker; default to None and "
                    "construct inside the body",
                )
                return


@register
class ExecutorLambdaRule(Rule):
    id = "executor-lambda"
    summary = (
        "lambda submitted to an executor pool; unpicklable under "
        "ProcessPoolExecutor worker fan-out"
    )

    def applies_to(self, path: str) -> bool:
        return _in_repro_source(path)

    def on_call(self, node: ast.Call, ctx: Context) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in ("submit", "map")):
            return
        if any(isinstance(arg, ast.Lambda) for arg in node.args):
            ctx.add(
                self, node,
                f".{func.attr}(lambda ...) cannot be pickled to a "
                f"ProcessPoolExecutor worker; submit a module-level "
                f"function instead",
            )


@register
class HeappushUnsortedRule(Rule):
    id = "heappush-unsorted"
    summary = (
        "heappush fed from dict-view iteration without sorted(); heap "
        "tie-break order then depends on insertion history"
    )

    def applies_to(self, path: str) -> bool:
        return _in_repro_source(path)

    def on_call(self, node: ast.Call, ctx: Context) -> None:
        if not ctx.dict_view_loops:
            return
        dotted = _dotted(node.func)
        if dotted == "heappush" or dotted.endswith(".heappush"):
            ctx.add(
                self, node,
                "heappush inside iteration over a dict view: equal-priority "
                "entries inherit insertion order — wrap the iterable in "
                "sorted(...) so the heap is populated canonically",
            )


@register
class FlowDictIterationRule(Rule):
    id = "flow-dict-iteration"
    summary = (
        "unsorted iteration over a dict view inside the fluid backend "
        "(repro/sim/flow); flow-id dict order must be canonical"
    )

    def applies_to(self, path: str) -> bool:
        # the fluid backend accumulates floats and schedules events per
        # flow; every iteration order over a flow-keyed dict can reach a
        # rate trajectory, so the whole package must iterate canonically
        return _has_dir(path, "repro/sim/flow") or _has_dir(
            path, "src/repro/sim/flow"
        )

    def on_iteration(self, node: ast.AST, iter_node: ast.AST, ctx: Context) -> None:
        if _is_dict_view(iter_node):
            ctx.add(
                self, node,
                "iteration over a dict view in the fluid backend inherits "
                "insertion order; float accumulation and event scheduling "
                "make that order observable — iterate sorted(names) and "
                "index, or wrap .items() in sorted(...)",
            )


@register
class UnusedSuppressionRule(Rule):
    id = "unused-suppression"
    summary = (
        "`# repro-lint: ignore[...]` that suppressed nothing (stale or "
        "misspelled rule id)"
    )

    # engine-implemented: the engine emits these findings after matching
    # suppressions against raw findings; the rule class exists so the id
    # appears in the catalog, the selftest diagonal, and --list output.


#: the five rules migrated from tools/lint_determinism.py — the shim
#: runs exactly these to preserve the historical contract
DETERMINISM_RULE_IDS: Tuple[str, ...] = (
    "wall-clock",
    "perf-counter",
    "module-random",
    "set-iteration",
    "span-id",
)


__all__ = [
    "Context",
    "DETERMINISM_RULE_IDS",
    "REGISTRY",
    "Rule",
    "all_rules",
    "normalize_path",
    "register",
    "rules_by_id",
]
