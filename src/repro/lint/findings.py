"""Finding model shared by every lint rule.

A :class:`Finding` is one violation at one source location.  Findings
order by ``(path, line, rule, message)`` so that a lint run over the
same tree is byte-identical regardless of filesystem enumeration order
or rule registration order — the same determinism contract the rest of
the reproduction holds itself to (DESIGN.md §12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

#: a violation that must fail CI
SEV_ERROR = "error"
#: advisory only; reported but never changes the exit code on its own
SEV_WARNING = "warning"

_SEVERITIES = (SEV_ERROR, SEV_WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One simulation-safety violation."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = SEV_ERROR

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Finding":
        severity = str(data.get("severity", SEV_ERROR))
        if severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        line = data["line"]
        if not isinstance(line, int) or isinstance(line, bool):
            raise ValueError(f"line must be an int, got {line!r}")
        return cls(
            path=str(data["path"]),
            line=line,
            rule=str(data["rule"]),
            message=str(data["message"]),
            severity=severity,
        )
