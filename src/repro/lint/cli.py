"""``repro lint``: the operational entry point of the analyzer.

Shares the 0/1/2 exit-code convention of every other operational
subcommand: 0 = clean (or selftest diagonal fully proven), 1 =
findings (or a selftest miss), 2 = usage error (missing target path,
unparseable source).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from .engine import iter_python_files, lint_paths
from .findings import Finding
from .rules import all_rules

#: schema version of the --json payload
JSON_VERSION = 1

#: directories scanned when no explicit targets are given
DEFAULT_TARGET_NAMES = ("src", "tests", "benchmarks", "tools")


def repo_root() -> pathlib.Path:
    """The checkout root (``src/repro/lint/cli.py`` -> three levels up)."""
    return pathlib.Path(__file__).resolve().parents[3]


def default_targets() -> List[pathlib.Path]:
    """The standard scan set, filtered to directories that exist."""
    root = repo_root()
    return [root / name for name in DEFAULT_TARGET_NAMES if (root / name).is_dir()]


def report_to_json(findings: Sequence[Finding], files: int) -> str:
    """The deterministic ``--json`` payload (sorted findings, counts)."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_VERSION,
        "files": files,
        "findings": [f.to_dict() for f in sorted(findings)],
        "counts": counts,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def findings_from_json(text: str) -> List[Finding]:
    """Parse a ``--json`` payload back into findings (schema round-trip)."""
    payload = json.loads(text)
    if payload.get("version") != JSON_VERSION:
        raise ValueError(f"unsupported lint report version {payload.get('version')!r}")
    return [Finding.from_dict(item) for item in payload["findings"]]


def render_catalog() -> str:
    """The rule catalog (``--list``): id, severity, summary per rule."""
    lines = ["repro lint rule catalog"]
    for rule in all_rules():
        lines.append(f"  {rule.id:<20} [{rule.severity}] {rule.summary}")
    lines.append(
        "suppress one finding with a trailing "
        "`# repro-lint: ignore[rule-id]` comment"
    )
    return "\n".join(lines)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", type=pathlib.Path,
        help="files/directories to lint (default: src tests benchmarks tools)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the findings report as JSON",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="run the seeded-violation corpus: each fixture must be "
        "caught by exactly its rule (the diagonal)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_rules",
        help="print the rule catalog and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` for parsed ``args``; returns the exit code."""
    if args.list_rules:
        print(render_catalog())
        return 0
    if args.selftest:
        from .selftest import render_selftest, run_selftest

        results = run_selftest()
        print(render_selftest(results))
        return 0 if all(r.ok for r in results) else 1

    targets = list(args.paths) or default_targets()
    if not targets:
        print("no lint targets found", file=sys.stderr)
        return 2
    missing = [t for t in targets if not t.exists()]
    if missing:
        print(
            f"no such path(s): {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2
    try:
        findings = lint_paths(targets)
    except SyntaxError as exc:
        print(f"cannot parse: {exc}", file=sys.stderr)
        return 2
    files = len(iter_python_files(targets))
    if args.json:
        print(report_to_json(findings, files))
    else:
        for finding in findings:
            print(finding)
        if not findings:
            print(
                f"lint clean: {files} file(s), "
                f"{len(all_rules())} rule(s), 0 findings"
            )
    if findings:
        print(f"{len(findings)} lint finding(s)", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simulation-safety static analysis (see DESIGN.md §12)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
