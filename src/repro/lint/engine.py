"""The analysis engine: one parse per file, every rule in one walk.

``lint_source`` parses a module once, builds the suppression table from
``# repro-lint: ignore[rule-id]`` trailing comments, runs a single
:class:`ast.NodeVisitor` that fans node events out to every rule in
scope for the path, then reconciles findings against suppressions:

* a finding whose line carries a matching suppression is dropped and
  marks that suppression entry *used*;
* a suppression entry that suppressed nothing becomes an
  ``unused-suppression`` finding (stale suppressions rot — they hide
  future regressions at that line);
* ``unused-suppression`` findings are themselves unsuppressible.

Findings come back sorted by ``(path, line, rule)``, so output order is
independent of rule registration order and directory enumeration order.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding
from .rules import (
    Context,
    REGISTRY,
    Rule,
    _is_dict_view,
    all_rules,
    normalize_path,
)

#: trailing-comment suppression marker; accepts a comma-separated rule
#: id list in the brackets
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_\-\s,]*)\]"
)

#: the meta-rule the engine itself emits
_UNUSED_ID = "unused-suppression"


class Suppression:
    """One rule id listed in one suppression comment."""

    def __init__(self, line: int, rule_id: str) -> None:
        self.line = line
        self.rule_id = rule_id
        self.used = False


def parse_suppressions(source: str) -> List[Suppression]:
    """Every ``(line, rule-id)`` suppression entry in ``source``.

    One comment may list several ids (``ignore[wall-clock, span-id]``);
    each id is tracked independently so a half-stale comment still
    reports its dead half.
    """
    entries: List[Suppression] = []
    seen: Set[Tuple[int, str]] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, IndentationError):
        # the AST parse will report the syntax problem; no suppressions
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        for raw in match.group(1).split(","):
            rule_id = raw.strip()
            if rule_id and (lineno, rule_id) not in seen:
                seen.add((lineno, rule_id))
                entries.append(Suppression(lineno, rule_id))
    return entries


class _MultiRuleVisitor(ast.NodeVisitor):
    """Dispatches one AST walk to every active rule's hooks."""

    def __init__(self, ctx: Context, rules: Sequence[Rule]) -> None:
        self.ctx = ctx
        self.rules = rules

    # --- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        for rule in self.rules:
            rule.on_call(node, self.ctx)
        self.generic_visit(node)

    # --- loops (with dict-view context for heap ordering rules) --------
    def _visit_loop(self, node: ast.For | ast.AsyncFor) -> None:
        for rule in self.rules:
            rule.on_iteration(node, node.iter, self.ctx)
        if _is_dict_view(node.iter):
            self.ctx.dict_view_loops.append(node.lineno)
            self.generic_visit(node)
            self.ctx.dict_view_loops.pop()
        else:
            self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    # --- comprehensions ------------------------------------------------
    def _visit_comprehension(
        self,
        node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp,
    ) -> None:
        for comp in node.generators:
            for rule in self.rules:
                rule.on_iteration(node, comp.iter, self.ctx)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    # --- comparisons ---------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        for rule in self.rules:
            rule.on_compare(node, self.ctx)
        self.generic_visit(node)

    # --- function definitions ------------------------------------------
    def _visit_function(self, node: ast.AST) -> None:
        for rule in self.rules:
            rule.on_function(node, self.ctx)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node)


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module's source text.

    ``path`` labels findings and drives per-rule scoping; ``rules``
    restricts the pass (default: the full registry).  Raises
    ``SyntaxError`` on unparseable input — callers map that to the
    usage-error exit code.
    """
    normalized = normalize_path(path)
    active = [
        rule
        for rule in (all_rules() if rules is None else rules)
        if rule.applies_to(normalized)
    ]
    known_ids: Set[str] = {rule.id for rule in active}
    tree = ast.parse(source, filename=str(path))
    ctx = Context(str(path))
    _MultiRuleVisitor(ctx, active).visit(tree)

    suppressions = parse_suppressions(source)
    by_line: Dict[Tuple[int, str], Suppression] = {
        (entry.line, entry.rule_id): entry for entry in suppressions
    }
    kept: List[Finding] = []
    for finding in ctx.findings:
        entry = by_line.get((finding.line, finding.rule))
        if entry is not None:
            entry.used = True
        else:
            kept.append(finding)

    if _UNUSED_ID in REGISTRY and (rules is None or _UNUSED_ID in known_ids):
        unused_rule = REGISTRY[_UNUSED_ID]
        for entry in suppressions:
            if entry.used:
                continue
            detail = (
                "suppresses a rule that did not fire here"
                if entry.rule_id in REGISTRY
                else f"unknown rule id {entry.rule_id!r}"
            )
            kept.append(
                Finding(
                    path=str(path),
                    line=entry.line,
                    rule=_UNUSED_ID,
                    message=(
                        f"# repro-lint: ignore[{entry.rule_id}] {detail}; "
                        f"remove the stale suppression"
                    ),
                    severity=unused_rule.severity,
                )
            )
    return sorted(kept)


def iter_python_files(targets: Iterable[pathlib.Path]) -> List[pathlib.Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: List[pathlib.Path] = []
    for root in targets:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    return files


def lint_paths(
    targets: Iterable[pathlib.Path],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for file in iter_python_files(targets):
        findings.extend(lint_source(file.read_text(), str(file), rules=rules))
    return sorted(findings)
