"""Pluggable simulation-safety static analysis (``repro lint``).

The reproduction's headline guarantees — byte-identical replay bundles,
worker-count-invariant campaign reports, cross-backend differential
agreement — all rest on one convention: every event-emitting path is a
pure function of the seed and the simulated clock.  This package turns
that convention (and its serialization/picklability corollaries) into a
first-class, self-tested analyzer, the same way :mod:`repro.verify`
turned wiring invariants into certified checks.

Layout:

* :mod:`repro.lint.findings` — the :class:`Finding` model;
* :mod:`repro.lint.rules` — the :class:`Rule` registry and catalog;
* :mod:`repro.lint.engine` — single-parse multi-rule visitor plus
  ``# repro-lint: ignore[rule-id]`` suppression handling;
* :mod:`repro.lint.selftest` — the seeded-violation diagonal;
* :mod:`repro.lint.cli` — the ``repro lint`` subcommand.

See DESIGN.md §12 for the architecture and the full rule catalog.
"""

from __future__ import annotations

from .engine import lint_paths, lint_source, parse_suppressions
from .findings import SEV_ERROR, SEV_WARNING, Finding
from .rules import (
    DETERMINISM_RULE_IDS,
    REGISTRY,
    Context,
    Rule,
    all_rules,
    register,
    rules_by_id,
)
from .selftest import FIXTURES, SelftestResult, render_selftest, run_selftest

__all__ = [
    "Context",
    "DETERMINISM_RULE_IDS",
    "FIXTURES",
    "Finding",
    "REGISTRY",
    "Rule",
    "SEV_ERROR",
    "SEV_WARNING",
    "SelftestResult",
    "all_rules",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "register",
    "render_selftest",
    "rules_by_id",
    "run_selftest",
]
