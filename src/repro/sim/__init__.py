"""Discrete-event simulation substrate.

The paper evaluated F²Tree on a VMware testbed and in NS-3/DCE with real
Quagga routers; this package is the pure-Python substitute: a deterministic
event engine (:mod:`repro.sim.engine`), integer-nanosecond time units
(:mod:`repro.sim.units`) and named seeded random streams
(:mod:`repro.sim.randomness`).
"""

from .engine import (
    EventHandle,
    PRIORITY_CONTROL,
    PRIORITY_NORMAL,
    SimulationError,
    Simulator,
    Timer,
)
from .randomness import RandomStreams, lognormal_from_mean_sigma
from .units import (
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    Time,
    microseconds,
    milliseconds,
    nanoseconds,
    seconds,
    to_microseconds,
    to_milliseconds,
    to_seconds,
    transmission_delay,
)

__all__ = [
    "EventHandle",
    "PRIORITY_CONTROL",
    "PRIORITY_NORMAL",
    "SimulationError",
    "Simulator",
    "Timer",
    "RandomStreams",
    "lognormal_from_mean_sigma",
    "MICROSECOND",
    "MILLISECOND",
    "NANOSECOND",
    "SECOND",
    "Time",
    "microseconds",
    "milliseconds",
    "nanoseconds",
    "seconds",
    "to_microseconds",
    "to_milliseconds",
    "to_seconds",
    "transmission_delay",
]
