"""Discrete-event simulation core.

A :class:`Simulator` owns a priority queue of events ordered by
``(time, priority, sequence)``.  Cancellation is O(1) (events are flagged and
skipped when popped).  All model code receives the simulator instance and
schedules callbacks; there are no threads and no wall-clock dependence, so a
given (model, seed) pair always produces the identical event trace.

Design notes
------------
* Time is integer nanoseconds (:mod:`repro.sim.units`).
* ``priority`` breaks ties between events scheduled for the same instant;
  lower runs first.  Model code rarely needs it, but the data plane uses it
  so that, e.g., a link-down event at time *t* takes effect before packet
  deliveries scheduled for the same *t*.
* The ``sequence`` counter makes ordering total and deterministic.
* Heap entries are plain 5-slot lists ``[time, priority, sequence,
  callback, args]`` — comparison is C-level list comparison that never
  reaches the callback slot (``sequence`` is unique), which is what makes
  ``heappush``/``heappop`` cheap; the ``order=True`` dataclass this
  replaced spent most of every sift in generated ``__lt__`` calls.  The
  callback slot doubles as the lifecycle flag: a callable is live,
  ``None`` is cancelled, the ``_DONE`` sentinel marks an executed event.
* Cancelled events are tracked and the heap is **lazily compacted** when
  more than half of it is dead weight, so long runs with heavy
  :class:`Timer` restart churn keep the queue proportional to the number of
  *live* events.
* Every simulator carries an :class:`~repro.obs.Observability` facade
  (``sim.obs``) — disabled by default, in which case the loop pays one
  boolean check per event and allocates nothing.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Optional

from .units import Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability

#: Priority for control events (failures, timers) — runs before deliveries.
PRIORITY_CONTROL = 0
#: Default priority for ordinary model events.
PRIORITY_NORMAL = 10

#: Queues smaller than this are never compacted (rebuild cost dwarfs gain).
_COMPACT_MIN_QUEUE = 64

#: heap-entry slot indices (see module docstring)
_TIME, _PRIORITY, _SEQ, _CALLBACK, _ARGS = range(5)

#: callback-slot sentinel for an event that already executed (a cancelled
#: event stores ``None`` there instead)
_DONE: Any = object()

#: module-level aliases: every schedule/pop site pays a plain global load
#: instead of a ``heapq.`` attribute lookup
_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


#: one scheduled event: ``[time, priority, sequence, callback, args]``
_Entry = list


class EventHandle:
    """Opaque handle for a scheduled event; supports cancellation."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Entry, sim: "Simulator") -> None:
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> Time:
        """The simulated time at which the event fires."""
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran or was cancelled."""
        entry = self._entry
        callback = entry[_CALLBACK]
        if callback is None or callback is _DONE:
            return
        entry[_CALLBACK] = None
        self._sim._note_cancelled()


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(microseconds(10), my_callback, arg1, arg2)
        sim.run(until=seconds(1))
    """

    def __init__(self, obs: Optional["Observability"] = None) -> None:
        if obs is None:
            # Local import: repro.obs transitively imports repro.sim.units,
            # so a module-level import here would be circular.
            from ..obs import Observability

            obs = Observability(enabled=False)
        #: the simulator's observability facade (trace recorder + metrics)
        self.obs = obs
        self._queue: list[_Entry] = []
        self._now: Time = 0
        self._sequence: int = 0
        self._running = False
        self._events_processed = 0
        self._cancelled_pending = 0

    @property
    def now(self) -> Time:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of *live* events still scheduled (cancelled excluded)."""
        return len(self._queue) - self._cancelled_pending

    def counters(self) -> dict:
        """A cheap, JSON-safe snapshot of the engine's lifetime counters.

        Deterministic (pure simulation state, no wall clocks); consumed
        by the span builder's root-span attrs and the flight recorder.
        """
        return {
            "now_ns": self._now,
            "events_processed": self._events_processed,
            "pending_events": self.pending_events,
        }

    def _note_cancelled(self) -> None:
        """Bookkeeping for a cancellation; compacts the heap when more than
        half of it is cancelled dead weight (lazy, amortised O(1)).

        Compaction mutates the queue **in place** (slice assignment, not
        rebinding): ``run()`` hoists the queue into a local, so a
        cancellation from inside a callback must never swap the list
        object out from under the running loop.
        """
        self._cancelled_pending += 1
        queue = self._queue
        if (
            len(queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled_pending * 2 > len(queue)
        ):
            queue[:] = [e for e in queue if e[_CALLBACK] is not None]
            heapq.heapify(queue)
            self._cancelled_pending = 0

    def schedule(
        self,
        delay: Time,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        Deliberately does **not** route through :meth:`schedule_at` —
        this is the hottest scheduling call and the extra frame shows up
        in every profile.  Subclasses that audit scheduling (e.g. the
        checker's ``CheckedSimulator``) must override both methods.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        entry = [self._now + delay, priority, self._sequence, callback, args]
        self._sequence += 1
        _heappush(self._queue, entry)
        return EventHandle(entry, self)

    def schedule_at(
        self,
        time: Time,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        entry = [time, priority, self._sequence, callback, args]
        self._sequence += 1
        _heappush(self._queue, entry)
        return EventHandle(entry, self)

    def run(self, until: Optional[Time] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Events scheduled exactly at ``until`` do **not** run; the clock is
        left at ``until`` (or at the last event time if the queue drained).

        The loop body is the hottest code in the repository: ``heappop``
        and the queue are hoisted into locals, entries are plain lists
        (no attribute lookups), and with observability disabled nothing
        is allocated per event.  ``events_processed`` is published once
        on exit (no model code reads it mid-run).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        obs = self.obs
        enabled = obs.enabled
        queue = self._queue
        pop = _heappop
        done = _DONE
        try:
            # Every path drains *batches*: after executing one event, all
            # further events sharing its timestamp run in an inner loop
            # that skips the clock store and the ``until`` boundary check
            # (times are equal, so both are already decided).  Execution
            # order is untouched — the inner loop pops from the same heap
            # the outer loop would, including events a callback schedules
            # *at* the current instant (delay-0 cascades stay in batch).
            # Failure storms make these batches big: detection, flooding,
            # and delivery events pile onto shared timestamps.
            if not enabled and max_events is None and until is None:
                # drain-to-empty fast path (the most common call shape):
                # pop-first — no head peek, no boundary check, zero
                # allocations per event
                while queue:
                    entry = pop(queue)
                    callback = entry[3]
                    if callback is None:
                        self._cancelled_pending -= 1
                        continue
                    now = entry[0]
                    self._now = now
                    entry[3] = done
                    callback(*entry[4])
                    executed += 1
                    while queue and queue[0][0] == now:
                        entry = pop(queue)
                        callback = entry[3]
                        if callback is None:
                            self._cancelled_pending -= 1
                            continue
                        entry[3] = done
                        callback(*entry[4])
                        executed += 1
            elif enabled or max_events is not None:
                if enabled:
                    executed_ctr = obs.metrics.counter("sim.events_executed")
                    cancelled_ctr = obs.metrics.counter("sim.cancelled_skipped")
                    depth_gauge = obs.metrics.gauge("sim.queue_depth")
                while queue:
                    entry = queue[0]
                    callback = entry[3]
                    if callback is None:
                        pop(queue)
                        self._cancelled_pending -= 1
                        if enabled:
                            cancelled_ctr.inc()
                        continue
                    if until is not None and entry[0] >= until:
                        self._now = until
                        return
                    pop(queue)
                    now = entry[0]
                    self._now = now
                    while True:
                        entry[3] = done
                        callback(*entry[4])
                        executed += 1
                        if enabled:
                            executed_ctr.inc()
                            depth_gauge.set(len(queue))
                        if max_events is not None and executed >= max_events:
                            return
                        while queue and queue[0][0] == now:
                            entry = pop(queue)
                            callback = entry[3]
                            if callback is not None:
                                break
                            self._cancelled_pending -= 1
                            if enabled:
                                cancelled_ctr.inc()
                        else:
                            break
            else:
                # obs-disabled run-until path: one cancellation check,
                # one boundary check per timestamp, zero allocations
                while queue:
                    entry = queue[0]
                    callback = entry[3]
                    if callback is None:
                        pop(queue)
                        self._cancelled_pending -= 1
                        continue
                    if until is not None and entry[0] >= until:
                        self._now = until
                        return
                    pop(queue)
                    now = entry[0]
                    self._now = now
                    entry[3] = done
                    callback(*entry[4])
                    executed += 1
                    while queue and queue[0][0] == now:
                        entry = pop(queue)
                        callback = entry[3]
                        if callback is None:
                            self._cancelled_pending -= 1
                            continue
                        entry[3] = done
                        callback(*entry[4])
                        executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._events_processed += executed
            self._running = False

    def run_until(self, deadline: Time, max_events: Optional[int] = None) -> None:
        """Run up to an absolute ``deadline``, validating it first.

        Unlike ``run(until=...)``, a non-positive or already-passed
        deadline raises :class:`SimulationError` instead of silently
        rewinding the clock — a campaign trial handed a bad deadline
        (e.g. a warmup/duration arithmetic bug producing <= 0) fails
        fast with a clear message rather than wedging its worker.
        """
        if deadline <= 0:
            raise SimulationError(
                f"run_until needs a positive deadline, got {deadline}"
            )
        if deadline < self._now:
            raise SimulationError(
                f"run_until deadline {deadline} is in the past (now {self._now})"
            )
        self.run(until=deadline, max_events=max_events)

    def step(self) -> bool:
        """Execute exactly one pending event; returns False if queue empty.

        Cancelled entries encountered on the way are drained with the same
        ``_cancelled_pending`` bookkeeping as :meth:`run`, so mixing
        ``step()`` and ``run()`` keeps :attr:`pending_events` exact.
        """
        queue = self._queue
        while queue:
            entry = _heappop(queue)
            callback = entry[3]
            if callback is None:
                self._cancelled_pending -= 1
                continue
            self._now = entry[0]
            entry[3] = _DONE
            callback(*entry[4])
            self._events_processed += 1
            return True
        return False


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Encapsulates the schedule/cancel/reschedule pattern used throughout the
    routing and transport code (retransmission timers, SPF hold timers...).
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """True while the timer is scheduled and has not fired."""
        return self._handle is not None and not self._handle.cancelled

    @property
    def expiry(self) -> Optional[Time]:
        """Absolute firing time, or None when not armed."""
        if self.armed:
            assert self._handle is not None
            return self._handle.time
        return None

    def start(self, delay: Time) -> None:
        """(Re)arm the timer to fire ``delay`` ns from now."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire, priority=PRIORITY_CONTROL)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()
