"""Discrete-event simulation core.

A :class:`Simulator` owns a priority queue of events ordered by
``(time, priority, sequence)``.  Cancellation is O(1) (events are flagged and
skipped when popped).  All model code receives the simulator instance and
schedules callbacks; there are no threads and no wall-clock dependence, so a
given (model, seed) pair always produces the identical event trace.

Design notes
------------
* Time is integer nanoseconds (:mod:`repro.sim.units`).
* ``priority`` breaks ties between events scheduled for the same instant;
  lower runs first.  Model code rarely needs it, but the data plane uses it
  so that, e.g., a link-down event at time *t* takes effect before packet
  deliveries scheduled for the same *t*.
* The ``sequence`` counter makes ordering total and deterministic.
* Cancelled events are tracked and the heap is **lazily compacted** when
  more than half of it is dead weight, so long runs with heavy
  :class:`Timer` restart churn keep the queue proportional to the number of
  *live* events.
* Every simulator carries an :class:`~repro.obs.Observability` facade
  (``sim.obs``) — disabled by default, in which case the loop pays one
  boolean check per event and nothing else.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from .units import Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability

#: Priority for control events (failures, timers) — runs before deliveries.
PRIORITY_CONTROL = 0
#: Default priority for ordinary model events.
PRIORITY_NORMAL = 10

#: Queues smaller than this are never compacted (rebuild cost dwarfs gain).
_COMPACT_MIN_QUEUE = 64


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


@dataclass(order=True)
class _Event:
    time: Time
    priority: int
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    done: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle for a scheduled event; supports cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> Time:
        """The simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran or was cancelled."""
        event = self._event
        if event.cancelled or event.done:
            return
        event.cancelled = True
        self._sim._note_cancelled()


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(microseconds(10), my_callback, arg1, arg2)
        sim.run(until=seconds(1))
    """

    def __init__(self, obs: Optional["Observability"] = None) -> None:
        if obs is None:
            # Local import: repro.obs transitively imports repro.sim.units,
            # so a module-level import here would be circular.
            from ..obs import Observability

            obs = Observability(enabled=False)
        #: the simulator's observability facade (trace recorder + metrics)
        self.obs = obs
        self._queue: list[_Event] = []
        self._now: Time = 0
        self._sequence: int = 0
        self._running = False
        self._events_processed = 0
        self._cancelled_pending = 0

    @property
    def now(self) -> Time:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of *live* events still scheduled (cancelled excluded)."""
        return len(self._queue) - self._cancelled_pending

    def _note_cancelled(self) -> None:
        """Bookkeeping for a cancellation; compacts the heap when more than
        half of it is cancelled dead weight (lazy, amortised O(1))."""
        self._cancelled_pending += 1
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0

    def schedule(
        self,
        delay: Time,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: Time,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        event = _Event(time, priority, self._sequence, callback, args)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    def run(self, until: Optional[Time] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Events scheduled exactly at ``until`` do **not** run; the clock is
        left at ``until`` (or at the last event time if the queue drained).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        obs = self.obs
        enabled = obs.enabled
        if enabled:
            executed_ctr = obs.metrics.counter("sim.events_executed")
            cancelled_ctr = obs.metrics.counter("sim.cancelled_skipped")
            depth_gauge = obs.metrics.gauge("sim.queue_depth")
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled_pending -= 1
                    if enabled:
                        cancelled_ctr.inc()
                    continue
                if until is not None and event.time >= until:
                    self._now = until
                    return
                heapq.heappop(self._queue)
                self._now = event.time
                event.done = True
                event.callback(*event.args)
                self._events_processed += 1
                executed += 1
                if enabled:
                    executed_ctr.inc()
                    depth_gauge.set(len(self._queue))
                if max_events is not None and executed >= max_events:
                    return
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until(self, deadline: Time, max_events: Optional[int] = None) -> None:
        """Run up to an absolute ``deadline``, validating it first.

        Unlike ``run(until=...)``, a non-positive or already-passed
        deadline raises :class:`SimulationError` instead of silently
        rewinding the clock — a campaign trial handed a bad deadline
        (e.g. a warmup/duration arithmetic bug producing <= 0) fails
        fast with a clear message rather than wedging its worker.
        """
        if deadline <= 0:
            raise SimulationError(
                f"run_until needs a positive deadline, got {deadline}"
            )
        if deadline < self._now:
            raise SimulationError(
                f"run_until deadline {deadline} is in the past (now {self._now})"
            )
        self.run(until=deadline, max_events=max_events)

    def step(self) -> bool:
        """Execute exactly one pending event; returns False if queue empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            event.done = True
            event.callback(*event.args)
            self._events_processed += 1
            return True
        return False


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Encapsulates the schedule/cancel/reschedule pattern used throughout the
    routing and transport code (retransmission timers, SPF hold timers...).
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """True while the timer is scheduled and has not fired."""
        return self._handle is not None and not self._handle.cancelled

    @property
    def expiry(self) -> Optional[Time]:
        """Absolute firing time, or None when not armed."""
        if self.armed:
            assert self._handle is not None
            return self._handle.time
        return None

    def start(self, delay: Time) -> None:
        """(Re)arm the timer to fire ``delay`` ns from now."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire, priority=PRIORITY_CONTROL)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()
