"""Discrete-event simulation core.

A :class:`Simulator` owns a priority queue of events ordered by
``(time, priority, sequence)``.  Cancellation is O(1) (events are flagged and
skipped when popped).  All model code receives the simulator instance and
schedules callbacks; there are no threads and no wall-clock dependence, so a
given (model, seed) pair always produces the identical event trace.

Design notes
------------
* Time is integer nanoseconds (:mod:`repro.sim.units`).
* ``priority`` breaks ties between events scheduled for the same instant;
  lower runs first.  Model code rarely needs it, but the data plane uses it
  so that, e.g., a link-down event at time *t* takes effect before packet
  deliveries scheduled for the same *t*.
* The ``sequence`` counter makes ordering total and deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .units import Time

#: Priority for control events (failures, timers) — runs before deliveries.
PRIORITY_CONTROL = 0
#: Default priority for ordinary model events.
PRIORITY_NORMAL = 10


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


@dataclass(order=True)
class _Event:
    time: Time
    priority: int
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle for a scheduled event; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> Time:
        """The simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran or was cancelled."""
        self._event.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(microseconds(10), my_callback, arg1, arg2)
        sim.run(until=seconds(1))
    """

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._now: Time = 0
        self._sequence: int = 0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> Time:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def schedule(
        self,
        delay: Time,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: Time,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        event = _Event(time, priority, self._sequence, callback, args)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def run(self, until: Optional[Time] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Events scheduled exactly at ``until`` do **not** run; the clock is
        left at ``until`` (or at the last event time if the queue drained).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time >= until:
                    self._now = until
                    return
                heapq.heappop(self._queue)
                self._now = event.time
                event.callback(*event.args)
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    return
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one pending event; returns False if queue empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._events_processed += 1
            return True
        return False


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Encapsulates the schedule/cancel/reschedule pattern used throughout the
    routing and transport code (retransmission timers, SPF hold timers...).
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """True while the timer is scheduled and has not fired."""
        return self._handle is not None and not self._handle.cancelled

    @property
    def expiry(self) -> Optional[Time]:
        """Absolute firing time, or None when not armed."""
        if self.armed:
            assert self._handle is not None
            return self._handle.time
        return None

    def start(self, delay: Time) -> None:
        """(Re)arm the timer to fire ``delay`` ns from now."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire, priority=PRIORITY_CONTROL)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()
