"""Max-min fair bandwidth allocation (progressive filling).

The fluid backend replaces per-packet queueing with the classic fluid
approximation: every link's capacity is divided max-min fairly among the
flows crossing it.  The solver is the textbook water-filling algorithm —
raise every unfrozen flow's rate uniformly until some link saturates (or
some flow hits its demand cap), freeze the flows that saturated, repeat
with the residual capacities.

Two engines implement the same algorithm over the same **flows×links
incidence in CSR form** (:func:`build_incidence`, the
:class:`~repro.topology.compact.CompactGraph` idiom applied to flows):

* ``python`` — the reference loop, index arithmetic over plain lists;
* ``numpy`` — every water-filling round as vectorized min / scatter-add
  operations (``np.bincount`` for crossing counts, ``np.add.reduceat``
  for the per-flow bottleneck test, ``np.subtract.at`` for the ordered
  residual update), which is what lets the fluid backend carry tens of
  thousands of flows per recompute.

The engines are **bitwise equal by construction**: both freeze flows in
sorted-row order, subtract residuals in the same element order
(``np.subtract.at`` applies its updates sequentially in array order, the
python loop walks the identical concatenated segment), and share one
tolerance-based bottleneck test (``share <= level * (1 + SHARE_EPS)``)
so float drift in the residuals can never make them freeze different
flow sets on degenerate equal-share topologies.  The engine contract
mirrors :mod:`repro.routing.spf_batch`: ``engine="auto"`` prefers numpy,
degrades to python, and numpy never becomes a hard dependency.

The implementation is deliberately **order-independent**: flows and
links are processed in sorted-id order at every step, and every frozen
rate is a pure function of (paths, capacities, demands) — never of
insertion order.  The hypothesis suite in ``tests/test_fairshare.py``
pins the defining properties (conservation, monotonicity, order
independence, cross-engine equality), and the differential cross-backend
harness relies on them: a corrupted solver is caught by the
``backend-agreement`` invariant (:mod:`repro.check.differential`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import (
    Any,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

try:  # numpy is an optional accelerator, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via engine="python"
    _np = None  # type: ignore[assignment]

#: flows and links are identified by any sortable hashable (the fluid
#: model uses strings / int pairs)
FlowId = Hashable
LinkId = Hashable

#: engine choices for :func:`max_min_rates` (the spf_batch contract)
ENGINES = ("auto", "numpy", "python")

#: Relative tolerance of the shared bottleneck / demand-cap tests.
#: Residual capacities accumulate float error across freezing rounds, so
#: "is this link saturated at the water level?" must not be an exact
#: comparison — a link whose per-flow share sits within one part in 1e12
#: of the level is treated as bottlenecked by *both* engines, which is
#: what keeps them freezing identical flow sets on degenerate
#: equal-share topologies.
SHARE_EPS = 1e-12


class FairShareError(ValueError):
    """A flow crosses a link with no declared capacity."""


def have_numpy() -> bool:
    """Whether the vectorized engine is available."""
    return _np is not None


def _resolve_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"unknown fair-share engine {engine!r}")
    if engine == "auto":
        return "numpy" if have_numpy() else "python"
    if engine == "numpy" and not have_numpy():
        raise RuntimeError("numpy engine requested but numpy is unavailable")
    return engine


# ------------------------------------------------------------- incidence


@dataclass(frozen=True)
class FlowIncidence:
    """Flows×links incidence in CSR form (sorted, canonical).

    Row ``r`` is the ``r``-th flow in sorted-id order; its crossings are
    ``indices[indptr[r]:indptr[r+1]]`` — link column indices in path
    order (a link appearing twice in a path counts twice, exactly as the
    dict-based solver counted it).  Flows crossing no links are excluded:
    their rate is demand-only and never touches the water-filling.

    Built once per solve by :func:`build_incidence` and shared by both
    engines *and* the :func:`link_loads` test helper, so every consumer
    agrees on link identity by construction.
    """

    flow_ids: Tuple[FlowId, ...]
    link_ids: Tuple[LinkId, ...]
    indptr: Tuple[int, ...]
    indices: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.flow_ids)

    def row_links(self, row: int) -> Tuple[int, ...]:
        """Link column indices crossed by flow ``row`` (path order)."""
        return self.indices[self.indptr[row]:self.indptr[row + 1]]

    @cached_property
    def arrays(self) -> Tuple[Any, Any]:
        """``(indptr, indices)`` as int64 numpy arrays, converted once
        per incidence (the conversion would otherwise dominate small
        solves).  Only reachable from the numpy engine."""
        assert _np is not None
        return (
            _np.asarray(self.indptr, dtype=_np.int64),
            _np.asarray(self.indices, dtype=_np.int64),
        )


def build_incidence(
    paths: Mapping[FlowId, Sequence[LinkId]],
    capacity: Optional[Mapping[LinkId, float]] = None,
) -> FlowIncidence:
    """The canonical CSR incidence of ``paths`` (see :class:`FlowIncidence`).

    With ``capacity`` given, every crossed link is validated against it
    (:class:`FairShareError` names the first offending flow) — the
    solver's contract; :func:`link_loads` builds without validation.
    """
    rows: List[Tuple[FlowId, Tuple[LinkId, ...]]] = []
    seen = set()
    for fid in sorted(paths):  # type: ignore[type-var]
        links = tuple(paths[fid])
        if capacity is not None:
            for link in links:
                if link not in capacity:
                    raise FairShareError(
                        f"flow {fid!r} crosses unknown link {link!r}"
                    )
        if links:
            rows.append((fid, links))
            seen.update(links)
    link_ids: Tuple[LinkId, ...] = tuple(sorted(seen))  # type: ignore[type-var]
    column = {link: i for i, link in enumerate(link_ids)}
    indptr: List[int] = [0]
    indices: List[int] = []
    for _fid, links in rows:
        indices.extend(column[link] for link in links)
        indptr.append(len(indices))
    return FlowIncidence(
        flow_ids=tuple(fid for fid, _links in rows),
        link_ids=link_ids,
        indptr=tuple(indptr),
        indices=tuple(indices),
    )


# --------------------------------------------------------------- engines


def _solve_python(
    inc: FlowIncidence, caps: Sequence[float], dems: Sequence[float]
) -> List[float]:
    """The reference water-filling loop over the CSR incidence.

    Freezes flows in ascending row order and subtracts residuals in the
    same concatenated-segment order the numpy engine's ``subtract.at``
    uses, so the two engines' float trajectories are identical.
    """
    n_flows = len(inc.flow_ids)
    n_links = len(inc.link_ids)
    indptr, indices = inc.indptr, inc.indices
    remaining = [float(c) for c in caps]
    counts = [0] * n_links
    for column in indices:
        counts[column] += 1
    rates = [0.0] * n_flows
    active = [True] * n_flows
    n_active = n_flows

    def freeze(row: int, rate: float) -> None:
        rates[row] = rate
        active[row] = False
        for column in indices[indptr[row]:indptr[row + 1]]:
            remaining[column] -= rate
            counts[column] -= 1

    while n_active:
        level = math.inf
        for column in range(n_links):
            if counts[column]:
                share = remaining[column] / counts[column]
                if share < level:
                    level = share
        if level < 0.0:
            level = 0.0  # residual float drift must never go negative
        threshold = level * (1.0 + SHARE_EPS)
        # demand-capped flows at or below the water level freeze at
        # their demand first — they never contend for the bottleneck
        capped = [
            row for row in range(n_flows)
            if active[row] and dems[row] <= threshold
        ]
        if capped:
            for row in capped:
                freeze(row, dems[row])
            n_active -= len(capped)
            continue
        bottleneck = [
            counts[column] > 0
            and remaining[column] / counts[column] <= threshold
            for column in range(n_links)
        ]
        frozen = [
            row for row in range(n_flows)
            if active[row]
            and any(
                bottleneck[column]
                for column in indices[indptr[row]:indptr[row + 1]]
            )
        ]
        assert frozen, "progressive filling must freeze at least one flow"
        for row in frozen:
            freeze(row, level)
        n_active -= len(frozen)
    return rates


def _concat_rows(indices: Any, starts: Any, lengths: Any) -> Any:
    """``concatenate(indices[s:s+l] for s, l in zip(starts, lengths))``
    without a python loop (every length is >= 1 by construction)."""
    assert _np is not None
    total = int(lengths.sum())
    step = _np.ones(total, dtype=_np.int64)
    step[0] = starts[0]
    ends = _np.cumsum(lengths)
    step[ends[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1]) + 1
    return indices[_np.cumsum(step)]


def _solve_numpy(
    inc: FlowIncidence, caps: Sequence[float], dems: Sequence[float]
) -> List[float]:
    """Vectorized water-filling: identical float trajectory to
    :func:`_solve_python` (see the module docstring), rounds as array ops.

    Per-round work tracks the *surviving* flows, not the original
    instance: the CSR view is compacted to the active rows whenever at
    least half of them have frozen, so the total gather/reduceat cost is
    O(nnz · rounds-at-current-size) with a geometrically shrinking size —
    the property that keeps round-heavy instances (many distinct
    bottleneck levels) from degenerating to rounds × full-nnz.
    """
    assert _np is not None
    n_flows = len(inc.flow_ids)
    n_links = len(inc.link_ids)
    indptr, indices = inc.arrays
    remaining = _np.asarray(caps, dtype=_np.float64)
    counts = _np.bincount(indices, minlength=n_links)
    rates = _np.zeros(n_flows, dtype=_np.float64)

    # compacted active view: original row ids (ascending), their demand,
    # and their CSR segments concatenated in that order
    rows_view = _np.arange(n_flows, dtype=_np.int64)
    dem_view = _np.asarray(dems, dtype=_np.float64)
    idx_view = indices
    starts_view = indptr[:-1]
    lengths_view = _np.diff(indptr)
    alive = _np.ones(n_flows, dtype=bool)  # positions within the view
    n_active = n_flows

    def freeze(positions: Any, values: Any) -> None:
        # subtract.at applies updates sequentially in array order —
        # ascending original row, path order — matching the python loop
        segment = _concat_rows(
            idx_view, starts_view[positions], lengths_view[positions]
        )
        _np.subtract.at(
            remaining, segment, _np.repeat(values, lengths_view[positions])
        )
        _np.subtract.at(counts, segment, 1)
        rates[rows_view[positions]] = values
        alive[positions] = False

    while n_active:
        if n_active <= alive.size // 2:
            keep = _np.flatnonzero(alive)
            rows_view = rows_view[keep]
            dem_view = dem_view[keep]
            kept_lengths = lengths_view[keep]
            idx_view = _concat_rows(idx_view, starts_view[keep], kept_lengths)
            lengths_view = kept_lengths
            starts_view = _np.concatenate(
                (_np.zeros(1, dtype=_np.int64), _np.cumsum(kept_lengths)[:-1])
            )
            alive = _np.ones(n_active, dtype=bool)
        crossed = counts > 0
        share = _np.divide(
            remaining,
            counts,
            out=_np.full(n_links, _np.inf, dtype=_np.float64),
            where=crossed,
        )
        level = float(share.min())
        if level < 0.0:
            level = 0.0  # residual float drift must never go negative
        threshold = level * (1.0 + SHARE_EPS)
        capped = alive & (dem_view <= threshold)
        if capped.any():
            positions = _np.flatnonzero(capped)
            freeze(positions, dem_view[positions])
            n_active -= int(positions.size)
            continue
        bottleneck = crossed & (share <= threshold)
        hit = _np.add.reduceat(bottleneck[idx_view], starts_view) > 0
        positions = _np.flatnonzero(alive & hit)
        assert positions.size, "progressive filling must freeze at least one flow"
        freeze(positions, _np.full(positions.size, level, dtype=_np.float64))
        n_active -= int(positions.size)
    out: List[float] = rates.tolist()
    return out


# ---------------------------------------------------------------- public


def max_min_rates(
    paths: Mapping[FlowId, Sequence[LinkId]],
    capacity: Mapping[LinkId, float],
    demand: Optional[Mapping[FlowId, float]] = None,
    engine: str = "auto",
) -> Dict[FlowId, float]:
    """Max-min fair rates for ``paths`` over per-link ``capacity``.

    ``paths`` maps each flow to the links it crosses (a flow crossing no
    links — source and destination on the same host — is only limited by
    its demand, ``inf`` when elastic).  ``demand`` optionally caps
    individual flows (bytes/ns of offered load); elastic flows take as
    much as fairness allows.  ``engine`` selects the implementation
    (``"auto"`` prefers numpy when importable); both engines return
    bitwise-identical rates.

    Returns a rate per flow in the same unit as ``capacity``.  The result
    is a pure function of the three mappings: iteration order of the
    inputs never matters.
    """
    demands: Mapping[FlowId, float] = demand or {}
    resolved = _resolve_engine(engine)
    inc = build_incidence(paths, capacity)
    routed = set(inc.flow_ids)
    rates: Dict[FlowId, float] = {}
    for fid in sorted(paths):  # type: ignore[type-var]
        if fid not in routed:
            cap = demands.get(fid)
            rates[fid] = float(cap) if cap is not None else math.inf
    caps = [float(capacity[link]) for link in inc.link_ids]
    dems = [
        float(demands[fid]) if fid in demands else math.inf
        for fid in inc.flow_ids
    ]
    solve = _solve_numpy if resolved == "numpy" else _solve_python
    solved = solve(inc, caps, dems)
    for row, fid in enumerate(inc.flow_ids):
        rates[fid] = solved[row]
    return rates


def link_loads(
    paths: Mapping[FlowId, Sequence[LinkId]],
    rates: Mapping[FlowId, float],
) -> Dict[LinkId, float]:
    """Aggregate rate per link implied by an allocation (test helper).

    Built on the same :func:`build_incidence` as the solvers, so load
    accounting can never disagree with them on link identity.
    """
    inc = build_incidence(paths)
    loads: Dict[LinkId, float] = {link: 0.0 for link in inc.link_ids}
    for row, fid in enumerate(inc.flow_ids):
        rate = float(rates[fid])
        for column in inc.row_links(row):
            loads[inc.link_ids[column]] += rate
    return loads
