"""Max-min fair bandwidth allocation (progressive filling).

The fluid backend replaces per-packet queueing with the classic fluid
approximation: every link's capacity is divided max-min fairly among the
flows crossing it.  The solver is the textbook water-filling algorithm —
raise every unfrozen flow's rate uniformly until some link saturates (or
some flow hits its demand cap), freeze the flows that saturated, repeat
with the residual capacities.

The implementation is deliberately **order-independent**: flows are
processed in sorted-id order at every step, bottleneck links are found by
scanning links in sorted order, and every frozen rate is a pure function
of (paths, capacities, demands) — never of insertion order.  The
hypothesis suite in ``tests/test_fairshare.py`` pins the three defining
properties (conservation, link-removal monotonicity, order independence),
and the differential cross-backend harness relies on them: a corrupted
solver is caught by the ``backend-agreement`` invariant
(:mod:`repro.check.differential`).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

#: flows and links are identified by any sortable hashable (the fluid
#: model uses strings / int pairs)
FlowId = Hashable
LinkId = Hashable


class FairShareError(ValueError):
    """A flow crosses a link with no declared capacity."""


def max_min_rates(
    paths: Mapping[FlowId, Sequence[LinkId]],
    capacity: Mapping[LinkId, float],
    demand: Optional[Mapping[FlowId, float]] = None,
) -> Dict[FlowId, float]:
    """Max-min fair rates for ``paths`` over per-link ``capacity``.

    ``paths`` maps each flow to the links it crosses (a flow crossing no
    links — source and destination on the same host — is only limited by
    its demand, ``inf`` when elastic).  ``demand`` optionally caps
    individual flows (bytes/ns of offered load); elastic flows take as
    much as fairness allows.

    Returns a rate per flow in the same unit as ``capacity``.  The result
    is a pure function of the three mappings: iteration order of the
    inputs never matters.
    """
    demands: Mapping[FlowId, float] = demand or {}
    rates: Dict[FlowId, float] = {}
    active: Dict[FlowId, Tuple[LinkId, ...]] = {}
    for fid in sorted(paths):  # type: ignore[type-var]
        links = tuple(paths[fid])
        for link in links:
            if link not in capacity:
                raise FairShareError(f"flow {fid!r} crosses unknown link {link!r}")
        if not links:
            cap = demands.get(fid)
            rates[fid] = float(cap) if cap is not None else math.inf
        else:
            active[fid] = links
    remaining: Dict[LinkId, float] = {}
    for links in active.values():
        for link in links:
            remaining[link] = float(capacity[link])

    while active:
        count: Dict[LinkId, int] = {}
        for fid in active:
            for link in active[fid]:
                count[link] = count.get(link, 0) + 1
        level = math.inf
        for link in sorted(count):  # type: ignore[type-var]
            share = remaining[link] / count[link]
            if share < level:
                level = share
        # demand-capped flows at or below the water level freeze at
        # their demand first — they never contend for the bottleneck
        capped = [
            fid for fid in active
            if fid in demands and float(demands[fid]) <= level
        ]
        if capped:
            for fid in capped:
                rate = float(demands[fid])
                rates[fid] = rate
                for link in active[fid]:
                    remaining[link] = max(0.0, remaining[link] - rate)
                del active[fid]
            continue
        bottlenecks = frozenset(
            link for link in count
            if remaining[link] / count[link] <= level
        )
        frozen = [
            fid for fid in active
            if any(link in bottlenecks for link in active[fid])
        ]
        assert frozen, "progressive filling must freeze at least one flow"
        for fid in frozen:
            rates[fid] = level
            for link in active[fid]:
                remaining[link] = max(0.0, remaining[link] - level)
            del active[fid]
    return rates


def link_loads(
    paths: Mapping[FlowId, Sequence[LinkId]],
    rates: Mapping[FlowId, float],
) -> Dict[LinkId, float]:
    """Aggregate rate per link implied by an allocation (test helper)."""
    loads: Dict[LinkId, float] = {}
    for fid in sorted(paths):  # type: ignore[type-var]
        rate = rates[fid]
        for link in paths[fid]:
            loads[link] = loads.get(link, 0.0) + rate
    return loads
