"""Batch warm start: a pre-converged control plane for large fabrics.

Event-driven initial convergence floods every switch's LSA across every
link — O(V·E) control-packet events, which is 40M+ at k=32 and the real
reason the packet backend cannot touch production scales.  But the
converged *outcome* is a pure function of the topology: every switch
ends up with the same LSDB, and its routes are exactly
:func:`repro.routing.spf.compute_routes` on it.  So this module builds
that outcome directly:

1. protocol instances are constructed exactly as
   :func:`repro.routing.linkstate.deploy_linkstate` does — but never
   ``start()``-ed, so no flooding events exist;
2. the converged LSDB (one seq-1 LSA per switch) is written into every
   instance;
3. all route tables come from one :func:`repro.routing.spf_batch.
   batch_compute_routes` run and are bulk-loaded into the FIBs;
4. each instance's SPF engine is replaced by a shared
   :class:`BatchRouteOracle` engine, so *post-failure* SPF runs — which
   all see the same flooded LSDB — cost one batch computation for the
   whole fabric instead of V sequential Dijkstras.

After warm start the simulator clock is still wherever it was and the
event queue is untouched: failures, detection, flooding of the *change*,
SPF throttling and FIB downloads all proceed event-driven exactly as on
a conventionally-converged network.  ``tests/test_flow_backend.py``
pins that equivalence: on small fabrics the warm-started FIBs are
identical to event-driven convergence.

The module reaches into ``LinkStateProtocol``'s private warm state
(``_seq``, ``_installed``, ``_spf_engine``) deliberately — it is the
protocol's second constructor, not an external consumer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ...net.fib import FibEntry
from ...net.ip import Prefix
from ...routing.linkstate import SOURCE, LinkStateProtocol
from ...routing.lsdb import Lsa, Lsdb
from ...routing.spf import RouteTable
from ...routing.spf_batch import batch_compute_routes
from ...routing.spf_incremental import SpfRunReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...dataplane.network import Network


class BatchRouteOracle:
    """Fingerprint-keyed cache of whole-fabric batch SPF results.

    All switches of a converged (or post-flood) fabric share one LSDB
    fingerprint, so one batch computation serves every origin.  A small
    LRU covers the transient where early SPF timers fire on a
    still-flooding database.
    """

    def __init__(self, engine: str = "auto", max_cached: int = 4) -> None:
        self.engine = engine
        self.max_cached = max_cached
        self._cache: "OrderedDict[object, Dict[str, RouteTable]]" = OrderedDict()
        #: lifetime counters (deterministic; surfaced by scale trials)
        self.batch_runs = 0
        self.hits = 0

    def routes(self, lsdb: Lsdb) -> Dict[str, RouteTable]:
        fingerprint = lsdb.fingerprint()
        cached = self._cache.get(fingerprint)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(fingerprint)
            return cached
        self.batch_runs += 1
        result = batch_compute_routes(lsdb, engine=self.engine)
        self._cache[fingerprint] = result
        while len(self._cache) > self.max_cached:
            self._cache.popitem(last=False)
        return result


class OracleSpfEngine:
    """Drop-in for ``IncrementalSpfEngine``: answers every ``compute``
    from the shared batch oracle."""

    def __init__(self, origin: str, oracle: BatchRouteOracle) -> None:
        self.origin = origin
        self.oracle = oracle

    @property
    def state(self) -> None:
        return None

    def compute(self, lsdb: Lsdb) -> Tuple[RouteTable, SpfRunReport]:
        routes = self.oracle.routes(lsdb).get(self.origin, {})
        return dict(routes), SpfRunReport(delta="batch", incremental=False)


def warm_start_linkstate(
    network: "Network",
    advertise_loopbacks: bool = False,
    engine: str = "auto",
    oracle: Optional[BatchRouteOracle] = None,
) -> Dict[str, LinkStateProtocol]:
    """Deploy a pre-converged link-state control plane (see module doc).

    The drop-in warm twin of :func:`~repro.routing.linkstate.
    deploy_linkstate` — same instances, same advertisements, same
    converged FIB contents — minus the O(V·E) initial flooding, plus the
    shared batch-SPF oracle.  ``advertise_loopbacks`` defaults to False
    here (unlike ``deploy_linkstate``): at production scale the /32
    loopbacks triple the FIB size without affecting any host-to-host
    path, and the scale benchmark documents that choice.
    """
    from ...dataplane.node import SwitchNode  # local import avoids a cycle

    if oracle is None:
        oracle = BatchRouteOracle(engine=engine)
    instances: Dict[str, LinkStateProtocol] = {}
    for switch in network.switches():
        spec = switch.spec
        advertised: List[Prefix] = []
        if spec.subnet is not None:
            advertised.append(spec.subnet)
        if advertise_loopbacks:
            advertised.append(Prefix(switch.ip, 32))
        switch_neighbors = [
            peer
            for peer in switch.links_by_peer
            if isinstance(network.nodes[peer], SwitchNode)
        ]
        instances[switch.name] = LinkStateProtocol(
            network.sim,
            switch,
            network.params,
            switch_neighbors=switch_neighbors,
            advertised=advertised,
        )

    # the converged database: one seq-1 LSA per switch, exactly what
    # each instance's first origination would have flooded
    lsas: List[Lsa] = []
    for name in sorted(instances):
        protocol = instances[name]
        lsas.append(
            Lsa(
                origin=name,
                seq=1,
                neighbors=tuple(protocol._live_protocol_neighbors()),
                prefixes=protocol.advertised,
            )
        )
    reference = Lsdb()
    for lsa in lsas:
        reference.insert(lsa)
    routes_by_origin = oracle.routes(reference)

    # one fabric-wide canonical install order: every switch's route table
    # is (nearly) the same prefix set, so sorting the union once replaces
    # V per-switch sorts — Prefix comparisons dominate warm start at k=48
    # otherwise.  A sorted subset is the filtered sorted union, so the
    # per-switch install tuples are exactly what sorted(routes) produced.
    prefix_order = sorted({
        prefix
        for origin in sorted(routes_by_origin)
        for prefix in routes_by_origin[origin]
    })

    for name in sorted(instances):
        protocol = instances[name]
        protocol.lsdb.load(reference)
        protocol._seq = 1
        protocol.stats.lsas_originated += 1
        protocol._spf_engine = OracleSpfEngine(name, oracle)
        routes = routes_by_origin.get(name, {})
        installs = tuple(
            FibEntry(prefix, routes[prefix], source=SOURCE)
            for prefix in prefix_order
            if prefix in routes
        )
        protocol.switch.fib.bulk_load(installs)
        protocol._installed = {entry.prefix: entry for entry in installs}
        protocol.stats.fib_installs += 1
    return instances
