"""The fluid (flow-level) data plane.

The packet backend simulates every probe segment as discrete events —
faithful, but event count scales with traffic volume, which is what caps
it around k=8 fat trees.  This module replaces *only the data traffic*
with the classic fluid approximation: each flow is a piecewise-constant
rate process, recomputed whenever the network changes, and per-flow
throughput/FCT/loss fall out analytically.  Everything the paper is
actually about — failures, detection timers, LSA flooding over real
control packets, SPF throttling, FIB downloads — stays event-driven on
the exact same engine and control-plane code as the packet backend.

How a flow's rate is determined at any instant:

1. its path is resolved through the live FIBs with the same five-tuple
   ECMP hashing the packet data plane uses
   (:meth:`~repro.dataplane.network.Network.trace_route`), honoring
   *detected* state for next-hop choice and *actual* channel state for
   deliverability — so undetected failures black-hole fluid flows
   exactly as they black-hole packets;
2. link capacity is divided max-min fairly among the flows crossing it
   (:func:`repro.sim.flow.fairshare.max_min_rates`), with CBR flows
   capped at their offered rate;
3. the resulting ``(rate, path delay, hop count)`` triple is appended to
   the flow's segment timeline.

Recomputation is **change-driven, not polled**: the model subscribes to
the three places network state can change (FIB generation bumps,
detected-adjacency epoch bumps, actual link up/down) and coalesces all
notifications within one simulated instant into a single recompute
event at :data:`PRIORITY_FLOW` — after control-plane and delivery
events of the same instant, before the checker's probes.

What the fluid view *cannot* observe (documented in DESIGN §11):
per-packet ECMP spraying (a flow follows one hashed path), transient
micro-loops between asynchronous FIB updates (a looping resolution just
reads as "no path"), and queueing delay (uncongested flows see the pure
store-and-forward latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...net.packet import PROTO_UDP
from ..engine import Simulator
from ..units import Time, transmission_delay
from .fairshare import max_min_rates

#: Priority for fluid-model recompute events: after control events
#: (failures, timers, FIB installs at 0) and packet deliveries (10) of
#: the same instant — so a recompute sees the instant's final state —
#: but before the checker's invariant probes at 90.
PRIORITY_FLOW = 50

#: Tolerance for "delivered a full packet's worth of credit" — absorbs
#: float error in rate × interval accumulation, far below one packet.
_CREDIT_EPS = 1e-9


@dataclass(frozen=True)
class FlowSpec:
    """A constant-bit-rate (or paced-reliable) flow's immutable shape.

    ``packet_bytes`` is the wire size of one application packet and
    ``interval`` the spacing between offers, so the offered rate is
    ``packet_bytes / interval`` bytes/ns.  ``reliable`` selects the
    paced-TCP-like behaviour: offered bytes that cannot be delivered
    accumulate as backlog and drain (elastically, at the fair-share
    rate) once the path heals, instead of being lost.
    """

    name: str
    src: str
    dst: str
    dport: int
    sport: int
    protocol: int = PROTO_UDP
    packet_bytes: int = 1448
    interval: Time = 100_000
    start: Time = 0
    stop: Time = 0
    reliable: bool = False

    @property
    def demand(self) -> float:
        """Offered rate in bytes/ns."""
        return self.packet_bytes / self.interval


@dataclass(frozen=True)
class FlowSegment:
    """One piece of a flow's piecewise-constant history.

    ``rate`` is the *delivered* rate in bytes/ns (0 while the path is
    dead), ``delay`` the end-to-end latency and ``hops`` the switch
    count of the path in force — both 0 while there is no path.
    """

    start: Time
    rate: float
    delay: Time
    hops: int


@dataclass
class FluidFlow:
    """One flow's runtime state and, after the run, its analytic outputs."""

    spec: FlowSpec
    segments: List[FlowSegment] = field(default_factory=list)
    #: bytes delivered so far (maintained for reliable flows' backlog)
    delivered: float = 0.0
    #: simulated time up to which ``delivered`` is accurate
    advanced_to: Time = 0
    active: bool = False
    closed_at: Optional[Time] = None

    # ------------------------------------------------------------ queries

    @property
    def sent(self) -> int:
        """Packets offered by the application (same count as the packet
        backend's sender: one per interval tick in [start, stop))."""
        spec = self.spec
        if spec.stop <= spec.start:
            return 0
        span = spec.stop - spec.start
        return (span + spec.interval - 1) // spec.interval

    def offered_bytes(self, at: Time) -> float:
        """Cumulative bytes offered by the application at time ``at``."""
        spec = self.spec
        t = min(max(at, spec.start), spec.stop)
        return spec.demand * (t - spec.start)

    def _segment_spans(self) -> List[Tuple[Time, Time, FlowSegment]]:
        """Segments with explicit [from, to) spans (to = close time for
        the last one)."""
        end = self.closed_at
        if end is None:
            raise RuntimeError(
                f"flow {self.spec.name!r} not finalized; run the simulation "
                "and call FluidTrafficModel.finalize() first"
            )
        spans: List[Tuple[Time, Time, FlowSegment]] = []
        for i, seg in enumerate(self.segments):
            until = self.segments[i + 1].start if i + 1 < len(self.segments) else end
            if until > seg.start:
                spans.append((seg.start, until, seg))
        return spans

    def arrivals(self) -> List[Tuple[int, Time, Time, int]]:
        """Synthesized per-packet arrival log: (seq, sent_at, received_at,
        hops) — the fluid equivalent of ``UdpSink.arrivals``.

        A packet offered at tick *t* is delivered when the flow has
        accumulated one packet of delivery credit (``rate/demand`` per
        tick), and arrives after the path latency in force at *t*.  An
        uncongested live path delivers every tick; a dead path none —
        with partial rates the thinning is deterministic.
        """
        spec = self.spec
        spans = self._segment_spans()
        out: List[Tuple[int, Time, Time, int]] = []
        credit = 0.0
        cursor = 0
        for seq in range(self.sent):
            t = spec.start + seq * spec.interval
            while cursor < len(spans) and spans[cursor][1] <= t:
                cursor += 1
            if cursor >= len(spans):
                break
            t0, _t1, seg = spans[cursor]
            if t < t0 or seg.rate <= 0.0:
                credit = 0.0
                continue
            credit += min(1.0, seg.rate / spec.demand)
            if credit >= 1.0 - _CREDIT_EPS:
                credit -= 1.0
                out.append((seq, t, t + seg.delay, seg.hops))
        return out

    def deliveries(self, chunk: Optional[Time] = None) -> List[Tuple[Time, int]]:
        """Synthesized (time, bytes) delivery log — the fluid equivalent
        of ``TcpSinkServer.deliveries``, for throughput binning.

        Bytes are emitted in ``chunk``-sized steps (default: the flow's
        own interval) from the piecewise-linear cumulative delivery
        curve, rounding so the total is conserved.
        """
        step = chunk if chunk is not None else self.spec.interval
        if step <= 0:
            raise ValueError("chunk must be positive")
        spans = self._segment_spans()
        out: List[Tuple[Time, int]] = []
        emitted = 0
        cumulative = 0.0
        for t0, t1, seg in spans:
            if seg.rate <= 0.0:
                continue
            t = t0
            while t < t1:
                t_next = min(t + step, t1)
                cumulative += seg.rate * (t_next - t)
                total = int(cumulative)
                if total > emitted:
                    out.append((t_next + seg.delay, total - emitted))
                    emitted = total
                t = t_next
        return out

    def outage_intervals(self) -> List[Tuple[Time, Time]]:
        """[from, to) spans during which the flow was undeliverable."""
        return [
            (t0, t1) for t0, t1, seg in self._segment_spans() if seg.rate <= 0.0
        ]

    @property
    def received(self) -> int:
        """Delivered packet count (CBR view)."""
        return len(self.arrivals())


class FluidTrafficModel:
    """Fluid data plane bound to one runtime network.

    Create it right after the network (before traffic starts), add flows,
    run the simulation, then :meth:`finalize` and read each flow's
    analytic outputs.  :func:`repro.experiments.common.build_bundle`
    attaches one automatically when ``params.backend == "flow"``.
    """

    def __init__(self, network: "object") -> None:
        # typed loosely to avoid a dataplane import cycle; the attribute
        # uses below define the real interface (Network)
        self.network = network
        self.sim: Simulator = network.sim  # type: ignore[attr-defined]
        self.params = network.params  # type: ignore[attr-defined]
        #: the fair-share solver — an instance seam so seeded mutants can
        #: corrupt it (mirroring the incremental-SPF corruption mutant)
        self.solver: Callable[..., Dict[object, float]] = max_min_rates
        self.flows: Dict[str, FluidFlow] = {}
        self._active: Dict[str, FluidFlow] = {}
        self._pending_at: Optional[Time] = None
        self._drain_handles: Dict[str, object] = {}
        #: lifetime counters (surfaced through trial stats)
        self.recomputes = 0
        self.notifications = 0
        self._subscribe()

    # -------------------------------------------------------- subscriptions

    def _subscribe(self) -> None:
        """Listen to every place network state can change (see module
        docstring); all three hooks funnel into :meth:`_notify`."""
        network = self.network
        for node in network.nodes.values():  # type: ignore[attr-defined]
            node.epoch_listeners.append(self._notify)
            fib = getattr(node, "fib", None)
            if fib is not None:
                fib.listeners.append(self._notify)
        for link in network.links:  # type: ignore[attr-defined]
            link.state_listeners.append(self._notify)

    def _notify(self) -> None:
        """A network change happened *now*; coalesce into one recompute."""
        self.notifications += 1
        if not self._active:
            return
        now = self.sim.now
        if self._pending_at == now:
            return
        self._pending_at = now
        self.sim.schedule_at(now, self._recompute_event, priority=PRIORITY_FLOW)

    def _recompute_event(self) -> None:
        self._pending_at = None
        self._recompute()

    # --------------------------------------------------------------- flows

    def add_cbr_flow(
        self,
        name: str,
        src: str,
        dst: str,
        dport: int,
        sport: int,
        protocol: int = PROTO_UDP,
        packet_bytes: int = 1448,
        interval: Time = 100_000,
        start: Time = 0,
        stop: Time = 0,
        reliable: bool = False,
    ) -> FluidFlow:
        """Register a flow; it activates/deactivates by scheduled event."""
        if name in self.flows:
            raise ValueError(f"duplicate flow name {name!r}")
        if stop <= start:
            raise ValueError(f"flow {name!r}: stop must be after start")
        spec = FlowSpec(
            name=name, src=src, dst=dst, dport=dport, sport=sport,
            protocol=protocol, packet_bytes=packet_bytes, interval=interval,
            start=start, stop=stop, reliable=reliable,
        )
        flow = FluidFlow(spec=spec, advanced_to=start)
        self.flows[name] = flow
        self.sim.schedule_at(start, self._activate, flow, priority=PRIORITY_FLOW)
        self.sim.schedule_at(stop, self._on_stop, flow, priority=PRIORITY_FLOW)
        return flow

    def add_paced_flow(self, *args: object, **kwargs: object) -> FluidFlow:
        """A reliable (paced-TCP-like) flow: same knobs as
        :meth:`add_cbr_flow` with backlog-and-drain semantics."""
        kwargs["reliable"] = True
        return self.add_cbr_flow(*args, **kwargs)  # type: ignore[arg-type]

    def _activate(self, flow: FluidFlow) -> None:
        flow.active = True
        self._active[flow.spec.name] = flow
        self._recompute()

    def _on_stop(self, flow: FluidFlow) -> None:
        """The application stops offering; a reliable flow with backlog
        stays active until it drains."""
        if not flow.active:
            return
        if flow.spec.reliable:
            self._advance(flow, self.sim.now)
            if flow.offered_bytes(self.sim.now) - flow.delivered > 0.5:
                self._recompute()
                return
        self._deactivate(flow)

    def _deactivate(self, flow: FluidFlow) -> None:
        if not flow.active:
            return
        self._advance(flow, self.sim.now)
        flow.active = False
        self._active.pop(flow.spec.name, None)
        handle = self._drain_handles.pop(flow.spec.name, None)
        if handle is not None:
            handle.cancel()  # type: ignore[attr-defined]
        self._recompute()

    # ----------------------------------------------------------- recompute

    def _advance(self, flow: FluidFlow, to: Time) -> None:
        """Integrate the flow's delivered bytes up to ``to``."""
        if to <= flow.advanced_to:
            return
        rate = flow.segments[-1].rate if flow.segments else 0.0
        flow.delivered += rate * (to - flow.advanced_to)
        if flow.spec.reliable:
            # delivery can never outrun the offer (drain events split
            # segments at the catch-up instant; this caps float drift)
            flow.delivered = min(flow.delivered, flow.offered_bytes(to))
        flow.advanced_to = to

    def _resolve(self, spec: FlowSpec) -> Tuple[Optional[List[Tuple[str, str]]], Time, int]:
        """(directed links, path delay, hop count) for a flow right now;
        links is None when the flow is undeliverable."""
        path, complete = self.network.trace_route(  # type: ignore[attr-defined]
            spec.src, spec.dst, spec.protocol, spec.sport, spec.dport,
            check_actual=True,
        )
        if not complete:
            return None, 0, 0
        links = list(zip(path, path[1:]))
        tx = transmission_delay(spec.packet_bytes, self.params.link_rate_gbps)
        per_hop = tx + self.params.propagation_delay
        switches = max(0, len(path) - 2)
        delay = len(links) * per_hop + switches * self.params.switch_processing_delay
        return links, delay, switches

    def _recompute(self) -> None:
        """Re-resolve every active flow and re-solve the fair shares."""
        now = self.sim.now
        self.recomputes += 1
        for name in sorted(self._active):
            self._advance(self._active[name], now)

        paths: Dict[str, List[Tuple[str, str]]] = {}
        meta: Dict[str, Tuple[Time, int]] = {}
        demand: Dict[str, float] = {}
        capacity: Dict[Tuple[str, str], float] = {}
        bytes_per_ns = self.params.link_rate_gbps / 8.0
        for name in sorted(self._active):
            flow = self._active[name]
            spec = flow.spec
            links, delay, hops = self._resolve(spec)
            if links is None:
                self._append_segment(flow, now, 0.0, 0, 0)
                continue
            paths[name] = links
            meta[name] = (delay, hops)
            for link in links:
                capacity[link] = bytes_per_ns
            if spec.reliable and (
                flow.offered_bytes(now) - flow.delivered > 0.5 or now >= spec.stop
            ):
                # backlogged: drain elastically at the fair-share rate
                pass
            else:
                demand[name] = spec.demand
        rates = self.solver(paths, capacity, demand)
        for name in sorted(paths):
            flow = self._active[name]
            delay, hops = meta[name]
            self._append_segment(flow, now, float(rates[name]), delay, hops)
        self._schedule_drains(now)

    def _append_segment(
        self, flow: FluidFlow, now: Time, rate: float, delay: Time, hops: int
    ) -> None:
        segments = flow.segments
        if segments and segments[-1].start == now:
            segments.pop()  # same-instant refinement: last write wins
        if segments:
            last = segments[-1]
            if last.rate == rate and last.delay == delay and last.hops == hops:
                return
        segments.append(FlowSegment(start=now, rate=rate, delay=delay, hops=hops))

    def _schedule_drains(self, now: Time) -> None:
        """For each backlogged reliable flow, schedule the instant its
        backlog empties — the rate changes there (drain -> paced) without
        any network event to trigger a recompute."""
        for name in sorted(self._active):
            flow = self._active[name]
            spec = flow.spec
            old = self._drain_handles.pop(name, None)
            if old is not None:
                old.cancel()  # type: ignore[attr-defined]
            if not spec.reliable or not flow.segments:
                continue
            rate = flow.segments[-1].rate
            backlog = flow.offered_bytes(now) - flow.delivered
            if rate <= 0.0 or backlog <= 0.5:
                continue
            offer_rate = spec.demand if now < spec.stop else 0.0
            if rate <= offer_rate:
                continue
            drain_ns = int(backlog / (rate - offer_rate)) + 1
            if now < spec.stop and now + drain_ns > spec.stop:
                # the offer stops before the drain completes; the stop
                # event re-enters here with the post-stop offer rate
                continue
            self._drain_handles[name] = self.sim.schedule(
                drain_ns, self._on_drained, flow, priority=PRIORITY_FLOW
            )

    def _on_drained(self, flow: FluidFlow) -> None:
        self._drain_handles.pop(flow.spec.name, None)
        if not flow.active:
            return
        if self.sim.now >= flow.spec.stop:
            self._deactivate(flow)
        else:
            self._recompute()

    # ------------------------------------------------------------ epilogue

    def finalize(self) -> None:
        """Close every flow's timeline at the current instant; flows'
        analytic outputs (arrivals, deliveries) become readable."""
        now = self.sim.now
        for name in sorted(self.flows):
            flow = self.flows[name]
            self._advance(flow, now)
            if flow.closed_at is None or flow.closed_at < now:
                flow.closed_at = now

    def stats(self) -> Dict[str, int]:
        """JSON-safe model counters for trial stats / flight recorder."""
        return {
            "flows": len(self.flows),
            "recomputes": self.recomputes,
            "notifications": self.notifications,
        }
