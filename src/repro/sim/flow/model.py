"""The fluid (flow-level) data plane.

The packet backend simulates every probe segment as discrete events —
faithful, but event count scales with traffic volume, which is what caps
it around k=8 fat trees.  This module replaces *only the data traffic*
with the classic fluid approximation: each flow is a piecewise-constant
rate process, recomputed whenever the network changes, and per-flow
throughput/FCT/loss fall out analytically.  Everything the paper is
actually about — failures, detection timers, LSA flooding over real
control packets, SPF throttling, FIB downloads — stays event-driven on
the exact same engine and control-plane code as the packet backend.

How a flow's rate is determined at any instant:

1. its path is resolved through the live FIBs with the same five-tuple
   ECMP hashing the packet data plane uses
   (:meth:`~repro.dataplane.network.Network.trace_route`), honoring
   *detected* state for next-hop choice and *actual* channel state for
   deliverability — so undetected failures black-hole fluid flows
   exactly as they black-hole packets;
2. link capacity is divided max-min fairly among the flows crossing it
   (:func:`repro.sim.flow.fairshare.max_min_rates`), with CBR flows
   capped at their offered rate;
3. the resulting ``(rate, path delay, hops count)`` triple is appended to
   the flow's segment timeline.

Recomputation is **change-driven, not polled**: the model subscribes to
the three places network state can change (FIB generation bumps,
detected-adjacency epoch bumps, actual link up/down) and coalesces all
notifications within one simulated instant into a single recompute
event at :data:`PRIORITY_FLOW` — after control-plane and delivery
events of the same instant, before the checker's probes.

A recompute is itself **incremental** (DESIGN §13).  Listeners record
*which node* changed, and a per-flow path cache remembers the set of
nodes each resolution consulted — ``trace_route`` appends a node to the
path before reading any of its state, so the path's node set *is* the
consulted-state set, and a cached path stays provably valid while none
of its nodes change.  Only flows whose solver input actually moved —
path or demand — are re-solved, together with every flow sharing their
(old or new) bottleneck component; max-min allocations decompose
exactly over connected components of the flow/link sharing graph, so
rates of untouched components are reused verbatim.  When the affected
set is a large fraction of the active flows (or the flow population is
small) the model falls back to one full solve, whose float trajectory
matches the non-incremental reference bit for bit.

What the fluid view *cannot* observe (documented in DESIGN §11):
per-packet ECMP spraying (a flow follows one hashed path), transient
micro-loops between asynchronous FIB updates (a looping resolution just
reads as "no path"), and queueing delay (uncongested flows see the pure
store-and-forward latency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ...net.packet import PROTO_UDP
from ..engine import Simulator
from ..units import Time, transmission_delay
from .fairshare import max_min_rates

#: Priority for fluid-model recompute events: after control events
#: (failures, timers, FIB installs at 0) and packet deliveries (10) of
#: the same instant — so a recompute sees the instant's final state —
#: but before the checker's invariant probes at 90.
PRIORITY_FLOW = 50

#: Tolerance for "delivered a full packet's worth of credit" — absorbs
#: float error in rate × interval accumulation, far below one packet.
_CREDIT_EPS = 1e-9

#: A directed link as the solver identifies it: (from node, to node).
_Link = Tuple[str, str]

#: One flow's solver-visible state: (links crossed, demand cap or None
#: for elastic).  ``None`` as a whole means "not in the solve" (no live
#: path).  Rates must be recomputed exactly when this value moves.
_SolverInput = Optional[Tuple[Tuple[_Link, ...], Optional[float]]]


@dataclass(frozen=True)
class FlowSpec:
    """A constant-bit-rate (or paced-reliable) flow's immutable shape.

    ``packet_bytes`` is the wire size of one application packet and
    ``interval`` the spacing between offers, so the offered rate is
    ``packet_bytes / interval`` bytes/ns.  ``reliable`` selects the
    paced-TCP-like behaviour: offered bytes that cannot be delivered
    accumulate as backlog and drain (elastically, at the fair-share
    rate) once the path heals, instead of being lost.
    """

    name: str
    src: str
    dst: str
    dport: int
    sport: int
    protocol: int = PROTO_UDP
    packet_bytes: int = 1448
    interval: Time = 100_000
    start: Time = 0
    stop: Time = 0
    reliable: bool = False

    @property
    def demand(self) -> float:
        """Offered rate in bytes/ns."""
        return self.packet_bytes / self.interval


@dataclass(frozen=True)
class FlowSegment:
    """One piece of a flow's piecewise-constant history.

    ``rate`` is the *delivered* rate in bytes/ns (0 while the path is
    dead), ``delay`` the end-to-end latency and ``hops`` the switch
    count of the path in force — both 0 while there is no path.
    """

    start: Time
    rate: float
    delay: Time
    hops: int


@dataclass(frozen=True)
class _ResolvedPath:
    """A cached path resolution and its invalidation key.

    ``visited`` is the (sorted, unique) set of nodes the resolution
    consulted: ``trace_route`` appends each node to the path *before*
    reading its FIB, its detected adjacencies, or the actual state of a
    link it terminates — so while none of these nodes is reported
    changed, re-resolving is guaranteed to reproduce this exact result.
    """

    links: Optional[Tuple[_Link, ...]]
    delay: Time
    hops: int
    visited: Tuple[str, ...]


@dataclass
class FluidFlow:
    """One flow's runtime state and, after the run, its analytic outputs."""

    spec: FlowSpec
    segments: List[FlowSegment] = field(default_factory=list)
    #: bytes delivered so far (maintained for reliable flows' backlog)
    delivered: float = 0.0
    #: simulated time up to which ``delivered`` is accurate
    advanced_to: Time = 0
    active: bool = False
    closed_at: Optional[Time] = None

    # ------------------------------------------------------------ queries

    @property
    def sent(self) -> int:
        """Packets offered by the application (same count as the packet
        backend's sender: one per interval tick in [start, stop))."""
        spec = self.spec
        if spec.stop <= spec.start:
            return 0
        span = spec.stop - spec.start
        return (span + spec.interval - 1) // spec.interval

    def offered_bytes(self, at: Time) -> float:
        """Cumulative bytes offered by the application at time ``at``."""
        spec = self.spec
        t = min(max(at, spec.start), spec.stop)
        return spec.demand * (t - spec.start)

    def _segment_spans(self) -> List[Tuple[Time, Time, FlowSegment]]:
        """Segments with explicit [from, to) spans (to = close time for
        the last one)."""
        end = self.closed_at
        if end is None:
            raise RuntimeError(
                f"flow {self.spec.name!r} not finalized; run the simulation "
                "and call FluidTrafficModel.finalize() first"
            )
        spans: List[Tuple[Time, Time, FlowSegment]] = []
        for i, seg in enumerate(self.segments):
            until = self.segments[i + 1].start if i + 1 < len(self.segments) else end
            if until > seg.start:
                spans.append((seg.start, until, seg))
        return spans

    def arrivals(self) -> List[Tuple[int, Time, Time, int]]:
        """Synthesized per-packet arrival log: (seq, sent_at, received_at,
        hops) — the fluid equivalent of ``UdpSink.arrivals``.

        A packet offered at tick *t* is delivered when the flow has
        accumulated one packet of delivery credit (``rate/demand`` per
        tick), and arrives after the path latency in force at *t*.  An
        uncongested live path delivers every tick; a dead path none —
        with partial rates the thinning is deterministic.
        """
        spec = self.spec
        spans = self._segment_spans()
        out: List[Tuple[int, Time, Time, int]] = []
        credit = 0.0
        cursor = 0
        for seq in range(self.sent):
            t = spec.start + seq * spec.interval
            while cursor < len(spans) and spans[cursor][1] <= t:
                cursor += 1
            if cursor >= len(spans):
                break
            t0, _t1, seg = spans[cursor]
            if t < t0 or seg.rate <= 0.0:
                credit = 0.0
                continue
            credit += min(1.0, seg.rate / spec.demand)
            if credit >= 1.0 - _CREDIT_EPS:
                credit -= 1.0
                out.append((seq, t, t + seg.delay, seg.hops))
        return out

    def deliveries(self, chunk: Optional[Time] = None) -> List[Tuple[Time, int]]:
        """Synthesized (time, bytes) delivery log — the fluid equivalent
        of ``TcpSinkServer.deliveries``, for throughput binning.

        Bytes are emitted in ``chunk``-sized steps (default: the flow's
        own interval) from the piecewise-linear cumulative delivery
        curve, rounding so the total is conserved.
        """
        step = chunk if chunk is not None else self.spec.interval
        if step <= 0:
            raise ValueError("chunk must be positive")
        spans = self._segment_spans()
        out: List[Tuple[Time, int]] = []
        emitted = 0
        cumulative = 0.0
        for t0, t1, seg in spans:
            if seg.rate <= 0.0:
                continue
            t = t0
            while t < t1:
                t_next = min(t + step, t1)
                cumulative += seg.rate * (t_next - t)
                total = int(cumulative)
                if total > emitted:
                    out.append((t_next + seg.delay, total - emitted))
                    emitted = total
                t = t_next
        return out

    def outage_intervals(self) -> List[Tuple[Time, Time]]:
        """[from, to) spans during which the flow was undeliverable."""
        return [
            (t0, t1) for t0, t1, seg in self._segment_spans() if seg.rate <= 0.0
        ]

    def completion_time(self) -> Optional[Time]:
        """Instant the last offered byte lands at the receiver, or None
        if the flow never delivered everything it offered.

        The fluid FCT: walk the segment timeline integrating delivered
        bytes until they reach the total offer (with the same
        half-packet slack the backlog test uses), then add the path
        latency in force at that instant.  A reliable flow completes
        once its backlog drains; a CBR flow only if it was never starved.
        """
        spec = self.spec
        total = self.offered_bytes(spec.stop)
        if total <= 0.5:
            return None
        target = total - 0.5
        delivered = 0.0
        for t0, t1, seg in self._segment_spans():
            if seg.rate <= 0.0:
                continue
            chunk = seg.rate * (t1 - t0)
            if delivered + chunk >= target:
                dt = (target - delivered) / seg.rate
                return t0 + int(math.ceil(dt)) + seg.delay
            delivered += chunk
        return None

    @property
    def received(self) -> int:
        """Delivered packet count (CBR view)."""
        return len(self.arrivals())


class FluidTrafficModel:
    """Fluid data plane bound to one runtime network.

    Create it right after the network (before traffic starts), add flows,
    run the simulation, then :meth:`finalize` and read each flow's
    analytic outputs.  :func:`repro.experiments.common.build_bundle`
    attaches one automatically when ``params.backend == "flow"``.
    """

    #: Incremental re-solving engages only above this many active flows;
    #: below it a full solve is cheap and keeps small scenarios bit-
    #: identical to the non-incremental reference the engine tests pin.
    INCREMENTAL_MIN_ACTIVE = 64
    #: Fall back to a full solve when the affected flows reach this
    #: fraction of the active population (the subset solve would not be
    #: meaningfully cheaper, and the full path is simpler to reason
    #: about under churn).
    FULL_SOLVE_FRACTION = 0.5

    def __init__(self, network: "object") -> None:
        # typed loosely to avoid a dataplane import cycle; the attribute
        # uses below define the real interface (Network)
        self.network = network
        self.sim: Simulator = network.sim  # type: ignore[attr-defined]
        self.params = network.params  # type: ignore[attr-defined]
        #: fair-share engine for the default solver ("auto" | "numpy" |
        #: "python"); both engines are bitwise-identical, so this is a
        #: speed knob only
        self.engine: str = getattr(self.params, "flow_engine", "auto")
        #: the fair-share solver — an instance seam so seeded mutants can
        #: corrupt it (mirroring the incremental-SPF corruption mutant)
        self.solver: Callable[..., Dict[str, float]] = self._default_solver
        self.flows: Dict[str, FluidFlow] = {}
        self._active: Dict[str, FluidFlow] = {}
        self._reliable_active: Set[str] = set()
        self._pending_at: Optional[Time] = None
        self._drain_handles: Dict[str, object] = {}
        #: reliable flows whose drain prediction may have moved since the
        #: last scheduling pass (rate/offer change); others keep their
        #: scheduled drain — the prediction is linear in both
        self._drain_dirty: Set[str] = set()
        # --- path-resolution cache (invalidated per consulted node) ---
        self._path_cache: Dict[str, _ResolvedPath] = {}
        self._flows_by_node: Dict[str, Set[str]] = {}
        self._changed_nodes: Set[str] = set()
        self._needs_resolve: Set[str] = set()
        # --- incremental solve state (last solve's frozen outputs) ---
        self._last_inputs: Dict[str, _SolverInput] = {}
        self._last_rates: Dict[str, float] = {}
        self._departed: Set[str] = set()
        self._link_comp: Dict[_Link, int] = {}
        self._comp_members: Dict[int, Set[str]] = {}
        self._comp_links: Dict[int, Set[_Link]] = {}
        self._comp_counter = 0
        #: lifetime counters (surfaced through trial stats)
        self.recomputes = 0
        self.notifications = 0
        self.path_resolutions = 0
        self.path_cache_hits = 0
        self.full_solves = 0
        self.incremental_solves = 0
        self._subscribe()

    def _default_solver(
        self,
        paths: Dict[str, Tuple[_Link, ...]],
        capacity: Dict[_Link, float],
        demand: Optional[Dict[str, float]] = None,
    ) -> Dict[str, float]:
        """Solve with the configured engine (``self.solver`` stays an
        instance attribute so mutants can wrap it)."""
        rates = max_min_rates(paths, capacity, demand, engine=self.engine)
        return {str(name): rate for name, rate in sorted(rates.items())}

    # -------------------------------------------------------- subscriptions

    def _subscribe(self) -> None:
        """Listen to every place network state can change (see module
        docstring); all hooks funnel into :meth:`_notify`, each recording
        the node(s) whose state moved for path-cache invalidation."""
        network = self.network
        nodes = network.nodes  # type: ignore[attr-defined]
        for name in sorted(nodes):
            node = nodes[name]
            listener = self._node_listener(name)
            node.epoch_listeners.append(listener)
            fib = getattr(node, "fib", None)
            if fib is not None:
                fib.listeners.append(listener)
        for link in network.links:  # type: ignore[attr-defined]
            link.state_listeners.append(
                self._link_listener(link.node_a.name, link.node_b.name)
            )

    def _node_listener(self, name: str) -> Callable[[], None]:
        def on_change() -> None:
            self._changed_nodes.add(name)
            self._notify()

        return on_change

    def _link_listener(self, a: str, b: str) -> Callable[[], None]:
        # an actual-state flip is consulted only by resolutions passing
        # through an endpoint, so both endpoints key the invalidation
        def on_change() -> None:
            self._changed_nodes.add(a)
            self._changed_nodes.add(b)
            self._notify()

        return on_change

    def _notify(self) -> None:
        """A network change happened *now*; coalesce into one recompute."""
        self.notifications += 1
        if not self._active:
            return
        now = self.sim.now
        if self._pending_at == now:
            return
        self._pending_at = now
        self.sim.schedule_at(now, self._recompute_event, priority=PRIORITY_FLOW)

    def _recompute_event(self) -> None:
        self._pending_at = None
        self._recompute()

    # --------------------------------------------------------------- flows

    def add_cbr_flow(
        self,
        name: str,
        src: str,
        dst: str,
        dport: int,
        sport: int,
        protocol: int = PROTO_UDP,
        packet_bytes: int = 1448,
        interval: Time = 100_000,
        start: Time = 0,
        stop: Time = 0,
        reliable: bool = False,
    ) -> FluidFlow:
        """Register a flow; it activates/deactivates by scheduled event."""
        if name in self.flows:
            raise ValueError(f"duplicate flow name {name!r}")
        if stop <= start:
            raise ValueError(f"flow {name!r}: stop must be after start")
        spec = FlowSpec(
            name=name, src=src, dst=dst, dport=dport, sport=sport,
            protocol=protocol, packet_bytes=packet_bytes, interval=interval,
            start=start, stop=stop, reliable=reliable,
        )
        flow = FluidFlow(spec=spec, advanced_to=start)
        self.flows[name] = flow
        self.sim.schedule_at(start, self._activate, flow, priority=PRIORITY_FLOW)
        self.sim.schedule_at(stop, self._on_stop, flow, priority=PRIORITY_FLOW)
        return flow

    def add_paced_flow(self, *args: object, **kwargs: object) -> FluidFlow:
        """A reliable (paced-TCP-like) flow: same knobs as
        :meth:`add_cbr_flow` with backlog-and-drain semantics."""
        kwargs["reliable"] = True
        return self.add_cbr_flow(*args, **kwargs)  # type: ignore[arg-type]

    def _activate(self, flow: FluidFlow) -> None:
        flow.active = True
        name = flow.spec.name
        self._active[name] = flow
        if flow.spec.reliable:
            self._reliable_active.add(name)
        self._needs_resolve.add(name)
        self._recompute()

    def _on_stop(self, flow: FluidFlow) -> None:
        """The application stops offering; a reliable flow with backlog
        stays active until it drains."""
        if not flow.active:
            return
        if flow.spec.reliable:
            self._advance(flow, self.sim.now)
            if flow.offered_bytes(self.sim.now) - flow.delivered > 0.5:
                # the offer rate drops to 0 here, so the drain
                # prediction (if any) must be redone even if the
                # fair-share rate does not move
                self._drain_dirty.add(flow.spec.name)
                self._recompute()
                return
        self._deactivate(flow)

    def _deactivate(self, flow: FluidFlow) -> None:
        if not flow.active:
            return
        self._advance(flow, self.sim.now)
        flow.active = False
        name = flow.spec.name
        self._active.pop(name, None)
        self._reliable_active.discard(name)
        self._needs_resolve.discard(name)
        self._drain_dirty.discard(name)
        cached = self._path_cache.pop(name, None)
        if cached is not None:
            self._unregister(name, cached.visited)
        handle = self._drain_handles.pop(name, None)
        if handle is not None:
            handle.cancel()  # type: ignore[attr-defined]
        self._departed.add(name)
        self._recompute()

    # ----------------------------------------------------------- recompute

    def _advance(self, flow: FluidFlow, to: Time) -> None:
        """Integrate the flow's delivered bytes up to ``to``."""
        if to <= flow.advanced_to:
            return
        rate = flow.segments[-1].rate if flow.segments else 0.0
        flow.delivered += rate * (to - flow.advanced_to)
        if flow.spec.reliable:
            # delivery can never outrun the offer (drain events split
            # segments at the catch-up instant; this caps float drift)
            flow.delivered = min(flow.delivered, flow.offered_bytes(to))
        flow.advanced_to = to

    def _resolve(self, spec: FlowSpec) -> _ResolvedPath:
        """The flow's path right now, with the node set the resolution
        consulted (the cache invalidation key)."""
        path, complete = self.network.trace_route(  # type: ignore[attr-defined]
            spec.src, spec.dst, spec.protocol, spec.sport, spec.dport,
            check_actual=True,
        )
        visited = tuple(sorted(set(path)))
        if not complete:
            return _ResolvedPath(None, 0, 0, visited)
        links = tuple(zip(path, path[1:]))
        tx = transmission_delay(spec.packet_bytes, self.params.link_rate_gbps)
        per_hop = tx + self.params.propagation_delay
        switches = max(0, len(path) - 2)
        delay = len(links) * per_hop + switches * self.params.switch_processing_delay
        return _ResolvedPath(links, delay, switches, visited)

    def _unregister(self, name: str, visited: Iterable[str]) -> None:
        for node in visited:
            members = self._flows_by_node.get(node)
            if members is not None:
                members.discard(name)
                if not members:
                    del self._flows_by_node[node]

    def _refresh_paths(self, now: Time) -> Set[str]:
        """Re-resolve every flow whose cached path may be stale (it
        consulted a changed node, or it was never resolved); returns the
        flows whose resolved links actually changed."""
        active = self._active
        stale: Set[str] = set()
        if self._changed_nodes:
            by_node = self._flows_by_node
            for node in sorted(self._changed_nodes):
                members = by_node.get(node)
                if members:
                    stale |= members
            self._changed_nodes = set()
        resolve = {name for name in stale if name in active}
        resolve |= self._needs_resolve
        self._needs_resolve = set()
        self.path_cache_hits += len(active) - len(resolve)
        input_changed: Set[str] = set()
        for name in sorted(resolve):
            flow = active[name]
            old = self._path_cache.get(name)
            resolved = self._resolve(flow.spec)
            self.path_resolutions += 1
            if old is None or old.visited != resolved.visited:
                if old is not None:
                    self._unregister(name, old.visited)
                for node in resolved.visited:
                    self._flows_by_node.setdefault(node, set()).add(name)
            self._path_cache[name] = resolved
            if old is None or old.links != resolved.links:
                input_changed.add(name)
            if resolved.links is None:
                self._advance(flow, now)
                self._append_segment(flow, now, 0.0, 0, 0)
                if flow.spec.reliable:
                    # a pending drain prediction is void on a dead path
                    self._drain_dirty.add(name)
        return input_changed

    def _solver_input(self, flow: FluidFlow, now: Time) -> _SolverInput:
        """What the solver would see for this flow right now (requires
        reliable flows advanced to ``now``); None = no live path."""
        cached = self._path_cache.get(flow.spec.name)
        if cached is None or cached.links is None:
            return None
        spec = flow.spec
        if spec.reliable and (
            flow.offered_bytes(now) - flow.delivered > 0.5 or now >= spec.stop
        ):
            # backlogged: drain elastically at the fair-share rate
            return (cached.links, None)
        return (cached.links, spec.demand)

    def _recompute(self) -> None:
        """Re-resolve stale paths, then re-solve fair shares for the
        affected flows only (module docstring / DESIGN §13)."""
        now = self.sim.now
        self.recomputes += 1
        active = self._active

        # reliable flows' demands depend on their backlog at `now`
        for name in sorted(self._reliable_active):
            self._advance(active[name], now)

        input_changed = self._refresh_paths(now)

        changed: Set[str] = set()
        for name in sorted(input_changed | self._reliable_active):
            flow = active.get(name)
            if flow is None:
                continue
            fresh_input = self._solver_input(flow, now)
            if self._last_inputs.get(name) != fresh_input:
                changed.add(name)
        departed = {n for n in self._departed if n in self._last_inputs}
        self._departed = set()
        moved = changed | departed
        if not moved:
            self._schedule_drains(now)
            return

        # links whose sharing changed: every link a moved flow used to
        # cross, plus every link a changed flow now crosses
        touched: Set[_Link] = set()
        for name in moved:
            old = self._last_inputs.get(name)
            if old is not None:
                touched.update(old[0])
        for name in changed:
            cached = self._path_cache.get(name)
            if cached is not None and cached.links is not None:
                touched.update(cached.links)
        comps = {self._link_comp[link] for link in touched if link in self._link_comp}
        scope: Set[str] = set(changed)
        for comp in sorted(comps):
            scope |= self._comp_members.get(comp, set())
        solvable: List[str] = []
        for name in sorted(scope):
            flow = active.get(name)
            if flow is None:
                continue
            cached = self._path_cache.get(name)
            if cached is not None and cached.links is not None:
                solvable.append(name)
        # moved flows that left the solve (departed, or path died) drop
        # out of the frozen state
        keep = set(solvable)
        for name in sorted(moved):
            if name not in keep:
                self._last_inputs.pop(name, None)
                self._last_rates.pop(name, None)

        n_active = len(active)
        if (
            n_active < self.INCREMENTAL_MIN_ACTIVE
            or len(solvable) >= self.FULL_SOLVE_FRACTION * n_active
        ):
            self._solve(now, sorted(active), full=True)
        else:
            self._invalidate_components(comps)
            self._solve(now, solvable, full=False)
        self._schedule_drains(now)

    def _solve(self, now: Time, names: List[str], full: bool) -> None:
        """Run the fair-share solver over ``names`` (dead-path flows are
        skipped) and emit the resulting segments.

        ``full=True`` replaces the entire frozen state; ``full=False``
        assumes the caller already invalidated every component the
        solved flows can touch, and splices the subset's rates into the
        frozen state — exact because no flow outside the subset shares a
        link with it (max-min decomposes over sharing components).
        """
        active = self._active
        bytes_per_ns = self.params.link_rate_gbps / 8.0
        paths: Dict[str, Tuple[_Link, ...]] = {}
        demand: Dict[str, float] = {}
        capacity: Dict[_Link, float] = {}
        inputs: Dict[str, _SolverInput] = {} if full else self._last_inputs
        for name in names:
            flow = active[name]
            cached = self._path_cache.get(name)
            if cached is None or cached.links is None:
                continue
            new_input = self._solver_input(flow, now)
            assert new_input is not None
            inputs[name] = new_input
            links, dem = new_input
            paths[name] = links
            if dem is not None:
                demand[name] = dem
            for link in links:
                capacity[link] = bytes_per_ns
        rates = self.solver(paths, capacity, demand)
        if full:
            self.full_solves += 1
            self._last_inputs = inputs
            self._last_rates = {}
            self._link_comp = {}
            self._comp_members = {}
            self._comp_links = {}
        else:
            self.incremental_solves += 1
        self._assign_components(paths)
        for name in sorted(paths):
            flow = active[name]
            cached = self._path_cache[name]
            rate = float(rates[name])
            self._last_rates[name] = rate
            self._advance(flow, now)
            self._append_segment(flow, now, rate, cached.delay, cached.hops)
            if flow.spec.reliable:
                self._drain_dirty.add(name)

    # ----------------------------------------------- sharing components

    def _invalidate_components(self, comps: Iterable[int]) -> None:
        for comp in sorted(comps):
            for link in self._comp_links.pop(comp, ()):
                self._link_comp.pop(link, None)
            self._comp_members.pop(comp, None)

    def _assign_components(self, paths: Dict[str, Tuple[_Link, ...]]) -> None:
        """Group the solved flows into connected components of the
        link-sharing graph (union-find over their links) and record the
        membership under fresh component ids.  Every link here is
        unassigned by construction: a full solve cleared the maps, an
        incremental one invalidated every component it can touch."""
        if not paths:
            return
        parent: Dict[_Link, _Link] = {}

        def find(link: _Link) -> _Link:
            root = link
            while parent[root] != root:
                root = parent[root]
            while parent[link] != root:
                parent[link], link = root, parent[link]
            return root

        for name in sorted(paths):
            links = paths[name]
            first = links[0]
            if first not in parent:
                parent[first] = first
            anchor = find(first)
            for link in links[1:]:
                if link not in parent:
                    parent[link] = anchor
                else:
                    root = find(link)
                    if root != anchor:
                        parent[root] = anchor
        comp_of_root: Dict[_Link, int] = {}
        for name in sorted(paths):
            root = find(paths[name][0])
            cid = comp_of_root.get(root)
            if cid is None:
                self._comp_counter += 1
                cid = self._comp_counter
                comp_of_root[root] = cid
                self._comp_members[cid] = set()
                self._comp_links[cid] = set()
            self._comp_members[cid].add(name)
        for link in sorted(parent):
            cid = comp_of_root[find(link)]
            self._link_comp[link] = cid
            self._comp_links[cid].add(link)

    # -------------------------------------------------------------- output

    def _append_segment(
        self, flow: FluidFlow, now: Time, rate: float, delay: Time, hops: int
    ) -> None:
        segments = flow.segments
        if segments and segments[-1].start == now:
            segments.pop()  # same-instant refinement: last write wins
        if segments:
            last = segments[-1]
            if last.rate == rate and last.delay == delay and last.hops == hops:
                return
        segments.append(FlowSegment(start=now, rate=rate, delay=delay, hops=hops))

    def _schedule_drains(self, now: Time) -> None:
        """For each dirty backlogged reliable flow, schedule the instant
        its backlog empties — the rate changes there (drain -> paced)
        without any network event to trigger a recompute.  Flows whose
        rate and offer rate did not move keep their scheduled drain: the
        prediction is linear, so it stays correct."""
        if not self._drain_dirty:
            return
        dirty = self._drain_dirty
        self._drain_dirty = set()
        for name in sorted(dirty):
            flow = self._active.get(name)
            if flow is None:
                continue
            spec = flow.spec
            old = self._drain_handles.pop(name, None)
            if old is not None:
                old.cancel()  # type: ignore[attr-defined]
            if not spec.reliable or not flow.segments:
                continue
            rate = flow.segments[-1].rate
            backlog = flow.offered_bytes(now) - flow.delivered
            if rate <= 0.0 or backlog <= 0.5:
                continue
            offer_rate = spec.demand if now < spec.stop else 0.0
            if rate <= offer_rate:
                continue
            drain_ns = int(backlog / (rate - offer_rate)) + 1
            if now < spec.stop and now + drain_ns > spec.stop:
                # the offer stops before the drain completes; the stop
                # event re-enters here with the post-stop offer rate
                continue
            self._drain_handles[name] = self.sim.schedule(
                drain_ns, self._on_drained, flow, priority=PRIORITY_FLOW
            )

    def _on_drained(self, flow: FluidFlow) -> None:
        self._drain_handles.pop(flow.spec.name, None)
        if not flow.active:
            return
        if self.sim.now >= flow.spec.stop:
            self._deactivate(flow)
        else:
            self._recompute()

    # ------------------------------------------------------------ epilogue

    def finalize(self) -> None:
        """Close every flow's timeline at the current instant; flows'
        analytic outputs (arrivals, deliveries) become readable."""
        now = self.sim.now
        for name in sorted(self.flows):
            flow = self.flows[name]
            self._advance(flow, now)
            if flow.closed_at is None or flow.closed_at < now:
                flow.closed_at = now

    def stats(self) -> Dict[str, int]:
        """JSON-safe model counters for trial stats / flight recorder."""
        return {
            "flows": len(self.flows),
            "recomputes": self.recomputes,
            "notifications": self.notifications,
            "path_resolutions": self.path_resolutions,
            "path_cache_hits": self.path_cache_hits,
            "full_solves": self.full_solves,
            "incremental_solves": self.incremental_solves,
        }
