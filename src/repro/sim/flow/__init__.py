"""Flow-level (fluid) simulation backend.

Selected with ``NetworkParams(backend="flow")``: data traffic becomes
piecewise-constant fluid flows whose rates are max-min fair shares of
the link capacities, while the control plane (failure detection, LSA
flooding, SPF throttling, FIB downloads) keeps running event-driven on
the unchanged engine.  See :mod:`repro.sim.flow.model` for the model,
:mod:`repro.sim.flow.fairshare` for the solver (vectorized and python
engines over one CSR incidence), and :mod:`repro.sim.flow.warmstart`
for the batch warm start that makes k=32/k=48 fabrics tractable.
"""

from .fairshare import (
    ENGINES,
    FairShareError,
    FlowIncidence,
    FlowId,
    LinkId,
    build_incidence,
    have_numpy,
    link_loads,
    max_min_rates,
)
from .model import (
    PRIORITY_FLOW,
    FlowSegment,
    FlowSpec,
    FluidFlow,
    FluidTrafficModel,
)

__all__ = [
    "ENGINES",
    "FairShareError",
    "FlowIncidence",
    "FlowId",
    "LinkId",
    "build_incidence",
    "have_numpy",
    "link_loads",
    "max_min_rates",
    "PRIORITY_FLOW",
    "FlowSegment",
    "FlowSpec",
    "FluidFlow",
    "FluidTrafficModel",
]
