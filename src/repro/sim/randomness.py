"""Seeded, named random streams.

Every stochastic element of an experiment (failure arrival process, workload
inter-arrivals, host selection, ...) draws from its **own** named stream, all
derived deterministically from one master seed.  This keeps experiments
reproducible and — more importantly — keeps streams independent: adding a new
consumer of randomness does not perturb the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import math
import random


def derive_seed(master_seed: int, name: str) -> int:
    """A child seed deterministically derived from ``(master_seed, name)``.

    The same SHA-256 derivation :class:`RandomStreams` uses internally,
    exposed for consumers that need a *seed* rather than a stream — e.g.
    the campaign runner pins one derived seed per trial so that serial and
    parallel execution (different processes, arbitrary completion order)
    draw bit-identical randomness.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A family of independent, deterministically-seeded RNG streams."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream with the given name."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def derive(self, name: str) -> "RandomStreams":
        """A child family seeded from ``(master_seed, name)``.

        Children are independent of the parent's streams and of each
        other; handing each campaign trial its own family keeps adding
        trials from perturbing the draws of existing ones.
        """
        return RandomStreams(derive_seed(self.master_seed, name))


def lognormal_from_mean_sigma(rng: random.Random, mean: float, sigma: float) -> float:
    """Draw from a log-normal with the given *arithmetic* mean.

    The paper's failure model (after Gill et al. [1]) uses log-normal
    inter-failure times and durations.  Specifying the arithmetic mean is far
    more convenient for calibration ("~40 failures in 600 s") than the
    underlying ``mu`` of the normal, so we solve
    ``mean = exp(mu + sigma^2 / 2)`` for ``mu``.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    mu = math.log(mean) - sigma * sigma / 2.0
    return rng.lognormvariate(mu, sigma)
