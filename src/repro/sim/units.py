"""Time and data-size units for the simulator.

All simulated time is kept as **integer nanoseconds** so that event ordering
is exact and runs are bit-for-bit reproducible.  The helpers here convert
human-friendly quantities into nanoseconds (and back), and compute
serialization delays for the store-and-forward link model.

The choice of nanoseconds is deliberate: a 1500-byte frame at 1 Gbps
serializes in exactly 12 000 ns, so the paper's per-hop arithmetic
(12 us transmission + 5 us propagation = 17 us) is representable without
rounding error.
"""

from __future__ import annotations

#: Type alias for simulated time (integer nanoseconds).
Time = int

NANOSECOND: Time = 1
MICROSECOND: Time = 1_000
MILLISECOND: Time = 1_000_000
SECOND: Time = 1_000_000_000


def nanoseconds(value: float) -> Time:
    """Convert a value in nanoseconds to simulator time."""
    return round(value)


def microseconds(value: float) -> Time:
    """Convert a value in microseconds to simulator time."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> Time:
    """Convert a value in milliseconds to simulator time."""
    return round(value * MILLISECOND)


def seconds(value: float) -> Time:
    """Convert a value in seconds to simulator time."""
    return round(value * SECOND)


def to_microseconds(t: Time) -> float:
    """Convert simulator time to (float) microseconds."""
    return t / MICROSECOND


def to_milliseconds(t: Time) -> float:
    """Convert simulator time to (float) milliseconds."""
    return t / MILLISECOND


def to_seconds(t: Time) -> float:
    """Convert simulator time to (float) seconds."""
    return t / SECOND


def gbps(value: float) -> float:
    """Express a link rate given in gigabits/second as bits per nanosecond."""
    return value  # 1 Gbps == 1 bit/ns, conveniently.


def transmission_delay(size_bytes: int, rate_gbps: float) -> Time:
    """Serialization delay of ``size_bytes`` at ``rate_gbps``.

    With rates expressed in Gbps, one bit takes ``1/rate`` nanoseconds, so a
    packet of ``8 * size_bytes`` bits takes ``8 * size_bytes / rate`` ns.
    """
    if rate_gbps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_gbps}")
    return round(8 * size_bytes / rate_gbps)
