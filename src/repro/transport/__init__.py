"""Transport layer: UDP probe apps and a compact TCP implementation."""

from .apps import (
    PacedTcpSender,
    RequestOutcome,
    RequestResponseServer,
    TcpSinkServer,
    issue_request,
)
from .tcp import (
    FLAG_ACK,
    FLAG_SYN,
    TcpConnection,
    TcpListener,
    TcpParams,
    TcpSegment,
    TcpStack,
    TcpState,
)
from .udp import UdpArrival, UdpDatagram, UdpSender, UdpSink

__all__ = [
    "PacedTcpSender",
    "RequestOutcome",
    "RequestResponseServer",
    "TcpSinkServer",
    "issue_request",
    "FLAG_ACK",
    "FLAG_SYN",
    "TcpConnection",
    "TcpListener",
    "TcpParams",
    "TcpSegment",
    "TcpStack",
    "TcpState",
    "UdpArrival",
    "UdpDatagram",
    "UdpSender",
    "UdpSink",
]
