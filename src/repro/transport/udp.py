"""UDP applications: the constant-bit-rate flow of §III.

The paper's probe traffic sends a 1448-byte segment every 100 us; the
receiver's arrival log is what the connectivity-loss and packet-loss
metrics of Table III / Fig 4 are computed from (the 100 us interval is the
measurement granularity of the "duration of connectivity loss").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..dataplane.node import HostNode, NetworkNode
from ..net.ip import IPv4Address
from ..net.packet import PROTO_UDP, Packet, WIRE_OVERHEAD
from ..sim.engine import Simulator
from ..sim.units import Time, microseconds


@dataclass(frozen=True)
class UdpDatagram:
    """Application payload carried in probe packets."""

    seq: int
    sent_at: Time


@dataclass
class UdpArrival:
    """One received datagram, as logged by the sink."""

    seq: int
    sent_at: Time
    received_at: Time
    hops: int

    @property
    def delay(self) -> Time:
        return self.received_at - self.sent_at


class UdpSender:
    """Constant-rate UDP source (default: 1448 B every 100 us, as in §III)."""

    def __init__(
        self,
        sim: Simulator,
        host: HostNode,
        dst: IPv4Address,
        dport: int,
        sport: int = 10000,
        payload_bytes: int = 1448,
        interval: Time = microseconds(100),
    ) -> None:
        self.sim = sim
        self.host = host
        self.dst = dst
        self.dport = dport
        self.sport = sport
        self.payload_bytes = payload_bytes
        self.interval = interval
        self.sent = 0
        self._stop_at: Optional[Time] = None
        self._running = False

    def start(self, at: Time, stop_at: Optional[Time] = None) -> None:
        """Begin sending at absolute time ``at`` (until ``stop_at``)."""
        self._stop_at = stop_at
        self._running = True
        self.sim.schedule_at(at, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        if self._stop_at is not None and now >= self._stop_at:
            self._running = False
            return
        packet = Packet(
            src=self.host.ip,
            dst=self.dst,
            protocol=PROTO_UDP,
            size_bytes=self.payload_bytes + WIRE_OVERHEAD,
            sport=self.sport,
            dport=self.dport,
            payload=UdpDatagram(seq=self.sent, sent_at=now),
            created_at=now,
        )
        self.host.send(packet)
        self.sent += 1
        self.sim.schedule(self.interval, self._tick)


class UdpSink:
    """Receives probe datagrams and logs arrivals for the metrics layer."""

    def __init__(self, sim: Simulator, host: HostNode, port: int) -> None:
        self.sim = sim
        self.host = host
        self.port = port
        self.arrivals: List[UdpArrival] = []
        host.register_handler(PROTO_UDP, port, self._on_packet)

    def _on_packet(self, packet: Packet, node: NetworkNode) -> None:
        datagram = packet.payload
        if not isinstance(datagram, UdpDatagram):
            return
        self.arrivals.append(
            UdpArrival(
                seq=datagram.seq,
                sent_at=datagram.sent_at,
                received_at=self.sim.now,
                hops=packet.hops,
            )
        )

    @property
    def received(self) -> int:
        return len(self.arrivals)
