"""Reusable TCP applications built on the transport layer.

* :class:`PacedTcpSender` — the paper's testbed TCP flow: the application
  offers a 1448-byte segment every 100 us (§III), so throughput collapse
  is visible as delayed delivery rather than congestion-window artifacts.
* :class:`TcpSinkServer` — accepts connections and logs delivery times
  (the receiver side of Fig 2(b)'s throughput plot).
* :class:`RequestResponseServer` / :func:`issue_request` — the
  partition-aggregate building block (§IV-B): a small request, a fixed-size
  response, completion timing at the requester.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..dataplane.node import HostNode
from ..net.ip import IPv4Address
from ..sim.engine import Simulator
from ..sim.units import Time, microseconds
from .tcp import TcpConnection, TcpListener, TcpParams, TcpStack


class TcpSinkServer:
    """Accepts connections on a port and records (time, bytes) deliveries."""

    def __init__(self, sim: Simulator, host: HostNode, port: int) -> None:
        self.sim = sim
        self.deliveries: List[Tuple[Time, int]] = []
        self.listener = TcpListener(sim, host, port, self._accept)

    def _accept(self, connection: TcpConnection) -> None:
        connection.on_data = self._on_data

    def _on_data(self, connection: TcpConnection, newly: int) -> None:
        self.deliveries.append((self.sim.now, newly))

    @property
    def total_bytes(self) -> int:
        return sum(n for _, n in self.deliveries)


class PacedTcpSender:
    """Offers ``segment_bytes`` to a TCP connection every ``interval``."""

    def __init__(
        self,
        sim: Simulator,
        host: HostNode,
        dst: IPv4Address,
        dport: int,
        segment_bytes: int = 1448,
        interval: Time = microseconds(100),
        params: Optional[TcpParams] = None,
    ) -> None:
        self.sim = sim
        self.stack = TcpStack(sim, host, params)
        self.dst = dst
        self.dport = dport
        self.segment_bytes = segment_bytes
        self.interval = interval
        self.offered = 0
        self.connection: Optional[TcpConnection] = None
        self._stop_at: Optional[Time] = None
        self._running = False

    def start(self, at: Time, stop_at: Optional[Time] = None) -> None:
        self._stop_at = stop_at
        self.sim.schedule_at(at, self._begin)

    def _begin(self) -> None:
        self.connection = self.stack.open(self.dst, self.dport)
        self._running = True
        self._tick()

    def _tick(self) -> None:
        if not self._running:
            return
        if self._stop_at is not None and self.sim.now >= self._stop_at:
            self._running = False
            return
        assert self.connection is not None
        self.connection.send(self.segment_bytes)
        self.offered += self.segment_bytes
        self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False


@dataclass
class RequestOutcome:
    """Timing of one request/response exchange."""

    started_at: Time
    completed_at: Optional[Time] = None
    failed: bool = False

    @property
    def completion_time(self) -> Optional[Time]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class RequestResponseServer:
    """Replies to every ``request_bytes``-request with ``response_bytes``."""

    def __init__(
        self,
        sim: Simulator,
        host: HostNode,
        port: int,
        request_bytes: int = 64,
        response_bytes: int = 2048,
        params: Optional[TcpParams] = None,
    ) -> None:
        self.sim = sim
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.requests_served = 0
        self.listener = TcpListener(sim, host, port, self._accept, params)
        self._pending: dict[int, int] = {}  # connection id -> bytes seen

    def _accept(self, connection: TcpConnection) -> None:
        self._pending[id(connection)] = 0
        connection.on_data = self._on_data

    def _on_data(self, connection: TcpConnection, newly: int) -> None:
        key = id(connection)
        self._pending[key] = self._pending.get(key, 0) + newly
        while self._pending[key] >= self.request_bytes:
            self._pending[key] -= self.request_bytes
            self.requests_served += 1
            connection.send(self.response_bytes)


def issue_request(
    sim: Simulator,
    stack: TcpStack,
    server_ip: IPv4Address,
    server_port: int,
    request_bytes: int = 64,
    response_bytes: int = 2048,
    on_complete: Optional[Callable[[RequestOutcome], None]] = None,
    params: Optional[TcpParams] = None,
) -> RequestOutcome:
    """Open a connection, send a request, await the full response.

    The returned outcome's ``completed_at`` is filled in when the last
    response byte arrives in order (the paper measures completion as all
    responses received).
    """
    outcome = RequestOutcome(started_at=sim.now)
    received = 0

    connection = stack.open(server_ip, server_port, params)
    connection.send(request_bytes)

    def on_data(conn: TcpConnection, newly: int) -> None:
        nonlocal received
        received += newly
        if received >= response_bytes and outcome.completed_at is None:
            outcome.completed_at = sim.now
            conn.close()
            if on_complete is not None:
                on_complete(outcome)

    def on_failure(conn: TcpConnection) -> None:
        outcome.failed = True
        if on_complete is not None:
            on_complete(outcome)

    connection.on_data = on_data
    connection.on_failure = on_failure
    return outcome
