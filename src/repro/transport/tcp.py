"""A compact TCP implementation (the Linux-stack stand-in).

The paper's TCP-level results are dominated by retransmission timing: a
200 ms initial/minimum RTO that doubles on repeated loss (§III explains the
fat tree's 700 ms throughput collapse as 60 ms detection + one 200 ms RTO
that retransmits into the still-broken network + a doubled 400 ms RTO).
This model implements the pieces that matter for that behaviour and for the
partition-aggregate workload of §IV-B:

* three-way handshake with SYN retransmission,
* byte-counting sliding window (we track counts, not payload bytes),
* cumulative ACKs, out-of-order reassembly, duplicate-ACK detection,
* RFC 6298 RTT estimation with 200 ms minimum RTO and exponential backoff
  (Karn's rule: no RTT samples from retransmitted segments),
* IW10 slow start, AIMD congestion avoidance, fast retransmit /
  NewReno-style fast recovery.

Deliberate simplifications (documented for reviewers): immediate ACKs (no
delayed-ACK timer — DCN kernels run quickack in these regimes and none of
the reproduced results depend on a 40 ms delayed ACK), no SACK (dup-ACK +
RTO recovery reproduces the paper's timing), no FIN teardown (experiment
connections are discarded, not closed), unlimited receive window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..dataplane.node import HostNode, NetworkNode
from ..net.ip import IPv4Address
from ..net.packet import PROTO_TCP, Packet, WIRE_OVERHEAD
from ..sim.engine import Simulator, Timer
from ..sim.units import Time, milliseconds, seconds

FLAG_SYN = 0x1
FLAG_ACK = 0x2


@dataclass(frozen=True)
class TcpSegment:
    """The TCP header fields we model (carried as packet payload)."""

    seq: int
    ack: int
    flags: int
    length: int  # data bytes covered by this segment

    @property
    def seq_end(self) -> int:
        return self.seq + self.length + (1 if self.flags & FLAG_SYN else 0)


@dataclass(frozen=True)
class TcpParams:
    """Transport constants (defaults per the paper's environment)."""

    mss: int = 1448
    initial_cwnd_segments: int = 10  # IW10, Linux default of the era
    rto_initial: Time = milliseconds(200)
    rto_min: Time = milliseconds(200)
    rto_max: Time = seconds(60)
    dupack_threshold: int = 3
    max_retries: int = 15


class TcpState(enum.Enum):
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    FAILED = "failed"


class TcpConnection:
    """One endpoint of a TCP connection.

    Application interface: :meth:`send` queues bytes; ``on_data(conn, n)``
    fires as in-order bytes are delivered; ``on_established(conn)`` fires
    when the handshake completes; ``on_all_acked(conn)`` fires whenever the
    send queue fully drains (request/response apps key off this).
    """

    def __init__(
        self,
        sim: Simulator,
        host: HostNode,
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
        params: Optional[TcpParams] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.params = params or TcpParams()

        self.state = TcpState.CLOSED
        # ---- send side (sequence space: SYN occupies 0, data starts at 1)
        self.snd_una = 0
        self.snd_nxt = 0
        self._app_bytes = 0  # total bytes the application has queued
        self.cwnd = self.params.mss * self.params.initial_cwnd_segments
        self.ssthresh = 1 << 30
        self._dupacks = 0
        self._in_recovery = False
        self._recover_point = 0
        #: cwnd validation (RFC 2861): grow cwnd only when it was the
        #: binding constraint — an app-limited paced flow keeps IW
        self._cwnd_limited = False
        #: highest sequence ever sent (for retransmission accounting and
        #: Karn timing after a go-back-N rollback)
        self._snd_max = 0
        # ---- RTT estimation (RFC 6298)
        self._srtt: Optional[Time] = None
        self._rttvar: Time = 0
        self.rto: Time = self.params.rto_initial
        self._timed_seq: Optional[int] = None  # seq_end being timed
        self._timed_at: Time = 0
        # ---- retransmission
        self._rto_timer = Timer(sim, self._on_rto)
        self._retries = 0
        # ---- receive side
        self.rcv_nxt = 0
        self._ooo: List[Tuple[int, int]] = []  # disjoint [start, end) ranges
        self.bytes_delivered = 0
        # ---- app callbacks
        self.on_established: Optional[Callable[["TcpConnection"], None]] = None
        self.on_data: Optional[Callable[["TcpConnection", int], None]] = None
        self.on_all_acked: Optional[Callable[["TcpConnection"], None]] = None
        self.on_failure: Optional[Callable[["TcpConnection"], None]] = None
        # ---- stats
        self.segments_sent = 0
        self.segments_retransmitted = 0
        self.rto_fires = 0
        self.fast_retransmits = 0
        self.opened_at: Time = 0
        #: internal plumbing hook run once on close (port release)
        self._on_close: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ api

    @property
    def send_limit(self) -> int:
        """Highest sequence number the app has made sendable (exclusive)."""
        return 1 + self._app_bytes

    @property
    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    def connect(self) -> None:
        """Client side: start the three-way handshake."""
        if self.state is not TcpState.CLOSED:
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = TcpState.SYN_SENT
        self.opened_at = self.sim.now
        self._transmit(TcpSegment(seq=0, ack=0, flags=FLAG_SYN, length=0))
        self.snd_nxt = 1
        self._arm_rto()

    def send(self, n_bytes: int) -> None:
        """Queue ``n_bytes`` of application data for transmission."""
        if n_bytes <= 0:
            raise ValueError(f"cannot send {n_bytes} bytes")
        self._app_bytes += n_bytes
        if self.state is TcpState.ESTABLISHED:
            self._try_send()

    def close(self) -> None:
        """Discard the connection (no FIN exchange; see module docstring)."""
        self.state = TcpState.CLOSED
        self._rto_timer.cancel()
        if self._on_close is not None:
            self._on_close()
            self._on_close = None

    # ----------------------------------------------------------- wire level

    def _transmit(self, segment: TcpSegment, retransmission: bool = False) -> None:
        packet = Packet(
            src=self.host.ip,
            dst=self.remote_ip,
            protocol=PROTO_TCP,
            size_bytes=segment.length + WIRE_OVERHEAD,
            sport=self.local_port,
            dport=self.remote_port,
            payload=segment,
            created_at=self.sim.now,
        )
        self.segments_sent += 1
        if retransmission:
            self.segments_retransmitted += 1
        self.host.send(packet)

    def _send_ack(self) -> None:
        self._transmit(
            TcpSegment(seq=self.snd_nxt, ack=self.rcv_nxt, flags=FLAG_ACK, length=0)
        )

    def _try_send(self) -> None:
        """Send as much data as the window allows (from ``snd_nxt``, which
        an RTO may have rolled back for go-back-N recovery)."""
        while (
            self.snd_nxt < self.send_limit
            and self.flight_size < self.cwnd
        ):
            length = min(self.params.mss, self.send_limit - self.snd_nxt)
            segment = TcpSegment(
                seq=self.snd_nxt, ack=self.rcv_nxt, flags=FLAG_ACK, length=length
            )
            is_retransmission = segment.seq_end <= self._snd_max
            self._transmit(segment, retransmission=is_retransmission)
            if self._timed_seq is None and not is_retransmission:
                self._timed_seq = segment.seq_end
                self._timed_at = self.sim.now
            self.snd_nxt += length
            self._snd_max = max(self._snd_max, self.snd_nxt)
            if not self._rto_timer.armed:
                self._arm_rto()
        if self.snd_nxt < self.send_limit and self.flight_size >= self.cwnd:
            self._cwnd_limited = True

    def _retransmit_head(self) -> None:
        """Retransmit one segment starting at ``snd_una``."""
        if self.state is TcpState.SYN_SENT:
            self._transmit(
                TcpSegment(seq=0, ack=0, flags=FLAG_SYN, length=0),
                retransmission=True,
            )
            return
        if self.state is TcpState.SYN_RECEIVED:
            self._transmit(
                TcpSegment(seq=0, ack=self.rcv_nxt, flags=FLAG_SYN | FLAG_ACK, length=0),
                retransmission=True,
            )
            return
        length = min(self.params.mss, self.send_limit - self.snd_una)
        if length <= 0:
            return
        self._transmit(
            TcpSegment(
                seq=self.snd_una, ack=self.rcv_nxt, flags=FLAG_ACK, length=length
            ),
            retransmission=True,
        )
        # Karn's algorithm: a timed segment that gets retransmitted must
        # not produce an RTT sample
        if self._timed_seq is not None and self._timed_seq <= self.snd_una + length:
            self._timed_seq = None

    # ------------------------------------------------------------ timers

    def _arm_rto(self) -> None:
        self._rto_timer.start(self.rto)

    def _on_rto(self) -> None:
        self.rto_fires += 1
        self._retries += 1
        if self._retries > self.params.max_retries:
            self.state = TcpState.FAILED
            if self.on_failure is not None:
                self.on_failure(self)
            return
        self.rto = min(self.rto * 2, self.params.rto_max)
        if self.state is TcpState.ESTABLISHED:
            # go-back-N: treat all outstanding data as lost, roll snd_nxt
            # back and slow-start from the head (classic post-RTO behaviour;
            # segments the receiver had buffered are skipped over by the
            # jumping cumulative ACKs)
            self.ssthresh = max(self.flight_size // 2, 2 * self.params.mss)
            self.cwnd = self.params.mss
            self._in_recovery = False
            self._dupacks = 0
            self._timed_seq = None  # Karn: no samples across a timeout
            self.snd_nxt = self.snd_una
            self._try_send()
        else:
            self._retransmit_head()
        self._arm_rto()

    def _fresh_rto(self) -> Time:
        """RTO recomputed from the smoothed estimate (backoff reset)."""
        if self._srtt is None:
            return self.params.rto_initial
        candidate = self._srtt + max(4 * self._rttvar, milliseconds(1))
        return min(max(candidate, self.params.rto_min), self.params.rto_max)

    def _sample_rtt(self, ack: int) -> None:
        if self._timed_seq is None or ack < self._timed_seq:
            return
        sample = self.sim.now - self._timed_at
        self._timed_seq = None
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample // 2
        else:
            delta = abs(self._srtt - sample)
            self._rttvar = (3 * self._rttvar + delta) // 4
            self._srtt = (7 * self._srtt + sample) // 8
        self.rto = self._fresh_rto()

    # ----------------------------------------------------------- reception

    def handle_segment(self, segment: TcpSegment) -> None:
        """Process one incoming segment (called by the demux layer)."""
        if self.state is TcpState.CLOSED or self.state is TcpState.FAILED:
            return
        if self.state is TcpState.SYN_SENT:
            if segment.flags & FLAG_SYN and segment.flags & FLAG_ACK and segment.ack >= 1:
                self.snd_una = 1
                self.rcv_nxt = segment.seq_end
                self.state = TcpState.ESTABLISHED
                self._retries = 0
                self.rto = self._fresh_rto()
                self._rto_timer.cancel()
                self._send_ack()
                if self.on_established is not None:
                    self.on_established(self)
                self._try_send()
            return
        if self.state is TcpState.SYN_RECEIVED:
            if segment.flags & FLAG_ACK and segment.ack >= 1:
                self.snd_una = max(self.snd_una, 1)
                self.state = TcpState.ESTABLISHED
                self._retries = 0
                self._rto_timer.cancel()
                if self.on_established is not None:
                    self.on_established(self)
                # fall through: the third packet may carry data
            else:
                return

        if segment.flags & FLAG_ACK:
            self._process_ack(segment)
        if segment.length > 0:
            self._process_data(segment)

    def _process_ack(self, segment: TcpSegment) -> None:
        ack = segment.ack
        if ack > max(self.snd_nxt, self._snd_max):
            return  # acks data we never sent; ignore
        if ack > self.snd_una:
            newly = ack - self.snd_una
            self.snd_una = ack
            if self.snd_nxt < ack:
                # a go-back-N rollback was overtaken by an ACK for data the
                # receiver had buffered: resume sending from the ACK point
                self.snd_nxt = ack
            self._retries = 0
            self._dupacks = 0
            self._sample_rtt(ack)
            self.rto = self._fresh_rto()
            if self._in_recovery:
                if ack >= self._recover_point:
                    self.cwnd = self.ssthresh
                    self._in_recovery = False
                else:
                    # NewReno partial ACK: the next hole is lost too
                    self._retransmit_head()
            elif self._cwnd_limited:
                # RFC 2861-style validation: only grow when cwnd was the
                # binding constraint (app-limited flows keep their window)
                if self.cwnd < self.ssthresh:
                    self.cwnd += newly  # slow start
                else:
                    self.cwnd += max(
                        1, self.params.mss * self.params.mss // self.cwnd
                    )
                self._cwnd_limited = False
            if self.flight_size > 0:
                self._arm_rto()
            else:
                self._rto_timer.cancel()
                if (
                    self.snd_una >= self.send_limit
                    and self.on_all_acked is not None
                ):
                    self.on_all_acked(self)
            self._try_send()
        elif (
            ack == self.snd_una
            and self.flight_size > 0
            and segment.length == 0
            and not segment.flags & FLAG_SYN
        ):
            self._dupacks += 1
            if self._dupacks == self.params.dupack_threshold and not self._in_recovery:
                self.fast_retransmits += 1
                self.ssthresh = max(self.flight_size // 2, 2 * self.params.mss)
                self._recover_point = self.snd_nxt
                self._in_recovery = True
                self._retransmit_head()
                self.cwnd = self.ssthresh + 3 * self.params.mss
            elif self._in_recovery:
                self.cwnd += self.params.mss  # window inflation
                self._try_send()

    def _process_data(self, segment: TcpSegment) -> None:
        start, end = segment.seq, segment.seq + segment.length
        if end <= self.rcv_nxt:
            self._send_ack()  # fully old: re-ack
            return
        if start > self.rcv_nxt:
            self._insert_ooo(start, end)
            self._send_ack()  # duplicate ACK signalling the hole
            return
        advanced_to = end
        # absorb any out-of-order ranges made contiguous
        merged = True
        while merged:
            merged = False
            for index, (s, e) in enumerate(self._ooo):
                if s <= advanced_to:
                    advanced_to = max(advanced_to, e)
                    del self._ooo[index]
                    merged = True
                    break
        newly = advanced_to - self.rcv_nxt
        self.rcv_nxt = advanced_to
        self.bytes_delivered += newly
        self._send_ack()
        if self.on_data is not None:
            self.on_data(self, newly)

    def _insert_ooo(self, start: int, end: int) -> None:
        ranges = self._ooo + [(start, end)]
        ranges.sort()
        merged: List[Tuple[int, int]] = []
        for s, e in ranges:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        self._ooo = merged


class TcpListener:
    """A passive endpoint accepting connections on a port."""

    def __init__(
        self,
        sim: Simulator,
        host: HostNode,
        port: int,
        on_connection: Callable[[TcpConnection], None],
        params: Optional[TcpParams] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.port = port
        self.params = params or TcpParams()
        self.on_connection = on_connection
        self.connections: Dict[Tuple[int, int], TcpConnection] = {}
        host.register_handler(PROTO_TCP, port, self._on_packet)

    def _on_packet(self, packet: Packet, node: NetworkNode) -> None:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return
        key = (packet.src.value, packet.sport)
        connection = self.connections.get(key)
        if connection is None:
            if not (segment.flags & FLAG_SYN) or segment.flags & FLAG_ACK:
                return  # no connection and not a fresh SYN: drop
            connection = TcpConnection(
                self.sim, self.host, self.port, packet.src, packet.sport, self.params
            )
            connection.state = TcpState.SYN_RECEIVED
            connection.rcv_nxt = segment.seq_end
            connection.snd_nxt = 1
            connection.opened_at = self.sim.now
            self.connections[key] = connection
            self.on_connection(connection)
            connection._transmit(
                TcpSegment(seq=0, ack=connection.rcv_nxt, flags=FLAG_SYN | FLAG_ACK, length=0)
            )
            connection._arm_rto()
            return
        connection.handle_segment(segment)

    def close(self) -> None:
        for connection in self.connections.values():
            connection.close()
        self.connections.clear()
        self.host.unregister_handler(PROTO_TCP, self.port)


class TcpStack:
    """Per-host client-side plumbing: ephemeral ports and demux."""

    _EPHEMERAL_BASE = 33000

    def __init__(self, sim: Simulator, host: HostNode, params: Optional[TcpParams] = None) -> None:
        self.sim = sim
        self.host = host
        self.params = params or TcpParams()
        self._next_port = self._EPHEMERAL_BASE

    def open(
        self,
        remote_ip: IPv4Address,
        remote_port: int,
        params: Optional[TcpParams] = None,
    ) -> TcpConnection:
        """Create (and start connecting) a client connection."""
        # the host may run several stacks (workload + background traffic):
        # probe the host's demux for a genuinely free port
        port = self._next_port
        while self.host.port_in_use(PROTO_TCP, port):
            port += 1
        self._next_port = port + 1
        connection = TcpConnection(
            self.sim, self.host, port, remote_ip, remote_port,
            params or self.params,
        )

        def dispatch(packet: Packet, node: NetworkNode) -> None:
            segment = packet.payload
            if isinstance(segment, TcpSegment):
                connection.handle_segment(segment)

        self.host.register_handler(PROTO_TCP, port, dispatch)
        connection._on_close = lambda: self.host.unregister_handler(PROTO_TCP, port)
        connection.connect()
        return connection
