"""Network-layer substrate: IPv4 model, FIB, packets, ECMP hashing."""

from .ecmp import flow_hash, fnv1a_64, select_next_hop
from .fib import LOCAL, Fib, FibEntry, NextHop
from .ip import AddressError, IPv4Address, Prefix
from .packet import (
    DEFAULT_TTL,
    PROTO_ROUTING,
    PROTO_TCP,
    PROTO_UDP,
    WIRE_OVERHEAD,
    Packet,
)

__all__ = [
    "flow_hash",
    "fnv1a_64",
    "select_next_hop",
    "LOCAL",
    "Fib",
    "FibEntry",
    "NextHop",
    "AddressError",
    "IPv4Address",
    "Prefix",
    "DEFAULT_TTL",
    "PROTO_ROUTING",
    "PROTO_TCP",
    "PROTO_UDP",
    "WIRE_OVERHEAD",
    "Packet",
]
