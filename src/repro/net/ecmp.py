"""Equal-Cost Multi-Path (ECMP) flow hashing (RFC 2992 style).

Production switches hash the five-tuple so that every packet of a flow takes
the same path while different flows spread over the equal-cost set.  We use
FNV-1a over the packed five-tuple plus a per-switch salt:

* deterministic across runs (unlike Python's randomized ``hash``),
* different switches make independent choices (the salt), matching real
  hardware where each hop hashes independently,
* stable under next-hop-set changes only in the trivial modulo sense — like
  the simple ECMP the paper assumes, a set change may remap flows, which is
  exactly the "eliminate the failed path from the set" behaviour of §II-A.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

T = TypeVar("T")


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash."""
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


def _avalanche(value: int) -> int:
    """splitmix64 finalizer: raw FNV-1a's low bits correlate for
    five-tuples differing by small increments (consecutive ports /
    addresses), which clusters ECMP choices; this mixes every input bit
    into the low bits the modulo actually uses."""
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def flow_hash(flow_key: tuple, salt: int) -> int:
    """Hash a five-tuple with a per-switch salt."""
    src, dst, proto, sport, dport = flow_key
    packed = (
        src.to_bytes(4, "big")
        + dst.to_bytes(4, "big")
        + proto.to_bytes(1, "big")
        + sport.to_bytes(2, "big")
        + dport.to_bytes(2, "big")
        + (salt & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")
    )
    return _avalanche(fnv1a_64(packed))


def select_next_hop(candidates: Sequence[T], flow_key: tuple, salt: int) -> T:
    """Pick one element of ``candidates`` for this flow.

    ``candidates`` must be non-empty and in a deterministic order (the FIB
    keeps next-hop tuples ordered), so the choice is reproducible.
    """
    if not candidates:
        raise ValueError("select_next_hop called with no candidates")
    if len(candidates) == 1:
        return candidates[0]
    return candidates[flow_hash(flow_key, salt) % len(candidates)]
