"""Packets.

One packet class serves every layer: the data plane routes on the IP fields,
transports demultiplex on ``(protocol, ports)``, and the control plane
(link-state protocol) rides in ``payload`` with hop-by-hop addressing.

``size_bytes`` is the **wire size** (headers included); the link model uses
it for serialization delay so the paper's 12 us/hop for a 1448-byte segment
(1500 B on the wire) falls out exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from .ip import IPv4Address

#: IP protocol numbers we use.
PROTO_UDP = 17
PROTO_TCP = 6
PROTO_ROUTING = 89  # OSPF's protocol number; used by our link-state protocol.

#: Bytes of overhead added to an application payload on the wire
#: (Ethernet 18 + IP 20 + transport 8/20; we use a flat 52 like a TCP segment
#: so UDP and TCP probes of equal payload have equal wire size).
WIRE_OVERHEAD = 52

DEFAULT_TTL = 64

_packet_ids = itertools.count()


@dataclass
class Packet:
    """A simulated packet.

    ``uid`` identifies the packet instance across hops (useful in traces);
    ``hops`` counts forwarding operations for path-length metrics.
    """

    src: IPv4Address
    dst: IPv4Address
    protocol: int
    size_bytes: int
    sport: int = 0
    dport: int = 0
    ttl: int = DEFAULT_TTL
    payload: Any = None
    created_at: int = 0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    hops: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")

    @property
    def flow_key(self) -> tuple:
        """The five-tuple identifying this packet's flow."""
        return (self.src.value, self.dst.value, self.protocol, self.sport, self.dport)

    def forwarded(self) -> "Packet":
        """A copy with TTL decremented and hop count incremented.

        The data plane conceptually mutates the packet in place; we return
        ``self`` mutated (packets are never aliased across queues) to avoid
        allocation on the forwarding fast path.
        """
        self.ttl -= 1
        self.hops += 1
        return self

    def reply_skeleton(self, protocol: Optional[int] = None, size_bytes: int = WIRE_OVERHEAD) -> "Packet":
        """A fresh packet with src/dst (and ports) swapped — handy in tests."""
        return Packet(
            src=self.dst,
            dst=self.src,
            protocol=self.protocol if protocol is None else protocol,
            size_bytes=size_bytes,
            sport=self.dport,
            dport=self.sport,
        )

    def copy(self, **changes: Any) -> "Packet":
        """A field-for-field copy with a fresh uid (unless overridden)."""
        changes.setdefault("uid", next(_packet_ids))
        return replace(self, **changes)
