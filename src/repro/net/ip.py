"""IPv4 addresses and prefixes.

A tiny, fast IPv4 model: addresses are wrapped 32-bit integers, prefixes are
``(network, length)`` pairs with the host bits forced to zero.  We implement
this ourselves (rather than using :mod:`ipaddress`) because the FIB needs
millions of cheap integer comparisons during forwarding, and because the
semantics we need — containment, covering prefixes, iteration — are a small,
easily-tested subset.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator, Union

_MAX32 = 0xFFFFFFFF


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


@total_ordering
class IPv4Address:
    """An IPv4 address backed by a 32-bit integer."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: Union[int, str, "IPv4Address"]) -> None:
        if isinstance(value, IPv4Address):
            self.value = value.value
            self._hash = value._hash
            return
        if isinstance(value, str):
            value = _parse_dotted(value)
        if not isinstance(value, int):
            raise AddressError(f"cannot build an address from {value!r}")
        if not 0 <= value <= _MAX32:
            raise AddressError(f"address out of range: {value}")
        self.value = value
        # precomputed: addresses are immutable and live as dict keys in
        # hot paths (ARP-ish maps, flow keys), so __hash__ must be a
        # plain attribute load
        self._hash = hash(("IPv4Address", value))

    def __int__(self) -> int:
        return self.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self.value == other.value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return self._hash

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"


def _parse_dotted(text: str) -> int:
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _mask(length: int) -> int:
    if not 0 <= length <= 32:
        raise AddressError(f"prefix length out of range: {length}")
    return (_MAX32 << (32 - length)) & _MAX32 if length else 0


@total_ordering
class Prefix:
    """An IPv4 prefix (network address + length), e.g. ``10.11.0.0/16``."""

    __slots__ = ("network", "length", "_hash")

    def __init__(self, network: Union[int, str, IPv4Address], length: int | None = None) -> None:
        if isinstance(network, str) and "/" in network:
            if length is not None:
                raise AddressError("length given twice")
            net_text, len_text = network.split("/", 1)
            network = IPv4Address(net_text)
            length = int(len_text)
        if length is None:
            raise AddressError("prefix length is required")
        addr = IPv4Address(network) if not isinstance(network, IPv4Address) else network
        mask = _mask(length)
        self.network = addr.value & mask
        self.length = length
        # precomputed: prefixes key route tables, FIB tries, and the
        # LSDB fingerprints the SPF caches hash on every lookup — the
        # tuple-build-per-call hash dominated those lookups in profiles
        self._hash = hash(("Prefix", self.network, length))

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``'a.b.c.d/len'``."""
        return cls(text)

    @property
    def mask(self) -> int:
        """Netmask as a 32-bit integer."""
        return _mask(self.length)

    @property
    def network_address(self) -> IPv4Address:
        """The network address (host bits zero)."""
        return IPv4Address(self.network)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def contains(self, item: Union[IPv4Address, "Prefix", int, str]) -> bool:
        """True when this prefix covers the given address or prefix."""
        if isinstance(item, Prefix):
            return item.length >= self.length and (item.network & self.mask) == self.network
        addr = item if isinstance(item, IPv4Address) else IPv4Address(item)
        return (addr.value & self.mask) == self.network

    def __contains__(self, item: Union[IPv4Address, "Prefix", int, str]) -> bool:
        return self.contains(item)

    def supernet(self, new_length: int | None = None) -> "Prefix":
        """The covering prefix one bit shorter (or at ``new_length``)."""
        if new_length is None:
            new_length = self.length - 1
        if new_length < 0 or new_length > self.length:
            raise AddressError(
                f"invalid supernet length {new_length} for /{self.length}"
            )
        return Prefix(IPv4Address(self.network), new_length)

    def address(self, offset: int) -> IPv4Address:
        """The ``offset``-th address inside the prefix."""
        if not 0 <= offset < self.num_addresses:
            raise AddressError(f"offset {offset} outside /{self.length}")
        return IPv4Address(self.network + offset)

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate over host addresses (network and broadcast excluded for
        prefixes shorter than /31)."""
        if self.length >= 31:
            yield from (self.address(i) for i in range(self.num_addresses))
            return
        for i in range(1, self.num_addresses - 1):
            yield self.address(i)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Prefix):
            return self.network == other.network and self.length == other.length
        return NotImplemented

    def __lt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.network_address}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix('{self}')"
