"""Forwarding Information Base: a binary trie with longest-prefix matching.

The FIB is the heart of the reproduction: F²Tree's fast reroute is *nothing
but* longest-prefix-match fall-through.  The backup static routes use
prefixes (``/16``, ``/15``) shorter than anything OSPF installs (``/24``,
``/32``), so they are always present in the FIB; when every next hop of a
longer match is locally known to be dead, the lookup *falls through* to the
next-shorter match.  :meth:`Fib.matches` therefore yields matching entries
from longest to shortest and lets the data plane prune dead next hops at
each step.

The trie is a straightforward binary (bit-at-a-time) trie.  At the scales of
the paper's experiments (tens of routes per switch) anything would do; the
trie keeps lookups O(32) regardless of route count and is the natural thing
to test with hypothesis against a brute-force reference.

Steady-state forwarding never changes the FIB, so the per-destination
**match chain** (every covering entry, longest first) is cached by
destination address and invalidated wholesale by a :attr:`Fib.generation`
counter that every install/withdraw/clear bumps.  :meth:`Fib.chain` is the
cached entry point the data plane uses; :meth:`Fib.matches` remains the
uncached trie walk and is the reference the differential tests compare
against.  The cache only memoizes the pure address→entries function — all
liveness pruning stays in the data plane — so cached and uncached lookups
are byte-identical by construction, and the hypothesis differential test
in ``tests/test_fastpath.py`` pins it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterator, Optional, Tuple

from .ip import IPv4Address, Prefix

__all__ = ["LOCAL", "NextHop", "FibEntry", "FibDelta", "Fib"]

#: Sentinel next hop meaning "the destination is directly attached".
LOCAL = "LOCAL"

#: A next hop is a node identifier (or the LOCAL sentinel).
NextHop = Hashable


@dataclass(frozen=True)
class FibEntry:
    """One installed forwarding entry.

    ``next_hops`` is an ordered tuple (order matters for deterministic ECMP
    hashing).  ``source`` records the producing protocol ("connected",
    "linkstate", "static", ...) for observability and tests.
    """

    prefix: Prefix
    next_hops: Tuple[NextHop, ...]
    source: str = "unknown"
    metric: int = 0

    def __post_init__(self) -> None:
        if not self.next_hops:
            raise ValueError(f"FIB entry for {self.prefix} has no next hops")


@dataclass(frozen=True)
class FibDelta:
    """A computed batch of FIB changes applied atomically.

    Control planes diff their previous download against the new route
    table and hand the FIB only the difference — the common reconvergence
    case after a single link event changes a handful of prefixes out of
    dozens.  :meth:`Fib.apply_delta` applies the whole batch under **one**
    :attr:`Fib.generation` bump, so the per-destination match-chain cache
    is invalidated once per download instead of once per touched prefix.

    ``withdrawals`` are applied before ``installs``; an entry appearing in
    both positions (replace) therefore ends installed.  Both tuples are
    expected in deterministic (sorted) order — the order is observable
    through trace ``changes`` lists, not through the resulting trie.
    """

    installs: Tuple[FibEntry, ...] = ()
    withdrawals: Tuple[Prefix, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.installs or self.withdrawals)

    def __len__(self) -> int:
        return len(self.installs) + len(self.withdrawals)


class _TrieNode:
    __slots__ = ("children", "entry")

    def __init__(self) -> None:
        self.children: list[Optional["_TrieNode"]] = [None, None]
        self.entry: Optional[FibEntry] = None


class Fib:
    """A longest-prefix-match forwarding table."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._count = 0
        #: lifetime churn counters (observability: FIB update audit trails)
        self.installs = 0
        self.withdrawals = 0
        #: bumped on every mutation; consumers key caches off it
        self.generation = 0
        #: observers of generation bumps (the fluid backend's recompute
        #: trigger); called synchronously after each mutating batch
        self.listeners: list[Callable[[], None]] = []
        #: destination value -> match chain, valid for _cache_generation
        self._chain_cache: dict[int, Tuple[FibEntry, ...]] = {}
        self._cache_generation = 0
        #: lifetime match-chain cache counters; deterministic (a pure
        #: function of the lookup/mutation sequence), surfaced through
        #: MetricsRegistry and the bench harness as a hit rate
        self.chain_hits = 0
        self.chain_misses = 0

    def __len__(self) -> int:
        return self._count

    def _insert(self, entry: FibEntry) -> None:
        """Trie insertion only — no counter or generation accounting."""
        node = self._root
        for bit_index in range(entry.prefix.length):
            bit = (entry.prefix.network >> (31 - bit_index)) & 1
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        if node.entry is None:
            self._count += 1
        node.entry = entry

    def _remove(self, prefix: Prefix) -> bool:
        """Trie removal only — no counter or generation accounting.

        Empty trie branches are pruned so that long-running simulations with
        failure churn do not leak nodes.
        """
        path: list[tuple[_TrieNode, int]] = []
        node = self._root
        for bit_index in range(prefix.length):
            bit = (prefix.network >> (31 - bit_index)) & 1
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if node.entry is None:
            return False
        node.entry = None
        self._count -= 1
        for parent, bit in reversed(path):
            child = parent.children[bit]
            assert child is not None
            if child.entry is None and child.children[0] is None and child.children[1] is None:
                parent.children[bit] = None
            else:
                break
        return True

    def _changed(self) -> None:
        """One generation bump + listener fan-out per mutating batch."""
        self.generation += 1
        for listener in self.listeners:
            listener()

    def install(self, entry: FibEntry) -> None:
        """Insert or replace the entry for ``entry.prefix``."""
        self.installs += 1
        self._insert(entry)
        self._changed()

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove the entry for ``prefix``; returns False if absent."""
        if not self._remove(prefix):
            return False
        self.withdrawals += 1
        self._changed()
        return True

    def apply_delta(self, delta: FibDelta) -> None:
        """Apply one computed change batch with a single generation bump.

        Per-entry churn counters advance exactly as the equivalent
        sequence of :meth:`install`/:meth:`withdraw` calls would (the
        telemetry audit trail is batching-independent); only
        :attr:`generation` differs — one bump per mutating batch, which
        is what keeps the match-chain cache coherent at batch cost
        instead of per-prefix cost.  Withdrawals of absent prefixes are
        ignored, mirroring :meth:`withdraw` returning ``False``.
        """
        mutated = False
        for prefix in delta.withdrawals:
            if self._remove(prefix):
                self.withdrawals += 1
                mutated = True
        for entry in delta.installs:
            self._insert(entry)
            self.installs += 1
            mutated = True
        if mutated:
            self._changed()

    def bulk_load(self, entries: Tuple[FibEntry, ...]) -> None:
        """Install a whole entry batch under one generation bump.

        Observably equivalent to ``apply_delta(FibDelta(entries, ()))``
        — same resulting trie, same churn counters, same single
        generation bump and listener fan-out — but built for the
        warm-start path, where every switch loads thousands of entries
        at once: instead of walking the trie from the root per entry,
        the walk keeps the node path of the previous insertion and
        descends only below the longest common bit prefix.  Entries
        sorted by prefix (warm start's canonical order) share most of
        their high bits with their neighbours, so the amortized walk is
        a few bits per entry instead of ``prefix.length``.
        """
        if not entries:
            return
        # stack[d] is the node at depth d along the previous entry's path
        stack: list[Optional[_TrieNode]] = [None] * 33
        stack[0] = self._root
        prev_network = 0
        prev_depth = 0
        count_gained = 0
        for entry in entries:
            prefix = entry.prefix
            network = prefix.network
            length = prefix.length
            diff = (network ^ prev_network) >> (32 - prev_depth) if prev_depth else 0
            common = prev_depth - diff.bit_length()
            if common > length:
                common = length
            node = stack[common]
            assert node is not None
            for bit_index in range(common, length):
                bit = (network >> (31 - bit_index)) & 1
                child = node.children[bit]
                if child is None:
                    child = _TrieNode()
                    node.children[bit] = child
                node = child
                stack[bit_index + 1] = node
            if node.entry is None:
                count_gained += 1
            node.entry = entry
            prev_network = network
            prev_depth = length
        self._count += count_gained
        self.installs += len(entries)
        self._changed()

    def exact(self, prefix: Prefix) -> Optional[FibEntry]:
        """The entry installed for exactly ``prefix``, if any."""
        node = self._root
        for bit_index in range(prefix.length):
            bit = (prefix.network >> (31 - bit_index)) & 1
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.entry

    def matches(self, address: IPv4Address) -> Iterator[FibEntry]:
        """Yield every entry covering ``address``, longest prefix first.

        This is the primitive the data plane builds fast reroute on: it
        walks the chain and stops at the first entry with a *live* next hop.
        """
        value = address.value
        chain: list[FibEntry] = []
        node = self._root
        if node.entry is not None:
            chain.append(node.entry)
        for bit_index in range(32):
            bit = (value >> (31 - bit_index)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.entry is not None:
                chain.append(node.entry)
        yield from reversed(chain)

    def chain(self, address: IPv4Address) -> Tuple[FibEntry, ...]:
        """The cached match chain for ``address`` (longest prefix first).

        Semantically ``tuple(self.matches(address))``; the trie walk runs
        once per (destination, generation) and every later lookup is a
        dict hit.  The steady-state forwarding path goes through here.
        """
        if self._cache_generation != self.generation:
            self._chain_cache.clear()
            self._cache_generation = self.generation
        value = address.value
        cached = self._chain_cache.get(value)
        if cached is None:
            self.chain_misses += 1
            cached = tuple(self.matches(address))
            self._chain_cache[value] = cached
        else:
            self.chain_hits += 1
        return cached

    def lookup(self, address: IPv4Address) -> Optional[FibEntry]:
        """Plain longest-prefix match (first element of :meth:`matches`)."""
        chain = self.chain(address)
        return chain[0] if chain else None

    def entries(self) -> Iterator[FibEntry]:
        """Iterate all installed entries (no defined order guarantees beyond
        a deterministic depth-first walk)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.entry is not None:
                yield node.entry
            for child in (node.children[1], node.children[0]):
                if child is not None:
                    stack.append(child)

    def clear(self) -> None:
        """Remove every entry."""
        self._root = _TrieNode()
        self._count = 0
        self._changed()
