"""repro — a full reproduction of *"Rewiring 2 Links is Enough: Accelerating
Failure Recovery in Production Data Center Networks"* (F²Tree, ICDCS 2015).

The package layers bottom-up:

* :mod:`repro.sim` — deterministic discrete-event engine (ns resolution);
* :mod:`repro.net` — IPv4, longest-prefix-match FIB, packets, ECMP hashing;
* :mod:`repro.topology` — fat tree / Leaf-Spine / VL2 / Aspen builders and
  the production addressing convention;
* :mod:`repro.dataplane` — store-and-forward links with failure detection,
  L3 switches with FIB fall-through forwarding, hosts;
* :mod:`repro.routing` — an OSPF-like link-state protocol with Quagga-style
  SPF throttling, plus static routes;
* :mod:`repro.transport` — UDP probes and a compact TCP (RFC 6298 RTO);
* :mod:`repro.core` — **the paper's contribution**: F²Tree rewiring,
  backup-route configuration, failure-condition analysis, Table I;
* :mod:`repro.failures`, :mod:`repro.workloads`, :mod:`repro.metrics` —
  failure injection, partition-aggregate/background workloads, measurement;
* :mod:`repro.experiments` — one harness per table/figure.

Quick start::

    from repro.experiments import run_table_three, render_table_three
    print(render_table_three(run_table_three()))
"""

__version__ = "1.0.0"

from . import analysis, core, dataplane, experiments, failures, metrics
from . import net, routing, sim, topology, transport, workloads

__all__ = [
    "analysis",
    "core",
    "dataplane",
    "experiments",
    "failures",
    "metrics",
    "net",
    "routing",
    "sim",
    "topology",
    "transport",
    "workloads",
    "__version__",
]
