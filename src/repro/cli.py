"""Command-line interface: regenerate any paper artifact by name.

Usage::

    python -m repro list
    python -m repro run table3
    python -m repro run fig4 fig5 --out results/
    python -m repro run all --out results/
    python -m repro recover --topology fat-tree --trace out.jsonl
    python -m repro report out.jsonl

Each artifact is a self-contained function returning the rendered text
(the same renderers the benchmark suite asserts against).  ``recover``
runs a traced single-flow recovery experiment and prints its per-phase
breakdown; ``report`` re-analyzes a previously saved trace.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence


def _table1() -> str:
    from .core.scalability import node_reduction_vs_fat_tree, render_table_one

    return "\n\n".join(
        [
            render_table_one(8),
            render_table_one(128),
            f"F2Tree node reduction vs fat tree @N=128: "
            f"{node_reduction_vs_fat_tree(128):.1%}",
        ]
    )


def _table2() -> str:
    from .core.backup_routes import render_routing_table
    from .core.f2tree import f2tree
    from .experiments.common import build_bundle
    from .topology.graph import NodeKind

    topo = f2tree(6)
    bundle = build_bundle(topo)
    bundle.converge()
    agg = topo.pod_members(NodeKind.AGG, 0)[0].name
    return render_routing_table(bundle.network, agg)


def _table3() -> str:
    from .experiments.testbed import render_table_three, run_table_three

    return render_table_three(run_table_three())


def _fig4() -> str:
    from .experiments.conditions import render_figure_four, run_figure_four

    return render_figure_four(run_figure_four())


def _fig5() -> str:
    from .experiments.conditions import render_figure_five, run_figure_five

    return render_figure_five(run_figure_five())


def _fig6() -> str:
    from .experiments.partition_aggregate import render_figure_six, run_figure_six

    return render_figure_six([run_figure_six(1), run_figure_six(5)])


def _fig7() -> str:
    from .experiments.other_topologies import (
        render_figure_seven,
        run_figure_seven,
    )

    return render_figure_seven(run_figure_seven())


def _ablations() -> str:
    from .experiments.ablations import (
        count_c4_loops,
        run_detection_delay_sweep,
        run_four_across_c7,
        run_spf_timer_sweep,
    )

    pieces = []
    spf = run_spf_timer_sweep()
    pieces.append("SPF-timer sweep (fat-tree loss tracks the timer):")
    pieces.extend(
        f"  spf={p.spf_initial_delay_ms:.0f}ms fat={p.fat_tree_loss_ms:.1f}ms "
        f"f2={p.f2tree_loss_ms:.1f}ms"
        for p in spf
    )
    detection = run_detection_delay_sweep()
    pieces.append("Detection-delay sweep (F2Tree loss == detection):")
    pieces.extend(
        f"  detect={p.detection_delay_ms:.0f}ms f2={p.f2tree_loss_ms:.1f}ms"
        for p in detection
    )
    two, four = run_four_across_c7()
    pieces.append(
        f"Four across ports on C7: 2-port {two.connectivity_loss_ms:.1f}ms"
        f" -> 4-port {four.connectivity_loss_ms:.1f}ms"
    )
    clean = count_c4_loops("prefix-length")
    flawed = count_c4_loops("none")
    pieces.append(
        f"Tie-break loops under C4: prefix-length "
        f"{clean.flows_looping}/{clean.flows_traced}, equal-prefix "
        f"{flawed.flows_looping}/{flawed.flows_traced}"
    )
    return "\n".join(pieces)


def _extensions() -> str:
    from .experiments.extensions import (
        render_routing_comparison,
        render_unidirectional,
        run_centralized_comparison,
        run_pathvector_comparison,
        run_unidirectional,
    )

    return "\n\n".join(
        [
            render_routing_comparison(
                "BGP-style routing (valley-free), downward failure",
                run_pathvector_comparison(),
            ),
            render_routing_comparison(
                "Centralized (SDN-style) routing, downward failure",
                run_centralized_comparison(),
            ),
            render_unidirectional(
                [run_unidirectional("bfd"), run_unidirectional("interface")]
            ),
        ]
    )


def _aspen() -> str:
    from .experiments.aspen import render_aspen_comparison, run_aspen_comparison

    return render_aspen_comparison(run_aspen_comparison())


def _congestion() -> str:
    from .experiments.congestion import render_congestion, run_congestion_sweep

    return render_congestion(run_congestion_sweep())


def _configs() -> str:
    from .core.configgen import render_fabric_configs
    from .core.f2tree import f2tree
    from .topology.addressing import assign_addresses

    topo = f2tree(6)
    assign_addresses(topo)
    configs = render_fabric_configs(topo)
    sample = ["# one config per switch; sample below", ""]
    for name in list(configs)[:1]:
        sample.append(configs[name])
    sample.append(f"\n# ({len(configs)} switch configs total)")
    return "\n".join(sample)


def _census() -> str:
    from .analysis.census import exhaustive_condition_census, render_census
    from .core.f2tree import f2tree
    from .topology.graph import NodeKind

    topo = f2tree(8)
    tor = topo.pod_members(NodeKind.TOR, 0)[-1].name
    return render_census(
        [exhaustive_condition_census(topo, tor, k) for k in (1, 2, 3, 4)]
    )


def _validate() -> str:
    from .core.f2tree import f2tree
    from .core.validation import render_findings, validate_deployment
    from .experiments.common import build_bundle

    topo = f2tree(8)
    bundle = build_bundle(topo)
    return render_findings(validate_deployment(topo, bundle.network))


def _bisection() -> str:
    from .analysis.bisection import bisection_report
    from .core.f2tree import f2tree
    from .topology.fattree import fat_tree

    return bisection_report([fat_tree(4), fat_tree(8), f2tree(6), f2tree(8)])


ARTIFACTS: Dict[str, tuple] = {
    "table1": (_table1, "Table I: scalability comparison"),
    "table2": (_table2, "Table II: routing table with backup routes"),
    "table3": (_table3, "Table III / Fig 2: testbed recovery"),
    "fig4": (_fig4, "Fig 4: conditions C1-C7"),
    "fig5": (_fig5, "Fig 5: end-to-end delay profiles"),
    "fig6": (_fig6, "Fig 6: partition-aggregate deadline misses"),
    "fig7": (_fig7, "Fig 7: Leaf-Spine and VL2 adaptations"),
    "ablations": (_ablations, "Design-choice ablations"),
    "extensions": (_extensions, "§V extensions: BGP / SDN / unidirectional"),
    "aspen": (_aspen, "Aspen-tree baseline comparison (§VI)"),
    "congestion": (_congestion, "Backup-path congestion probe"),
    "configs": (_configs, "Quagga-style switch configurations"),
    "bisection": (_bisection, "Bisection-bandwidth report"),
    "census": (_census, "Exhaustive §II-C failure-condition census"),
    "validate": (_validate, "Pre-deployment fabric validation"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of the F2Tree paper (ICDCS 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available artifacts")
    run = sub.add_parser("run", help="regenerate artifacts")
    run.add_argument(
        "artifacts", nargs="+",
        help="artifact names (see 'list'), or 'all'",
    )
    run.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write each artifact to <out>/<name>.txt",
    )
    recover = sub.add_parser(
        "recover",
        help="run a traced recovery experiment and print its phase breakdown",
    )
    recover.add_argument(
        "--topology", choices=("fat-tree", "f2tree"), default="fat-tree",
        help="the §III testbed topology to fail (default: fat-tree)",
    )
    recover.add_argument(
        "--transport", choices=("udp", "tcp"), default="udp",
        help="probe transport (default: udp)",
    )
    recover.add_argument(
        "--trace", type=pathlib.Path, default=None,
        help="write the raw event trace to this JSONL file",
    )
    recover.add_argument(
        "--metrics", action="store_true",
        help="also dump the metrics registry",
    )
    recover.add_argument(
        "--json", action="store_true",
        help="print the breakdown as JSON instead of the ASCII timeline",
    )
    report = sub.add_parser(
        "report", help="per-phase recovery breakdown from a saved trace"
    )
    report.add_argument("trace", type=pathlib.Path, help="trace JSONL file")
    report.add_argument(
        "--json", action="store_true",
        help="print the breakdown as JSON instead of the ASCII timeline",
    )
    from .campaign.sweeps import SWEEPS

    sweep = sub.add_parser(
        "sweep",
        help="run an experiment campaign, optionally across worker processes",
    )
    sweep.add_argument(
        "sweep", choices=sorted(SWEEPS),
        help="which campaign to run (see EXPERIMENTS.md for paper mapping)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = in-process serial; results are "
        "identical for any value)",
    )
    sweep.add_argument(
        "--timeout", type=float, default=None,
        help="per-trial wall-clock timeout in seconds",
    )
    sweep.add_argument(
        "--ports", type=int, default=None,
        help="switch port count of the swept topologies (default: sweep's own)",
    )
    sweep.add_argument(
        "--seed", type=int, default=1, help="master seed (default 1)",
    )
    sweep.add_argument(
        "--limit", type=int, default=None,
        help="run only the first N trials of the sweep (smoke tests)",
    )
    sweep.add_argument(
        "--json", action="store_true",
        help="print the deterministic campaign report as JSON",
    )
    sweep.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write the JSON report to this file",
    )
    check = sub.add_parser(
        "check",
        help="fuzz the network with randomized failure trials and check "
        "the invariant catalog (see DESIGN.md)",
    )
    check.add_argument(
        "--trials", type=int, default=50,
        help="number of fuzz trials to run (default 50)",
    )
    check.add_argument(
        "--seed", type=int, default=1,
        help="campaign master seed; trial seeds derive from it (default 1)",
    )
    check.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (results identical for any value)",
    )
    check.add_argument(
        "--timeout", type=float, default=None,
        help="per-trial wall-clock timeout in seconds",
    )
    check.add_argument(
        "--json", action="store_true",
        help="print the deterministic campaign report as JSON",
    )
    check.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("check-failures"),
        help="directory for replay bundles of violating trials "
        "(default: check-failures/)",
    )
    check.add_argument(
        "--replay", type=pathlib.Path, default=None,
        help="replay a saved bundle and verify it reproduces byte-identically",
    )
    check.add_argument(
        "--selftest", action="store_true",
        help="run the seeded fault-mutant matrix (including the "
        "cross-backend flow mutants) instead of fuzz trials",
    )
    check.add_argument(
        "--backend", choices=("packet", "flow"), default="packet",
        help="simulation backend for fuzz trials (default packet); "
        "'flow' runs the fluid data plane on the same configs",
    )
    check.add_argument(
        "--differential", type=int, default=None, metavar="N",
        help="run N cross-backend differential trials (each fuzzed "
        "config executed on both backends and compared) instead of "
        "single-backend fuzzing",
    )
    bench = sub.add_parser(
        "bench",
        help="hot-path throughput benchmarks (event loop, forwarding, "
        "SPF) with a ratio-based perf-regression gate",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller workloads, no campaign comparison (CI smoke)",
    )
    bench.add_argument(
        "--no-campaign", action="store_true",
        help="skip the serial-vs-parallel campaign comparison",
    )
    bench.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="committed BENCH_hotpath.json to gate against; exit 1 when "
        "any optimized/naive ratio regressed past --tolerance",
    )
    bench.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional ratio regression vs the baseline "
        "(default 0.30)",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="print the result as JSON instead of the summary",
    )
    bench.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write the JSON result to this file",
    )
    trace = sub.add_parser(
        "trace",
        help="causal span tree of a traced recovery run, with Perfetto/"
        "chrome://tracing and JSONL exporters (see DESIGN.md §10)",
    )
    trace.add_argument(
        "--topology", choices=("fat-tree", "f2tree"), default="fat-tree",
        help="the §III testbed topology to fail (default: fat-tree)",
    )
    trace.add_argument(
        "--transport", choices=("udp", "tcp"), default="udp",
        help="probe transport (default: udp)",
    )
    trace.add_argument(
        "--chrome", type=pathlib.Path, default=None,
        help="write the Chrome trace-event JSON (open in ui.perfetto.dev "
        "or chrome://tracing) to this file",
    )
    trace.add_argument(
        "--spans", type=pathlib.Path, default=None,
        help="write the span tree as JSONL (one span per line) to this file",
    )
    trace.add_argument(
        "--json", action="store_true",
        help="print the span tree as JSON instead of the ASCII tree",
    )
    trace.add_argument(
        "--validate", type=pathlib.Path, default=None, metavar="TRACE_JSON",
        help="schema-check a Chrome trace-event file instead of running "
        "(0 valid, 1 problems found, 2 unreadable)",
    )
    trace.add_argument(
        "--sweep", choices=sorted(SWEEPS), default=None,
        help="run this campaign in telemetry mode instead: per-phase "
        "percentiles and cache hit rates per grid cell",
    )
    trace.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for --sweep (results identical for any value)",
    )
    trace.add_argument(
        "--ports", type=int, default=None,
        help="switch port count for --sweep topologies (default: sweep's own)",
    )
    trace.add_argument(
        "--seed", type=int, default=1,
        help="master seed for --sweep (default 1)",
    )
    trace.add_argument(
        "--limit", type=int, default=None,
        help="run only the first N trials of --sweep (smoke tests)",
    )
    trace.add_argument(
        "--timeout", type=float, default=None,
        help="per-trial wall-clock timeout in seconds for --sweep",
    )
    trace.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write the --sweep JSON report to this file",
    )
    from .lint.cli import add_lint_arguments

    lint = sub.add_parser(
        "lint",
        help="simulation-safety static analysis: determinism, "
        "serialization canonicality, seed discipline (see DESIGN.md §12)",
    )
    add_lint_arguments(lint)
    verify = sub.add_parser(
        "verify",
        help="statically prove (or refute) the F2Tree backup properties "
        "of a built topology — no simulation (see DESIGN.md §8)",
    )
    verify.add_argument(
        "--topology", default="fattree",
        help="topology family: fattree/f2tree (rewired), fat-tree (plain), "
        "prototype, leaf-spine[-plain], vl2[-plain], aspen "
        "(default: fattree)",
    )
    verify.add_argument(
        "--ports", type=int, default=8,
        help="switch port count (default 8)",
    )
    verify.add_argument(
        "--across-ports", type=int, default=2,
        help="across links per ring hop for f2tree builds (default 2)",
    )
    verify.add_argument(
        "--max-failures", type=int, default=2,
        help="largest failure-set size k to verify (exhaustive for k<=2, "
        "sampled above; default 2)",
    )
    verify.add_argument(
        "--samples", type=int, default=50,
        help="failure sets sampled per k when k>2 (default 50)",
    )
    verify.add_argument(
        "--seed", type=int, default=1,
        help="seed for k>2 failure-set sampling (default 1)",
    )
    verify.add_argument(
        "--tie-break", choices=("prefix-length", "none"),
        default="prefix-length",
        help="backup-route tie break to verify (default: prefix-length)",
    )
    verify.add_argument(
        "--mutate", default=None, metavar="NAME",
        help="verify a seeded defect build instead (see --selftest for "
        "the full matrix); the mutant picks its own topology",
    )
    verify.add_argument(
        "--selftest", action="store_true",
        help="run the seeded wiring/FIB mutant matrix: each must be "
        "refuted by its expected check and its witness must replay",
    )
    verify.add_argument(
        "--json", action="store_true",
        help="print the full report as JSON",
    )
    verify.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write the JSON report to this file",
    )
    return parser


def _cmd_recover(args: argparse.Namespace) -> int:
    from .experiments.testbed import run_testbed
    from .obs import Observability, render_breakdown
    from .sim.units import to_microseconds

    obs = Observability(enabled=True)
    result = run_testbed(args.topology, args.transport, obs=obs)
    assert result.breakdown is not None
    if args.json:
        print(result.breakdown.to_json())
    else:
        print(render_breakdown(result.breakdown))
        if result.connectivity_loss is not None:
            print(
                f"\nconnectivity loss (timeseries metric): "
                f"{to_microseconds(result.connectivity_loss):.0f} us, "
                f"{result.packets_lost} packets lost"
            )
        if result.collapse_duration is not None:
            print(
                f"\nthroughput collapse (timeseries metric): "
                f"{to_microseconds(result.collapse_duration):.0f} us"
            )
    if args.metrics:
        print()
        print(obs.metrics.render())
    if args.trace is not None:
        count = obs.trace.write_jsonl(args.trace)
        print(f"\nwrote {count} trace events to {args.trace}", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs import TraceAnalysisError, analyze_recovery, read_jsonl, render_breakdown

    try:
        events = read_jsonl(args.trace)
        breakdown = analyze_recovery(events)
    except (TraceAnalysisError, OSError, ValueError, KeyError, TypeError) as exc:
        # unusable input is a usage error (2), not a violation (1)
        print(f"cannot analyze {args.trace}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(breakdown.to_json())
    else:
        print(render_breakdown(breakdown))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .campaign.runner import run_campaign
    from .campaign.sweeps import SWEEPS

    sweep = SWEEPS[args.sweep]
    ports = args.ports if args.ports is not None else sweep.default_ports
    specs = sweep.build(ports, args.seed, args.timeout)
    if args.limit is not None:
        specs = specs[: max(0, args.limit)]
    if not specs:
        print("sweep selected no trials", file=sys.stderr)
        return 2
    report = run_campaign(
        specs,
        name=args.sweep,
        workers=args.workers,
        timeout=args.timeout,
        campaign_seed=args.seed,
    )
    text = report.to_json() if args.json else report.render()
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report.to_json() + "\n")
        print(f"wrote campaign report to {args.out}", file=sys.stderr)
    return 0 if not report.failed else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from .campaign.runner import run_campaign
    from .campaign.spec import TrialSpec
    from .check.bundle import BundleError, replay_bundle, write_bundle
    from .check.config import TrialConfig
    from .check.mutants import render_selftest, run_selftest
    from .check.shrink import shrink_config

    if args.replay is not None:
        try:
            reproduced, detail = replay_bundle(args.replay)
        except (BundleError, OSError, ValueError, KeyError) as exc:
            print(f"cannot replay {args.replay}: {exc}", file=sys.stderr)
            return 2
        print(detail)
        return 0 if reproduced else 1
    if args.selftest:
        from .check.differential import run_flow_selftest

        results = run_selftest() + run_flow_selftest()
        print(render_selftest(results))
        return 0 if all(r.ok for r in results) else 1

    if args.differential is not None:
        specs = [
            TrialSpec.make("diff", seed=None, timeout=args.timeout, index=i)
            for i in range(max(0, args.differential))
        ]
        if not specs:
            print("no differential trials requested", file=sys.stderr)
            return 2
        report = run_campaign(
            specs,
            name="diff",
            workers=args.workers,
            timeout=args.timeout,
            campaign_seed=args.seed,
        )
        print(report.to_json() if args.json else report.render())
        disagreeing = [
            r for r in report.succeeded
            if r.payload is not None and not r.payload.get("agree", True)
        ]
        for record in disagreeing:
            print(
                f"backend disagreement in {record.spec.trial_id}: "
                f"{'; '.join(record.payload['disagreements'])}",
                file=sys.stderr,
            )
        return 1 if (report.failed or disagreeing) else 0

    specs = [
        TrialSpec.make(
            "check", seed=None, timeout=args.timeout, index=i,
            backend=args.backend,
        )
        for i in range(max(0, args.trials))
    ]
    if not specs:
        print("no trials requested", file=sys.stderr)
        return 2
    report = run_campaign(
        specs,
        name="check",
        workers=args.workers,
        timeout=args.timeout,
        campaign_seed=args.seed,
    )
    print(report.to_json() if args.json else report.render())
    violating = [
        r for r in report.succeeded
        if r.payload is not None and r.payload.get("n_violations")
    ]
    for record in violating:
        config = TrialConfig.from_dict(record.payload["config"])
        shrunk, outcome = shrink_config(config)
        bundle_path = args.out / f"{record.spec.seed}.json"
        try:
            write_bundle(bundle_path, shrunk, outcome)
            where = str(bundle_path)
        except BundleError as exc:
            where = f"UNWRITTEN ({exc})"
        print(
            f"violation in {record.spec.trial_id}: "
            f"{record.payload['invariants']} -> replay bundle {where}",
            file=sys.stderr,
        )
    return 1 if (report.failed or violating) else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        DEFAULT_TOLERANCE,
        check_regression,
        render,
        run_hotpath_bench,
        to_json,
    )

    result = run_hotpath_bench(
        quick=args.quick, campaign=not args.no_campaign
    )
    print(to_json(result) if args.json else render(result))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(to_json(result))
        print(f"wrote bench result to {args.out}", file=sys.stderr)
    if args.baseline is not None:
        try:
            import json as _json

            baseline = _json.loads(args.baseline.read_text())
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        failures = check_regression(result, baseline, tolerance)
        for failure in failures:
            print(f"PERF REGRESSION {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            f"no perf regression vs {args.baseline} "
            f"(tolerance {tolerance:.0%})",
            file=sys.stderr,
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .topology.graph import TopologyError
    from .verify import build_verify_topology, run_verification

    if args.selftest:
        from .verify.mutants import render_selftest, run_selftest

        results = run_selftest(max_failures=args.max_failures)
        print(render_selftest(results))
        return 0 if all(r.ok for r in results) else 1
    try:
        if args.mutate is not None:
            from .verify.mutants import MUTANTS, run_mutant

            if args.mutate not in MUTANTS:
                print(
                    f"unknown mutant {args.mutate!r}; available: "
                    f"{', '.join(sorted(MUTANTS))}",
                    file=sys.stderr,
                )
                return 2
            report = run_mutant(
                MUTANTS[args.mutate], max_failures=args.max_failures
            )
        else:
            topo = build_verify_topology(
                args.topology, args.ports, across_ports=args.across_ports
            )
            report = run_verification(
                topo,
                max_failures=args.max_failures,
                samples=args.samples,
                seed=args.seed,
                tie_break=args.tie_break,
            )
    except TopologyError as exc:
        print(f"cannot build topology: {exc}", file=sys.stderr)
        return 2
    print(report.to_json() if args.json else report.render())
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report.to_json() + "\n")
        print(f"wrote verification report to {args.out}", file=sys.stderr)
    return 0 if report.certified else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        ExportError,
        Observability,
        build_recovery_spans,
        counters_from_metrics,
        validate_chrome_trace_file,
        write_chrome_trace,
        write_spans_jsonl,
    )

    if args.validate is not None:
        try:
            problems = validate_chrome_trace_file(args.validate)
        except ExportError as exc:
            print(f"cannot validate {args.validate}: {exc}", file=sys.stderr)
            return 2
        for problem in problems:
            print(problem, file=sys.stderr)
        if problems:
            print(
                f"{args.validate}: {len(problems)} schema problem(s)",
                file=sys.stderr,
            )
            return 1
        print(f"{args.validate}: valid Chrome trace-event JSON")
        return 0

    if args.sweep is not None:
        from .campaign.runner import run_campaign
        from .campaign.sweeps import SWEEPS

        sweep = SWEEPS[args.sweep]
        ports = args.ports if args.ports is not None else sweep.default_ports
        specs = sweep.build(ports, args.seed, args.timeout)
        if args.limit is not None:
            specs = specs[: max(0, args.limit)]
        if not specs:
            print("sweep selected no trials", file=sys.stderr)
            return 2
        report = run_campaign(
            specs,
            name=args.sweep,
            workers=args.workers,
            timeout=args.timeout,
            campaign_seed=args.seed,
            telemetry=True,
        )
        print(report.to_json() if args.json else report.render())
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(report.to_json() + "\n")
            print(f"wrote telemetry report to {args.out}", file=sys.stderr)
        return 0 if not report.failed else 1

    from .experiments.testbed import run_testbed

    obs = Observability(enabled=True, capacity=0)
    result = run_testbed(args.topology, args.transport, obs=obs)
    tree = build_recovery_spans(
        obs.trace,
        breakdown=result.breakdown,
        counters=counters_from_metrics(obs.metrics.snapshot()),
        evicted=obs.trace.evicted,
    )
    print(tree.to_json(indent=2) if args.json else tree.render())
    try:
        if args.chrome is not None:
            count = write_chrome_trace(tree, args.chrome)
            print(
                f"wrote {count} trace events to {args.chrome}", file=sys.stderr
            )
        if args.spans is not None:
            count = write_spans_jsonl(tree, args.spans)
            print(f"wrote {count} spans to {args.spans}", file=sys.stderr)
    except OSError as exc:
        print(f"cannot write export: {exc}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (_fn, description) in ARTIFACTS.items():
            print(f"{name:<12} {description}")
        return 0
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "lint":
        from .lint.cli import run_lint

        return run_lint(args)

    wanted: List[str] = list(args.artifacts)
    if wanted == ["all"]:
        wanted = list(ARTIFACTS)
    unknown = [name for name in wanted if name not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ARTIFACTS)}", file=sys.stderr)
        return 2

    for name in wanted:
        fn, description = ARTIFACTS[name]
        started = time.monotonic()
        text = fn()
        elapsed = time.monotonic() - started
        print(f"=== {name}: {description} ({elapsed:.1f}s) ===")
        print(text)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0
