"""Hot-path throughput benchmarks and the perf-regression gate.

Measures the three loops every experiment's wall-clock time is made of —
event dispatch, per-packet LPM resolution, repeated SPF — each against a
**naive in-module reference** that faithfully reimplements the
pre-optimization code path:

* ``event_loop`` — the optimized list-entry :class:`~repro.sim.engine.
  Simulator` vs. the former ``order=True`` dataclass heap (generated
  ``__lt__`` on every sift, per-event attribute traffic);
* ``forwarding`` — the cached ``SwitchNode._resolve_indexed`` vs. a
  fresh trie walk with full ``live_links``-style list allocation per
  packet (the old steady-state path);
* ``spf`` — the fingerprint-keyed :mod:`~repro.routing.spf_cache` vs.
  recomputing Dijkstra for every oracle query;
* ``spf_incremental`` — reconvergence under link churn: the
  single-edge patching path of :mod:`~repro.routing.spf_incremental`
  vs. the former memoized-full-SPF cache, which misses on every flap
  because each flap is a new fingerprint;
* ``event_batch`` — a same-timestamp-heavy workload (the shape failure
  storms produce) on the batch-draining loop vs. the former dataclass
  heap, with an honest unbatched-list-entry row alongside;
* ``fairshare_vector`` — the fluid backend's vectorized max-min
  water-filling (:mod:`repro.sim.flow.fairshare`, numpy engine) vs. the
  pure-python reference solver on a bench-scale instance (tens of
  thousands of flows, thousands of links, hundreds of freezing rounds).
  Both engines return bitwise-identical rates, so the section asserts
  agreement before it reports speed;
* ``flow_backend`` — a warm-started fluid recovery trial at k=48
  against the packet backend's extrapolated event cost.

Reporting **ratios** against in-harness references makes the acceptance
thresholds hardware-independent: a 3x bar means the same thing on a
laptop and in CI.  Absolute events/packets/tables per second are
recorded alongside for the audit trail, as is an optional campaign
serial-vs-parallel measurement (full mode only; honest about
``cpu_count``).

This module is the one place under ``src/repro`` allowed to read
``time.perf_counter`` (the determinism lint allowlists it): nothing the
simulator executes ever observes these timings — they only gate CI.
"""

from __future__ import annotations

import heapq
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dataplane.node import SwitchNode
    from .net.fib import FibEntry
    from .net.packet import Packet

#: regression gate: a fresh ratio below (1 - tolerance) x baseline fails
DEFAULT_TOLERANCE = 0.30

#: the committed-baseline/bench artifact at the repo root
BENCH_FILENAME = "BENCH_hotpath.json"

#: sections whose ratios the regression gate compares
GATED_SECTIONS = (
    "event_loop",
    "forwarding",
    "spf",
    "spf_incremental",
    "event_batch",
    "fairshare_vector",
    "flow_backend",
)

#: wall-clock budget for the flow backend's k=48 scale trial — the CI
#: smoke fails if the fluid backend can no longer finish inside it
FLOW_SCALE_BUDGET_S = 120.0

#: absolute acceptance floor on the flow backend's projected speedup
#: (the ISSUE's ">= 10x faster than the packet backend's extrapolated
#: cost"); gated directly, not baseline-relative — see check_regression
FLOW_MIN_RATIO = 10.0

#: absolute acceptance floor on the vectorized fair-share engine's
#: speedup over the python reference at bench scale (>= 10k flows);
#: gated directly like flow_backend — a python/numpy ratio measured on
#: one box is its own yardstick
FAIRSHARE_MIN_RATIO = 5.0


def _hit_rate_dict(hits: int, misses: int) -> Dict[str, Any]:
    """Counter pair + derived hit rate, as reports render it."""
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / total, 4) if total else 0.0,
    }


def _best_of(repeats: int, fn: Callable[[], Tuple[float, int]]) -> Tuple[float, int]:
    """Run ``fn`` ``repeats`` times; keep the fastest (elapsed, work)."""
    best: Optional[Tuple[float, int]] = None
    for _ in range(repeats):
        result = fn()
        if best is None or result[0] < best[0]:
            best = result
    assert best is not None
    return best


# --------------------------------------------------------------- event loop


@dataclass(order=True)
class _NaiveEvent:
    """The pre-optimization heap entry: comparison runs generated
    dataclass ``__lt__`` (attribute loads + tuple building per call)."""

    time: int
    priority: int
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    done: bool = field(compare=False, default=False)


class _NaiveHandle:
    """The former EventHandle, against the dataclass event."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _NaiveEvent, sim: "_NaiveSimulator") -> None:
        self._event = event
        self._sim = sim


class _NaiveSimulator:
    """Faithful reimplementation of the former event loop: dataclass
    entries (generated ``__lt__`` on every heap comparison), head peek +
    pop with per-iteration ``self`` attribute traffic, per-event counter
    update, ``schedule`` delegating to ``schedule_at``."""

    def __init__(self) -> None:
        self._queue: List[_NaiveEvent] = []
        self._now = 0
        self._sequence = 0
        self._events_processed = 0

    def schedule(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> _NaiveHandle:
        if delay < 0:
            raise ValueError(delay)
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, when: int, callback: Callable[..., None], *args: Any
    ) -> _NaiveHandle:
        if when < self._now:
            raise ValueError(when)
        event = _NaiveEvent(when, 10, self._sequence, callback, args)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return _NaiveHandle(event, self)

    def run(self) -> None:
        enabled = False
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            heapq.heappop(self._queue)
            self._now = event.time
            event.done = True
            event.callback(*event.args)
            self._events_processed += 1
            if enabled:  # pragma: no cover - obs disabled in benchmarks
                pass


def bench_event_loop(events: int, repeats: int) -> Dict[str, Any]:
    """Dispatch rate: drain a prefilled heap of ``events`` no-op events.

    Scheduling happens outside the timed region, so the measurement
    isolates the loop the tentpole rewrote — heap pop, lifecycle flip,
    dispatch — against the former dataclass-entry loop, at a heap depth
    where the ``__lt__``-per-sift cost of the old entries is what a long
    campaign actually paid.
    """
    from .sim.engine import Simulator

    def noop() -> None:
        return None

    def optimized() -> Tuple[float, int]:
        sim = Simulator()
        for i in range(events):
            sim.schedule((i * 7919) % 65536, noop)
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0, sim.events_processed

    def naive() -> Tuple[float, int]:
        sim = _NaiveSimulator()
        for i in range(events):
            sim.schedule((i * 7919) % 65536, noop)
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0, sim._events_processed

    fast_s, fast_n = _best_of(repeats, optimized)
    slow_s, slow_n = _best_of(repeats, naive)
    assert fast_n == slow_n == events
    return {
        "events": events,
        "optimized_s": round(fast_s, 6),
        "naive_s": round(slow_s, 6),
        "optimized_eps": round(events / fast_s),
        "naive_eps": round(events / slow_s),
        "ratio": round(slow_s / fast_s, 2),
    }


def bench_event_batch(events: int, repeats: int) -> Dict[str, Any]:
    """Dispatch rate when events pile onto shared timestamps.

    Failure storms produce exactly this shape: detection, flooding, and
    delivery events land on a few distinct instants, and the batched
    loop drains each instant without re-checking the clock or the
    ``until`` boundary per event.  The gated ratio is against the
    former dataclass heap (the same yardstick as ``event_loop``);
    ``unbatched_s``/``batch_ratio`` additionally record — honestly —
    what batch draining alone buys over the optimized list-entry loop
    popping one event at a time.

    Note the gated ratio on this section sits *below* ``event_loop``'s
    by construction: timestamp ties make every heap comparison fall
    through to the sequence slot, which costs the list entries extra
    element compares while the dataclass reference always paid for full
    tuple construction anyway.  The acceptance floor in
    ``benchmarks/test_bench_hotpath.py`` is set per-section
    accordingly.
    """
    from .sim.engine import _DONE, Simulator

    distinct = max(1, events // 64)

    def noop() -> None:
        return None

    def fill(sim: Any) -> None:
        # pseudorandom arrival order over few distinct timestamps: big
        # same-instant batches on a realistically shuffled heap
        for i in range(events):
            sim.schedule(((i * 7919) % distinct) * 4096, noop)

    def optimized() -> Tuple[float, int]:
        sim = Simulator()
        fill(sim)
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0, sim.events_processed

    def unbatched() -> Tuple[float, int]:
        # the PR 5 loop verbatim: list entries, hoisted pop, but one
        # pop/clock-store/lifecycle-flip cycle per event — no batching
        sim = Simulator()
        fill(sim)
        queue = sim._queue
        pop = heapq.heappop
        done = _DONE
        executed = 0
        t0 = time.perf_counter()
        while queue:
            entry = pop(queue)
            callback = entry[3]
            if callback is None:
                sim._cancelled_pending -= 1
                continue
            sim._now = entry[0]
            entry[3] = done
            callback(*entry[4])
            executed += 1
        return time.perf_counter() - t0, executed

    def naive() -> Tuple[float, int]:
        sim = _NaiveSimulator()
        fill(sim)
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0, sim._events_processed

    fast_s, fast_n = _best_of(repeats, optimized)
    flat_s, flat_n = _best_of(repeats, unbatched)
    slow_s, slow_n = _best_of(repeats, naive)
    assert fast_n == flat_n == slow_n == events
    return {
        "events": events,
        "distinct_timestamps": distinct,
        "optimized_s": round(fast_s, 6),
        "unbatched_s": round(flat_s, 6),
        "naive_s": round(slow_s, 6),
        "optimized_eps": round(events / fast_s),
        "naive_eps": round(events / slow_s),
        "ratio": round(slow_s / fast_s, 2),
        "batch_ratio": round(flat_s / fast_s, 2),
    }


# --------------------------------------------------------------- forwarding


def _naive_neighbor_alive(node: "SwitchNode", peer: str) -> bool:
    """The pre-optimization liveness check: build the full live-link
    list for the peer, then test it for truthiness."""
    name = node.name
    live = [
        link
        for link in node.links_by_peer.get(peer, ())
        if link.detected_up_by(name)
    ]
    return bool(live)


def _naive_resolve_indexed(
    switch: "SwitchNode", packet: "Packet"
) -> "Tuple[Optional[FibEntry], Optional[str], int]":
    """The pre-optimization resolve: fresh trie walk per packet, full
    list allocation at every pruning step."""
    from .net.ecmp import select_next_hop
    from .net.fib import LOCAL

    depth = 0
    for entry in switch.fib.matches(packet.dst):
        live = [
            nh
            for nh in entry.next_hops
            if nh == LOCAL or _naive_neighbor_alive(switch, nh)
        ]
        if live:
            return entry, select_next_hop(live, packet.flow_key, switch.salt), depth
        depth += 1
    return None, None, depth


#: detection flaps interleaved into each timed forwarding pass
_FORWARDING_PHASES = 4


def bench_forwarding(packets: int, repeats: int) -> Dict[str, Any]:
    """Per-packet resolution on a converged F²Tree aggregation switch.

    Measures exactly the per-packet work ``SwitchNode.forward`` does to
    pick (entry, next hop): LPM fall-through plus liveness pruning plus
    ECMP.  The packet set sprays many flows over every rack prefix, so
    both paths see the realistic destination mix.

    Each timed pass replays the packet set across ``_FORWARDING_PHASES``
    phases separated by a detection flap (``force_detection`` down/up on
    one of the switch's links — no simulator events, no routing-agent
    notification).  A flap bumps the adjacency epoch, which is exactly
    the production invalidation pattern: the per-destination resolve
    cache must re-prune liveness, but the FIB generation is untouched,
    so the re-walk is served by the :meth:`repro.net.fib.Fib.chain`
    match-chain cache.  Without the flaps the resolve cache absorbs
    every repeat and the chain cache's reported hit rate is a
    meaningless 0.0 — with them, both cache layers do the work they do
    in a failure-churn experiment, and both fns see identical phases so
    the ratio stays fair.
    """
    from .core.f2tree import f2tree
    from .experiments.common import build_bundle
    from .net.packet import PROTO_UDP, Packet
    from .topology.graph import NodeKind

    topo = f2tree(8, hosts_per_tor=1)
    bundle = build_bundle(topo)
    bundle.converge()
    switch = bundle.network.switch(topo.pod_members(NodeKind.AGG, 0)[0].name)
    src_ip = bundle.network.host(
        [h for h in topo.nodes.values() if h.kind == NodeKind.HOST][0].name
    ).ip
    tors = [t for t in topo.tors() if t.subnet is not None]
    probe = []
    for i in range(packets):
        tor = tors[i % len(tors)]
        probe.append(
            Packet(
                src=src_ip,
                dst=tor.subnet.address(2),
                protocol=PROTO_UDP,
                size_bytes=1500,
                sport=10_000 + (i % 97),
                dport=7_000 + (i % 31),
            )
        )
    # the flapped link: detection drops and immediately recovers between
    # phases, so every phase forwards over the same live topology
    flap_link = switch.links_by_peer[sorted(switch.links_by_peer)[0]][0]
    total = packets * _FORWARDING_PHASES

    def optimized() -> Tuple[float, int]:
        resolve = switch._resolve_indexed
        t0 = time.perf_counter()
        n = 0
        for phase in range(_FORWARDING_PHASES):
            if phase:
                flap_link.force_detection(False)
                flap_link.force_detection(True)
            for packet in probe:
                entry, _hop, _depth = resolve(packet)
                if entry is not None:
                    n += 1
        return time.perf_counter() - t0, n

    def naive() -> Tuple[float, int]:
        t0 = time.perf_counter()
        n = 0
        for phase in range(_FORWARDING_PHASES):
            if phase:
                flap_link.force_detection(False)
                flap_link.force_detection(True)
            for packet in probe:
                entry, _hop, _depth = _naive_resolve_indexed(switch, packet)
                if entry is not None:
                    n += 1
        return time.perf_counter() - t0, n

    fast_s, fast_n = _best_of(repeats, optimized)
    slow_s, slow_n = _best_of(repeats, naive)
    assert fast_n == slow_n == total
    fib = switch.fib
    return {
        "packets": packets,
        "phases": _FORWARDING_PHASES,
        "resolutions": total,
        "optimized_s": round(fast_s, 6),
        "naive_s": round(slow_s, 6),
        "optimized_pps": round(total / fast_s),
        "naive_pps": round(total / slow_s),
        "ratio": round(slow_s / fast_s, 2),
        # lifetime match-chain cache counters over the whole section
        # (convergence warm-up + every timed pass); nonzero hits because
        # the detection flaps invalidate the resolve cache while the FIB
        # generation — the chain cache's key — holds
        "cache": _hit_rate_dict(fib.chain_hits, fib.chain_misses),
    }


# ---------------------------------------------------------------------- SPF


def bench_spf(rounds: int, repeats: int) -> Dict[str, Any]:
    """Repeated oracle queries over a stable graph, cached vs. not.

    The workload is what the verifier, the convergence-agreement
    invariant, and an LSA-refresh storm all do: recompute every switch's
    route table while the two-way graph hasn't changed.  Sequence
    numbers are bumped between rounds to prove the cache keys on
    content, not freshness.
    """
    from .core.f2tree import f2tree
    from .net.ip import Prefix
    from .routing.lsdb import Lsa, Lsdb
    from .routing.spf import compute_routes
    from .routing.spf_cache import SpfCache
    from .topology.addressing import assign_addresses

    topo = f2tree(8, hosts_per_tor=1)
    assign_addresses(topo)
    switches = sorted(
        n.name for n in topo.nodes.values() if n.kind.is_switch
    )

    def build_lsdb(seq: int) -> Lsdb:
        lsdb = Lsdb()
        for name in switches:
            node = topo.node(name)
            prefixes = []
            if node.subnet is not None:
                prefixes.append(node.subnet)
            assert node.ip is not None
            prefixes.append(Prefix(node.ip, 32))
            neighbors = tuple(sorted({
                peer
                for peer in topo.neighbors(name)
                if topo.node(peer).kind.is_switch
            }))
            lsdb.insert(Lsa(name, seq, neighbors, tuple(prefixes)))
        return lsdb

    tables = rounds * len(switches)

    def optimized() -> Tuple[float, int]:
        cache = SpfCache()
        t0 = time.perf_counter()
        n = 0
        for seq in range(1, rounds + 1):
            lsdb = build_lsdb(seq)  # seq-only refresh: same fingerprint
            for name in switches:
                if cache.compute(name, lsdb):
                    n += 1
        return time.perf_counter() - t0, n

    def naive() -> Tuple[float, int]:
        t0 = time.perf_counter()
        n = 0
        for seq in range(1, rounds + 1):
            lsdb = build_lsdb(seq)
            for name in switches:
                if compute_routes(name, lsdb):
                    n += 1
        return time.perf_counter() - t0, n

    fast_s, fast_n = _best_of(repeats, optimized)
    slow_s, slow_n = _best_of(repeats, naive)
    assert fast_n == slow_n == tables
    # physical cache counters, measured on a dedicated pass of the same
    # workload (the timed passes each use a throwaway cache)
    stats_cache = SpfCache()
    for seq in range(1, rounds + 1):
        lsdb = build_lsdb(seq)
        for name in switches:
            stats_cache.compute(name, lsdb)
    return {
        "rounds": rounds,
        "switches": len(switches),
        "tables": tables,
        "optimized_s": round(fast_s, 6),
        "naive_s": round(slow_s, 6),
        "optimized_sps": round(tables / fast_s),
        "naive_sps": round(tables / slow_s),
        "ratio": round(slow_s / fast_s, 2),
        "cache": _hit_rate_dict(stats_cache.hits, stats_cache.misses),
    }


def bench_spf_incremental(rounds: int, repeats: int) -> Dict[str, Any]:
    """Reconvergence under churn: one link flips per round, every switch
    recomputes its table.

    This is the paper's motivating regime — failures arrive one at a
    time, and each one invalidates every cached SPF result because the
    fingerprint changed.  The naive reference is the *previous* state of
    the art in this repo (the PR 5 memoized-full-SPF cache, here an
    :class:`~repro.routing.spf_cache.SpfCache` with ``incremental``
    off): it misses on every flap and re-runs Dijkstra per switch.  The
    optimized path patches each switch's previous state through the
    single-edge delta instead.

    The churn sequence fails links cumulatively and then restores the
    oldest few, so it exercises both ``link-down`` and ``link-up``
    deltas and every fingerprint along the way is distinct — neither
    cache ever gets a plain memo hit inside the timed region.
    """
    from .core.f2tree import f2tree
    from .net.ip import Prefix
    from .routing.lsdb import Lsa, Lsdb
    from .routing.spf_cache import SpfCache
    from .routing.spf_incremental import clear_memos
    from .topology.addressing import assign_addresses

    topo = f2tree(12, hosts_per_tor=1)
    assign_addresses(topo)
    switches = sorted(
        n.name for n in topo.nodes.values() if n.kind.is_switch
    )
    switch_set = set(switches)
    adjacency = {
        name: tuple(sorted(
            peer for peer in topo.neighbors(name) if peer in switch_set
        ))
        for name in switches
    }
    edges = sorted(
        {tuple(sorted((a, b))) for a in switches for b in adjacency[a]}
    )

    downs = rounds // 2 + 1
    ups = rounds - downs
    assert downs <= len(edges)
    stride = max(1, len(edges) // downs)
    flapped = edges[::stride][:downs]

    def build_lsdb(down: frozenset) -> Lsdb:
        lsdb = Lsdb()
        for name in switches:
            node = topo.node(name)
            prefixes = []
            if node.subnet is not None:
                prefixes.append(node.subnet)
            assert node.ip is not None
            prefixes.append(Prefix(node.ip, 32))
            neighbors = tuple(
                peer for peer in adjacency[name]
                if tuple(sorted((name, peer))) not in down
            )
            lsdb.insert(Lsa(name, 1, neighbors, tuple(prefixes)))
        return lsdb

    warmup_lsdb = build_lsdb(frozenset())
    sequence: List[Lsdb] = []
    down: set = set()
    for edge in flapped:
        down.add(edge)
        sequence.append(build_lsdb(frozenset(down)))
    for edge in flapped[:ups]:
        down.remove(edge)
        sequence.append(build_lsdb(frozenset(down)))
    assert len(sequence) == rounds
    tables = rounds * len(switches)

    def timed(incremental: bool) -> Callable[[], Tuple[float, int]]:
        def fn() -> Tuple[float, int]:
            # start from cold module memos: entries left over from a
            # previous bench pass hold *equal but distinct* fingerprint
            # objects, whose lookups pay deep tuple comparison instead
            # of the identity short-circuit a live trial enjoys
            clear_memos()
            cache = SpfCache()
            cache.incremental = incremental
            for name in switches:  # untimed warm start: both sides
                cache.compute(name, warmup_lsdb)  # begin converged
            t0 = time.perf_counter()
            n = 0
            for lsdb in sequence:
                for name in switches:
                    if cache.compute(name, lsdb):
                        n += 1
            return time.perf_counter() - t0, n

        return fn

    fast_s, fast_n = _best_of(repeats, timed(True))
    slow_s, slow_n = _best_of(repeats, timed(False))
    assert fast_n == slow_n == tables
    # delta counters from a dedicated pass (the timed passes each use a
    # throwaway cache)
    clear_memos()
    stats_cache = SpfCache()
    for name in switches:
        stats_cache.compute(name, warmup_lsdb)
    for lsdb in sequence:
        for name in switches:
            stats_cache.compute(name, lsdb)
    return {
        "rounds": rounds,
        "switches": len(switches),
        "flapped_links": len(flapped),
        "tables": tables,
        "optimized_s": round(fast_s, 6),
        "naive_s": round(slow_s, 6),
        "optimized_sps": round(tables / fast_s),
        "naive_sps": round(tables / slow_s),
        "ratio": round(slow_s / fast_s, 2),
        "incremental_updates": stats_cache.incremental_updates,
        "full_computes": stats_cache.full_computes,
    }


# ------------------------------------------------------- fair-share solver


def bench_fairshare_vector(flows: int, repeats: int) -> Dict[str, Any]:
    """Vectorized vs. pure-python max-min water-filling at bench scale.

    The fluid backend's per-recompute cost *is* this solve
    (:func:`repro.sim.flow.fairshare.max_min_rates`), so the section
    measures the same instance through both engines.  The instance is
    shaped like a large-fabric recompute: thousands of links in 48
    capacity classes, multi-hop paths striped across them, two thirds
    of the flows demand-capped — which drives hundreds of freezing
    rounds, the regime where the python solver's per-flow loops dominate
    and the numpy engine's per-round array ops amortize.

    The two engines agree **bitwise** (the fairshare module's contract;
    asserted here before any timing is reported), so the ratio is pure
    speed — no accuracy trade is being measured.  Gated as an absolute
    floor (``FAIRSHARE_MIN_RATIO``) at >= 10k flows, not against the
    committed baseline: python-vs-numpy on one box is its own yardstick.

    On an interpreter without numpy the section honestly reports
    ``numpy: false`` with no ratio, and the regression gate fails —
    the perf smoke requires the vector engine it is gating.
    """
    from .sim.flow.fairshare import have_numpy, max_min_rates

    n_links, hops = 2500, 6
    caps = {f"L{i:04d}": 0.5 + (i % 48) * 0.25 for i in range(n_links)}
    paths = {
        f"f{i:05d}": [
            f"L{(7919 * i + 613 * j) % n_links:04d}" for j in range(hops)
        ]
        for i in range(flows)
    }
    demands = {
        fid: 0.05 + (i % 29) * 0.01
        for i, fid in enumerate(sorted(paths))
        if i % 3 != 0
    }
    result: Dict[str, Any] = {
        "flows": flows,
        "links": n_links,
        "hops": hops,
        "demand_capped": len(demands),
        "numpy": have_numpy(),
    }
    if not have_numpy():
        return result

    reference = max_min_rates(paths, caps, demands, engine="python")
    vectorized = max_min_rates(paths, caps, demands, engine="numpy")
    assert vectorized == reference, (
        "engine disagreement: the numpy solver drifted from the python "
        "reference — a correctness bug, not a perf regression"
    )

    def timed(engine: str) -> Callable[[], Tuple[float, int]]:
        def fn() -> Tuple[float, int]:
            t0 = time.perf_counter()
            rates = max_min_rates(paths, caps, demands, engine=engine)
            return time.perf_counter() - t0, len(rates)

        return fn

    fast_s, fast_n = _best_of(repeats, timed("numpy"))
    slow_s, slow_n = _best_of(repeats, timed("python"))
    assert fast_n == slow_n == flows
    result.update({
        "optimized_s": round(fast_s, 6),
        "naive_s": round(slow_s, 6),
        "optimized_fps": round(flows / fast_s),
        "naive_fps": round(flows / slow_s),
        "ratio": round(slow_s / fast_s, 2),
    })
    return result


# ------------------------------------------------------------- flow backend


def bench_flow_backend(quick: bool = False) -> Dict[str, Any]:
    """The fluid backend's scale win, measured against an extrapolation.

    The packet backend cannot *run* a k=48 recovery trial in bench time
    (cold-start LSA flooding alone is Θ(V·E) events), so the comparison
    is honest about being an extrapolation — and the extrapolation is
    built on the one observable that is both deterministic and actually
    drives the cost: **events processed**.  Wall-clock at small k is
    useless as a fit basis (it is dominated by the constant per-trial
    probe traffic, so k=4 and k=6 measure the same); event counts of
    traffic-free cold-start convergence + failure reconvergence trials
    (:func:`repro.experiments.flowscale.run_packet_control_trial`) scale
    cleanly (≈ switches^2.6 in the measured range) and fit a power law
    ``events = c * switches^p`` exactly in log-log space.

    The projection is then deliberately conservative on *both* axes:
    projected packet seconds = fitted events at k=48 divided by the
    **fastest** measured packet event throughput, and the probe
    traffic's own events (~375k for 25000 packets) are omitted entirely
    — every simplification underestimates the packet cost, so the gated
    ``ratio`` (projected packet / measured fluid wall including all of
    its setup) is a floor on the true speedup.  ``within_budget``
    additionally enforces an absolute wall-clock ceiling on the k=48
    fluid trial so the ratio can't be "won" by both sides slowing down.

    k=48 (2880 switches, 56k links, 3.3M FIB entries) is the scale bar
    this section moved to once the vectorized fair-share engine and the
    bulk warm-start loaders (``Lsdb.load``, ``Fib.bulk_load``, the
    fabric-wide canonical prefix order) landed; it is the largest fabric
    in the paper's production-scale discussion.
    """
    import math

    from .experiments.flowscale import (
        run_flow_scale_trial,
        run_packet_control_trial,
    )

    packet_ports = (4, 6, 8) if quick else (4, 6, 8, 10)
    target_ports = 48

    measured: List[Dict[str, Any]] = []
    for ports in packet_ports:
        t0 = time.perf_counter()
        switches, links, events = run_packet_control_trial(ports)
        wall = time.perf_counter() - t0
        measured.append({
            "ports": ports,
            "switches": switches,
            "links": links,
            "events": events,
            "wall_s": round(wall, 3),
            "events_per_s": round(events / wall),
        })

    # least-squares power-law fit of events(switches) in log-log space
    xs = [math.log(m["switches"]) for m in measured]
    ys = [math.log(m["events"]) for m in measured]
    n = len(measured)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    exponent = (
        sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
    )
    intercept = mean_y - exponent * mean_x
    target_switches = 5 * target_ports * target_ports // 4
    projected_events = math.exp(
        intercept + exponent * math.log(target_switches)
    )
    best_eps = max(m["events_per_s"] for m in measured)
    projected_s = projected_events / best_eps

    t0 = time.perf_counter()
    scale = run_flow_scale_trial(ports=target_ports)
    flow_s = time.perf_counter() - t0

    return {
        "packet_trials": measured,
        "fit_exponent": round(exponent, 3),
        "target_ports": target_ports,
        "target_switches": target_switches,
        "projected_packet_events": round(projected_events),
        "packet_events_per_s": best_eps,
        "projected_packet_s": round(projected_s, 1),
        "flow_s": round(flow_s, 3),
        "ratio": round(projected_s / flow_s, 2),
        "budget_s": FLOW_SCALE_BUDGET_S,
        "within_budget": flow_s <= FLOW_SCALE_BUDGET_S,
        "scale_trial": {
            "switches": scale.n_switches,
            "links": scale.n_links,
            "loss_ms": (
                round(scale.connectivity_loss / 1e6, 3)
                if scale.connectivity_loss is not None
                else None
            ),
            "packets": f"{scale.packets_received}/{scale.packets_sent}",
            "events_processed": scale.events_processed,
            "batch_spf_runs": scale.batch_spf_runs,
            "batch_spf_hits": scale.batch_spf_hits,
            "flow_recomputes": scale.flow_recomputes,
            "path_after_complete": scale.path_after_complete,
        },
    }


# ----------------------------------------------------------------- campaign


def bench_campaign(workers: int) -> Dict[str, Any]:
    """Serial vs. parallel wall-clock on the 8-trial SPF-timer sweep.

    Recorded honestly: on a single-core box the parallel run usually
    *loses* (pool overhead with nothing to overlap) and ``enforced``
    says so.  The graded bar itself lives in
    ``benchmarks/test_bench_campaign.py``.
    """
    import os

    from .campaign.runner import run_campaign
    from .campaign.sweeps import spf_timer_specs

    cpu_count = os.cpu_count() or 1
    specs = spf_timer_specs()
    t0 = time.perf_counter()
    serial = run_campaign(specs, name="spf-timer", workers=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_campaign(specs, name="spf-timer", workers=workers)
    parallel_s = time.perf_counter() - t0
    return {
        "trials": len(specs),
        "cpu_count": cpu_count,
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
        "identical": serial.to_json() == parallel.to_json(),
        "enforced": cpu_count > 1,
    }


# ------------------------------------------------------------ orchestration


def run_hotpath_bench(quick: bool = False, campaign: bool = True) -> Dict[str, Any]:
    """Run every section; ``quick`` shrinks the workloads for CI smoke
    (and drops the campaign comparison, which dominates wall-clock)."""
    import os

    if quick:
        result: Dict[str, Any] = {
            "quick": True,
            "event_loop": bench_event_loop(events=20_000, repeats=2),
            "event_batch": bench_event_batch(events=20_000, repeats=2),
            "forwarding": bench_forwarding(packets=4_000, repeats=2),
            "spf": bench_spf(rounds=6, repeats=2),
            "spf_incremental": bench_spf_incremental(rounds=6, repeats=2),
            # quick still runs >= 10k flows: the fairshare gate's floor
            # is only meaningful at a scale where rounds are plentiful
            "fairshare_vector": bench_fairshare_vector(flows=10_000, repeats=1),
            "flow_backend": bench_flow_backend(quick=True),
        }
        campaign = False
    else:
        result = {
            "quick": False,
            "event_loop": bench_event_loop(events=20_000, repeats=5),
            "event_batch": bench_event_batch(events=20_000, repeats=5),
            "forwarding": bench_forwarding(packets=10_000, repeats=3),
            "spf": bench_spf(rounds=10, repeats=3),
            "spf_incremental": bench_spf_incremental(rounds=16, repeats=3),
            "fairshare_vector": bench_fairshare_vector(flows=16_000, repeats=2),
            "flow_backend": bench_flow_backend(quick=False),
        }
    result["cpu_count"] = os.cpu_count() or 1
    if campaign:
        result["campaign"] = bench_campaign(
            workers=min(4, os.cpu_count() or 1)
        )
    return result


def check_regression(
    fresh: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Ratio-based regression check; returns human-readable failures.

    Only the optimized-vs-naive *ratios* are compared — both runs of a
    section execute on the same machine, so the ratio cancels hardware
    out and a committed baseline from any box is a valid yardstick.
    """
    failures: List[str] = []
    for section in GATED_SECTIONS:
        if section in ("flow_backend", "fairshare_vector"):
            # gated against absolute floors below, not the baseline:
            # flow_backend's ratio compares a measurement against a
            # same-box projection, and fairshare_vector's python/numpy
            # ratio is its own yardstick — a committed baseline from
            # other hardware adds nothing to either
            continue
        base = baseline.get(section, {}).get("ratio")
        got = fresh.get(section, {}).get("ratio")
        if base is None or got is None:
            failures.append(f"{section}: missing ratio (baseline={base}, fresh={got})")
            continue
        floor = (1.0 - tolerance) * base
        if got < floor:
            failures.append(
                f"{section}: ratio {got:.2f} fell below {floor:.2f} "
                f"(baseline {base:.2f}, tolerance {tolerance:.0%})"
            )
    fair = fresh.get("fairshare_vector")
    if fair is None:
        failures.append("fairshare_vector: section missing from fresh result")
    elif not fair.get("numpy", False):
        failures.append(
            "fairshare_vector: numpy unavailable — the perf smoke "
            "requires the vector engine it gates"
        )
    elif fair["ratio"] < FAIRSHARE_MIN_RATIO:
        failures.append(
            f"fairshare_vector: speedup {fair['ratio']:.1f}x at "
            f"{fair['flows']:,} flows is below the "
            f"{FAIRSHARE_MIN_RATIO:.0f}x acceptance floor"
        )
    flow = fresh.get("flow_backend")
    if flow is None:
        failures.append("flow_backend: section missing from fresh result")
    else:
        if flow["ratio"] < FLOW_MIN_RATIO:
            failures.append(
                f"flow_backend: projected speedup {flow['ratio']:.1f}x is "
                f"below the {FLOW_MIN_RATIO:.0f}x acceptance floor"
            )
        if not flow.get("within_budget", True):
            failures.append(
                f"flow_backend: k={flow.get('target_ports')} fluid trial took "
                f"{flow.get('flow_s')}s, over the {flow.get('budget_s')}s budget"
            )
    return failures


def render(result: Dict[str, Any]) -> str:
    """Human-readable summary of a bench result."""
    lines = [
        "Hot-path benchmarks (optimized vs naive reference"
        f"{', quick' if result.get('quick') else ''}):"
    ]
    ev = result["event_loop"]
    lines.append(
        f"  event loop: {ev['optimized_eps']:>10,} events/s "
        f"(naive {ev['naive_eps']:,}/s) -> {ev['ratio']:.1f}x"
    )
    eb = result.get("event_batch")
    if eb:
        lines.append(
            f"  batching:   {eb['optimized_eps']:>10,} events/s "
            f"(naive {eb['naive_eps']:,}/s) -> {eb['ratio']:.1f}x, "
            f"{eb['batch_ratio']:.2f}x over unbatched"
        )
    fw = result["forwarding"]
    lines.append(
        f"  forwarding: {fw['optimized_pps']:>10,} packets/s "
        f"(naive {fw['naive_pps']:,}/s) -> {fw['ratio']:.1f}x"
    )
    spf = result["spf"]
    lines.append(
        f"  SPF oracle: {spf['optimized_sps']:>10,} tables/s "
        f"(naive {spf['naive_sps']:,}/s) -> {spf['ratio']:.1f}x"
    )
    inc = result.get("spf_incremental")
    if inc:
        lines.append(
            f"  SPF churn:  {inc['optimized_sps']:>10,} tables/s "
            f"(full-SPF {inc['naive_sps']:,}/s) -> {inc['ratio']:.1f}x "
            f"({inc['incremental_updates']:,} incremental / "
            f"{inc['full_computes']:,} full)"
        )
    spf_cache = spf.get("cache")
    fw_cache = fw.get("cache")
    if spf_cache and fw_cache:
        lines.append(
            f"  caches:     SPF {spf_cache['hit_rate']:.1%} hit rate "
            f"({spf_cache['hits']:,}/{spf_cache['hits'] + spf_cache['misses']:,}), "
            f"FIB chain {fw_cache['hit_rate']:.1%} "
            f"({fw_cache['hits']:,}/{fw_cache['hits'] + fw_cache['misses']:,})"
        )
    fair = result.get("fairshare_vector")
    if fair:
        if fair.get("numpy"):
            lines.append(
                f"  fair share: {fair['optimized_fps']:>10,} flows/s "
                f"(python {fair['naive_fps']:,}/s) -> {fair['ratio']:.1f}x "
                f"at {fair['flows']:,} flows"
            )
        else:
            lines.append("  fair share: numpy unavailable (no vector engine)")
    flow = result.get("flow_backend")
    if flow:
        lines.append(
            f"  fluid k={flow['target_ports']}: {flow['flow_s']:.1f}s measured "
            f"vs {flow['projected_packet_s']:.0f}s projected packet "
            f"-> {flow['ratio']:.1f}x (budget {flow['budget_s']:.0f}s, "
            f"{'within' if flow['within_budget'] else 'OVER'})"
        )
    camp = result.get("campaign")
    if camp:
        lines.append(
            f"  campaign:   {camp['speedup']:.2f}x speedup with "
            f"{camp['workers']} workers on {camp['cpu_count']} core(s)"
            f" (bar {'enforced' if camp['enforced'] else 'not enforced'})"
        )
    return "\n".join(lines)


def to_json(result: Dict[str, Any]) -> str:
    return json.dumps(result, indent=2, sort_keys=True) + "\n"
