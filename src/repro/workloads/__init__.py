"""Workloads: partition-aggregate requests and log-normal background flows."""

from .background import SINK_PORT, BackgroundFlow, BackgroundTraffic
from .partition_aggregate import WORKER_PORT, PartitionAggregateWorkload

__all__ = [
    "SINK_PORT",
    "BackgroundFlow",
    "BackgroundTraffic",
    "WORKER_PORT",
    "PartitionAggregateWorkload",
]
