"""Partition-aggregate workload (§IV-B).

"We randomly pick some end hosts, each of which sends a small TCP single
request to each of 8 other end hosts, and waits for a 2KB response from
each machine" — the classic front-end DCN pattern [24].  A request
completes when **all** fan-out responses have arrived; completion times are
scored against the 250 ms deadline [23].
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dataplane.network import Network
from ..dataplane.node import HostNode
from ..metrics.requests import RequestRecord, RequestStats
from ..sim.randomness import RandomStreams
from ..sim.units import Time
from ..transport.apps import RequestOutcome, RequestResponseServer, issue_request
from ..transport.tcp import TcpParams, TcpStack

#: well-known port every host's worker server listens on
WORKER_PORT = 5000


class PartitionAggregateWorkload:
    """Generates fan-out request/response traffic over a network."""

    def __init__(
        self,
        network: Network,
        streams: RandomStreams,
        n_requests: int,
        fanout: int = 8,
        request_bytes: int = 64,
        response_bytes: int = 2048,
        tcp_params: Optional[TcpParams] = None,
    ) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        self.network = network
        self.sim = network.sim
        self.rng = streams.stream("partition-aggregate")
        self.n_requests = n_requests
        self.fanout = fanout
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.tcp_params = tcp_params or TcpParams()
        self.stats = RequestStats()
        self._stacks: Dict[str, TcpStack] = {}
        self._servers: List[RequestResponseServer] = []

        hosts = network.hosts()
        if len(hosts) < fanout + 1:
            raise ValueError(
                f"need at least {fanout + 1} hosts, have {len(hosts)}"
            )
        self._hosts = hosts
        for host in hosts:
            self._servers.append(
                RequestResponseServer(
                    self.sim, host, WORKER_PORT,
                    request_bytes=request_bytes,
                    response_bytes=response_bytes,
                    params=self.tcp_params,
                )
            )

    def schedule(self, start: Time, horizon: Time) -> None:
        """Spread ``n_requests`` Poisson-style over [start, start+horizon)."""
        mean_gap = horizon / self.n_requests
        t = float(start)
        for _ in range(self.n_requests):
            t += self.rng.expovariate(1.0 / mean_gap)
            at = round(t)
            if at >= start + horizon:
                at = start + horizon - 1
            self.sim.schedule_at(at, self._launch_request)

    def _stack_of(self, host: HostNode) -> TcpStack:
        stack = self._stacks.get(host.name)
        if stack is None:
            stack = TcpStack(self.sim, host, self.tcp_params)
            self._stacks[host.name] = stack
        return stack

    def _launch_request(self) -> None:
        requester = self._hosts[self.rng.randrange(len(self._hosts))]
        workers = self.rng.sample(
            [h for h in self._hosts if h.name != requester.name], self.fanout
        )
        record = RequestRecord(started_at=self.sim.now)
        self.stats.records.append(record)
        progress = {"remaining": self.fanout, "failed": 0}

        def on_complete(outcome: RequestOutcome) -> None:
            progress["remaining"] -= 1
            if outcome.failed:
                progress["failed"] += 1
            if progress["remaining"] == 0 and progress["failed"] == 0:
                record.completed_at = self.sim.now

        stack = self._stack_of(requester)
        for worker in workers:
            issue_request(
                self.sim,
                stack,
                worker.ip,
                WORKER_PORT,
                request_bytes=self.request_bytes,
                response_bytes=self.response_bytes,
                on_complete=on_complete,
                params=self.tcp_params,
            )
