"""Background traffic (§IV-B).

"The flow sizes and inter-arrival intervals of the background traffic obey
the log-normal distribution derived from real operational DCNs [25]" —
Benson et al. measured heavy-tailed, mostly-small flows.  We draw sizes and
inter-arrivals from log-normals with configurable arithmetic means (the
paper's run: 1500 flows over 600 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..dataplane.network import Network
from ..dataplane.node import HostNode
from ..sim.randomness import RandomStreams, lognormal_from_mean_sigma
from ..sim.units import Time
from ..transport.apps import TcpSinkServer
from ..transport.tcp import TcpConnection, TcpParams, TcpStack

#: well-known port every host's bulk sink listens on
SINK_PORT = 5001


@dataclass
class BackgroundFlow:
    """One background transfer."""

    src: str
    dst: str
    size_bytes: int
    started_at: Time
    completed_at: Optional[Time] = None


class BackgroundTraffic:
    """Log-normal background flows between random host pairs."""

    def __init__(
        self,
        network: Network,
        streams: RandomStreams,
        mean_flow_bytes: int = 50_000,
        size_sigma: float = 1.5,
        gap_sigma: float = 1.0,
        tcp_params: Optional[TcpParams] = None,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.rng = streams.stream("background")
        self.mean_flow_bytes = mean_flow_bytes
        self.size_sigma = size_sigma
        self.gap_sigma = gap_sigma
        self.tcp_params = tcp_params or TcpParams()
        self.flows: List[BackgroundFlow] = []
        self._stacks: Dict[str, TcpStack] = {}
        self._sinks = [
            TcpSinkServer(self.sim, host, SINK_PORT) for host in network.hosts()
        ]
        self._hosts = network.hosts()

    def schedule(self, n_flows: int, start: Time, horizon: Time) -> None:
        """Draw ``n_flows`` start times over [start, start + horizon)."""
        mean_gap = horizon / n_flows
        t = float(start)
        for _ in range(n_flows):
            t += lognormal_from_mean_sigma(self.rng, mean_gap, self.gap_sigma)
            at = round(t)
            if at >= start + horizon:
                at = start + horizon - 1
            self.sim.schedule_at(at, self._launch_flow)

    def _stack_of(self, host: HostNode) -> TcpStack:
        stack = self._stacks.get(host.name)
        if stack is None:
            stack = TcpStack(self.sim, host, self.tcp_params)
            self._stacks[host.name] = stack
        return stack

    def _launch_flow(self) -> None:
        src = self._hosts[self.rng.randrange(len(self._hosts))]
        dst = src
        while dst.name == src.name:
            dst = self._hosts[self.rng.randrange(len(self._hosts))]
        size = max(
            1448,
            round(
                lognormal_from_mean_sigma(
                    self.rng, self.mean_flow_bytes, self.size_sigma
                )
            ),
        )
        flow = BackgroundFlow(src.name, dst.name, size, self.sim.now)
        self.flows.append(flow)
        connection = self._stack_of(src).open(dst.ip, SINK_PORT)
        connection.send(size)

        def on_all_acked(conn: TcpConnection) -> None:
            if flow.completed_at is None:
                flow.completed_at = self.sim.now
                conn.close()

        connection.on_all_acked = on_all_acked

    @property
    def completed(self) -> int:
        return sum(1 for f in self.flows if f.completed_at is not None)
