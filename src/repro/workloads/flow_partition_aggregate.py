"""Partition-aggregate workload on the fluid backend (§IV-B).

The fluid twin of :mod:`repro.workloads.partition_aggregate` and
:mod:`repro.workloads.background`: the same Fig 6 traffic, but each
worker response and each background transfer is a **reliable paced
fluid flow** (:meth:`repro.sim.flow.FluidTrafficModel.add_paced_flow`)
instead of a TCP connection over per-packet events.  This is what lets
Fig 6 run at scales the packet backend cannot reach.

Draw-sequence mirroring
-----------------------
Both twins draw from the same named random streams
(``"partition-aggregate"`` / ``"background"``) in exactly the same
order — one ``expovariate`` per request in :meth:`schedule`, then one
``randrange`` (requester) and one ``sample`` (workers) per launch —
so with equal seeds the packet and fluid runs see the *identical*
request schedule, requester/worker picks, and background flow sizes.
Differences in the results are then attributable to the transport
model, not to different coin flips.

What the fluid view approximates (beyond DESIGN §11):

* the 64-byte request leg is folded into the response start: its
  one-way latency is microseconds against a 250 ms deadline, and a
  dead requester→worker path almost always means the worker→requester
  response path shares the failed link in reverse, where the response
  flow backlogs until heal — first-order the same outcome as TCP
  retrying the request;
* a response/transfer offers whole packets (``ceil(bytes / packet)``),
  matching full-segment pacing rather than exact byte counts;
* completion is read analytically after :meth:`collect` — a flow whose
  backlog never drains stays incomplete and is censored by
  :attr:`~repro.metrics.requests.RequestStats.censored_at`, exactly
  like an unfinished TCP request at experiment end.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..dataplane.network import Network
from ..metrics.requests import RequestRecord, RequestStats
from ..net.packet import PROTO_TCP
from ..sim.flow.model import FluidFlow, FluidTrafficModel
from ..sim.randomness import RandomStreams, lognormal_from_mean_sigma
from ..sim.units import Time, microseconds
from .background import SINK_PORT, BackgroundFlow
from .partition_aggregate import WORKER_PORT

#: base of the deterministic ephemeral-port counter; each fluid flow
#: gets a distinct client port so five-tuple ECMP hashing spreads the
#: fan-out across paths exactly like distinct TCP connections would
EPHEMERAL_BASE = 49152
EPHEMERAL_SPAN = 16384

#: pacing of a 2 KB response: 1024-byte packets every 2 us (~4.1 Gb/s
#: offered) — fast against the 250 ms deadline, below link rate, so an
#: uncongested response is latency-dominated, not pacing-dominated
RESPONSE_PACKET_BYTES = 1024
RESPONSE_INTERVAL: Time = microseconds(2)

#: pacing of background transfers: full 1448-byte segments at ~9.7 Gb/s
#: offered — effectively elastic (the fair share, not the pacing, is
#: the binding constraint on a healthy 10 Gb/s path)
BACKGROUND_PACKET_BYTES = 1448
BACKGROUND_INTERVAL: Time = microseconds(1.2)


def _paced_span(size_bytes: int, packet_bytes: int, interval: Time) -> Time:
    """Offer duration for ``size_bytes`` at the given pacing (whole
    packets; ``FluidFlow.offered_bytes`` is demand x span, so the span
    must cover ceil(size / packet) ticks exactly)."""
    ticks = -(-size_bytes // packet_bytes)
    return ticks * interval


class FlowPartitionAggregateWorkload:
    """Fan-out request/response traffic as reliable fluid flows."""

    def __init__(
        self,
        network: Network,
        model: FluidTrafficModel,
        streams: RandomStreams,
        n_requests: int,
        fanout: int = 8,
        request_bytes: int = 64,
        response_bytes: int = 2048,
    ) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        self.network = network
        self.model = model
        self.sim = network.sim
        self.rng = streams.stream("partition-aggregate")
        self.n_requests = n_requests
        self.fanout = fanout
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.stats = RequestStats()
        #: (record, fan-out response flows) per launched request, in
        #: launch order; resolved into completions by :meth:`collect`
        self._pending: List[Tuple[RequestRecord, List[FluidFlow]]] = []
        self._port_counter = 0

        hosts = network.hosts()
        if len(hosts) < fanout + 1:
            raise ValueError(
                f"need at least {fanout + 1} hosts, have {len(hosts)}"
            )
        self._hosts = hosts

    def schedule(self, start: Time, horizon: Time) -> None:
        """Spread ``n_requests`` Poisson-style over [start, start+horizon)
        — draw-for-draw identical to the packet twin."""
        mean_gap = horizon / self.n_requests
        t = float(start)
        for _ in range(self.n_requests):
            t += self.rng.expovariate(1.0 / mean_gap)
            at = round(t)
            if at >= start + horizon:
                at = start + horizon - 1
            self.sim.schedule_at(at, self._launch_request)

    def _next_port(self) -> int:
        port = EPHEMERAL_BASE + self._port_counter % EPHEMERAL_SPAN
        self._port_counter += 1
        return port

    def _launch_request(self) -> None:
        requester = self._hosts[self.rng.randrange(len(self._hosts))]
        workers = self.rng.sample(
            [h for h in self._hosts if h.name != requester.name], self.fanout
        )
        record = RequestRecord(started_at=self.sim.now)
        self.stats.records.append(record)
        index = len(self.stats.records) - 1
        start = self.sim.now
        stop = start + _paced_span(
            self.response_bytes, RESPONSE_PACKET_BYTES, RESPONSE_INTERVAL
        )
        responses = []
        for worker in workers:
            responses.append(
                self.model.add_paced_flow(
                    f"pa-{index}-{worker.name}",
                    worker.name,
                    requester.name,
                    dport=self._next_port(),
                    sport=WORKER_PORT,
                    protocol=PROTO_TCP,
                    packet_bytes=RESPONSE_PACKET_BYTES,
                    interval=RESPONSE_INTERVAL,
                    start=start,
                    stop=stop,
                )
            )
        self._pending.append((record, responses))

    def collect(self) -> None:
        """Resolve completions (call after ``model.finalize()``): a
        request completes at the instant its *slowest* fan-out response
        finishes; any response that never drained leaves the request
        incomplete (censored by the caller via ``stats.censored_at``)."""
        for record, responses in self._pending:
            completions = [flow.completion_time() for flow in responses]
            if all(at is not None for at in completions):
                record.completed_at = max(at for at in completions if at is not None)


class FlowBackgroundTraffic:
    """Log-normal background transfers as reliable fluid flows."""

    def __init__(
        self,
        network: Network,
        model: FluidTrafficModel,
        streams: RandomStreams,
        mean_flow_bytes: int = 50_000,
        size_sigma: float = 1.5,
        gap_sigma: float = 1.0,
    ) -> None:
        self.network = network
        self.model = model
        self.sim = network.sim
        self.rng = streams.stream("background")
        self.mean_flow_bytes = mean_flow_bytes
        self.size_sigma = size_sigma
        self.gap_sigma = gap_sigma
        self.flows: List[BackgroundFlow] = []
        self._transfers: List[Tuple[BackgroundFlow, FluidFlow]] = []
        self._hosts = network.hosts()
        self._port_counter = 0

    def schedule(self, n_flows: int, start: Time, horizon: Time) -> None:
        """Draw ``n_flows`` start times over [start, start + horizon) —
        draw-for-draw identical to the packet twin."""
        mean_gap = horizon / n_flows
        t = float(start)
        for _ in range(n_flows):
            t += lognormal_from_mean_sigma(self.rng, mean_gap, self.gap_sigma)
            at = round(t)
            if at >= start + horizon:
                at = start + horizon - 1
            self.sim.schedule_at(at, self._launch_flow)

    def _launch_flow(self) -> None:
        src = self._hosts[self.rng.randrange(len(self._hosts))]
        dst = src
        while dst.name == src.name:
            dst = self._hosts[self.rng.randrange(len(self._hosts))]
        size = max(
            1448,
            round(
                lognormal_from_mean_sigma(
                    self.rng, self.mean_flow_bytes, self.size_sigma
                )
            ),
        )
        flow = BackgroundFlow(src.name, dst.name, size, self.sim.now)
        self.flows.append(flow)
        start = self.sim.now
        stop = start + _paced_span(
            size, BACKGROUND_PACKET_BYTES, BACKGROUND_INTERVAL
        )
        self._port_counter += 1
        transfer = self.model.add_paced_flow(
            f"bg-{len(self.flows) - 1}",
            src.name,
            dst.name,
            dport=SINK_PORT,
            sport=EPHEMERAL_BASE + self._port_counter % EPHEMERAL_SPAN,
            protocol=PROTO_TCP,
            packet_bytes=BACKGROUND_PACKET_BYTES,
            interval=BACKGROUND_INTERVAL,
            start=start,
            stop=stop,
        )
        self._transfers.append((flow, transfer))

    def collect(self) -> None:
        """Resolve completions (call after ``model.finalize()``)."""
        for flow, transfer in self._transfers:
            done: Optional[Time] = transfer.completion_time()
            if done is not None and flow.completed_at is None:
                flow.completed_at = done

    @property
    def completed(self) -> int:
        return sum(1 for f in self.flows if f.completed_at is not None)
