"""Compact array-of-ints graph representation for large fabrics.

:class:`~repro.topology.graph.Topology` stores nodes and links as rich
dict-of-objects structures — ideal for the paper-scale experiments, but
wasteful when a k=32 fat tree (1280 switches, ~17k links) needs all-pairs
shortest paths.  :class:`CompactGraph` flattens a graph into CSR form:
node names become dense integer indices, adjacency becomes two int
arrays (``indptr``/``indices``), and the numpy-vectorized batch SPF in
:mod:`repro.routing.spf_batch` operates directly on those arrays.

Construction is canonical: names are sorted, per-row neighbor lists are
sorted, so two graphs with equal edge sets produce byte-identical
arrays regardless of input iteration order.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .graph import Topology


@dataclass(frozen=True)
class CompactGraph:
    """An undirected graph in CSR (compressed sparse row) form.

    ``indices[indptr[i]:indptr[i + 1]]`` are the (sorted) neighbor
    indices of node ``i``; ``names[i]`` recovers the node's name.
    """

    names: Tuple[str, ...]
    index: Dict[str, int]
    indptr: "array[int]"
    indices: "array[int]"

    def __len__(self) -> int:
        return len(self.names)

    @property
    def n_edges(self) -> int:
        """Undirected edge count (each edge appears in two rows)."""
        return len(self.indices) // 2

    def neighbors(self, node: int) -> "array[int]":
        """Neighbor indices of ``node`` (sorted)."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def degree(self, node: int) -> int:
        return self.indptr[node + 1] - self.indptr[node]

    @classmethod
    def from_adjacency(
        cls, adjacency: Mapping[str, Iterable[str]]
    ) -> "CompactGraph":
        """Build from a name -> neighbors mapping.

        Every node must appear as a key; edges pointing at unknown names
        are dropped (half-declared adjacency is not an edge — the same
        two-way rule link-state SPF applies).
        """
        names = tuple(sorted(adjacency))
        index = {name: i for i, name in enumerate(names)}
        indptr = array("l", [0])
        indices = array("l")
        for name in names:
            row = sorted(
                {index[peer] for peer in adjacency[name] if peer in index}
            )
            indices.extend(row)
            indptr.append(len(indices))
        return cls(names=names, index=index, indptr=indptr, indices=indices)

    @classmethod
    def from_topology(
        cls, topology: Topology, switches_only: bool = True
    ) -> "CompactGraph":
        """Flatten a built topology (by default its switch-to-switch graph,
        which is what routing operates on)."""
        adjacency: Dict[str, List[str]] = {}
        for node in topology.nodes.values():
            if switches_only and not node.kind.is_switch:
                continue
            adjacency[node.name] = []
        for link in topology.links.values():
            a, b = link.key
            if a in adjacency and b in adjacency:
                adjacency[a].append(b)
                adjacency[b].append(a)
        return cls.from_adjacency(adjacency)

    def edges(self) -> List[Tuple[str, str]]:
        """Undirected edges as sorted name pairs (sorted list)."""
        result: List[Tuple[str, str]] = []
        for i in range(len(self.names)):
            for j in self.neighbors(i):
                if i < j:
                    result.append((self.names[i], self.names[j]))
        return result


def pack_paths(paths: Sequence[Sequence[str]], graph: CompactGraph) -> List["array[int]"]:
    """Convert name paths to index paths (bulk helper for the flow model)."""
    return [
        array("l", [graph.index[name] for name in path]) for path in paths
    ]
