"""Standard k-ary fat tree (Al-Fares et al., SIGCOMM 2008).

A 3-layer fat tree of ``k``-port switches has ``k`` pods; each pod holds
``k/2`` ToRs and ``k/2`` aggregation switches in full bipartite; there are
``(k/2)^2`` core switches, in ``k/2`` *groups* of ``k/2``: every core of
group ``i`` connects to aggregation switch ``i`` of every pod.  Each ToR
serves ``k/2`` hosts — ``k^3/4`` in total (Table I's fat tree row).

Node naming (used throughout scenarios and tests):

* ``host-<p>-<t>-<h>`` — host ``h`` under ToR ``t`` of pod ``p``
* ``tor-<p>-<t>``, ``agg-<p>-<a>`` — pod-local index left to right
* ``core-<g>-<c>`` — core ``c`` of group ``g``

Core switches carry ``pod=<group>`` so that the F²Tree rewiring can treat a
core group as a pod (the paper's definition of a pod — switches attached to
the same subtrees — makes each core group a pod of the core layer).
"""

from __future__ import annotations

from .graph import LinkKind, Node, NodeKind, Topology, TopologyError


def fat_tree(ports: int, hosts_per_tor: int | None = None) -> Topology:
    """Build a 3-layer fat tree of ``ports``-port switches.

    ``hosts_per_tor`` defaults to ``ports/2`` (the non-oversubscribed
    maximum); experiments sometimes attach fewer hosts to keep the
    simulation small without touching the switching fabric.
    """
    if ports < 4 or ports % 2:
        raise TopologyError(f"fat tree needs an even port count >= 4, got {ports}")
    half = ports // 2
    if hosts_per_tor is None:
        hosts_per_tor = half
    if hosts_per_tor > half:
        raise TopologyError(
            f"{hosts_per_tor} hosts per ToR exceed the {half} free ports"
        )

    topo = Topology(
        f"fat-tree-{ports}",
        params={"ports": ports, "hosts_per_tor": hosts_per_tor, "family": "fat-tree"},
    )

    for pod in range(ports):
        for t in range(half):
            topo.add_node(Node(f"tor-{pod}-{t}", NodeKind.TOR, pod=pod, position=t))
        for a in range(half):
            topo.add_node(Node(f"agg-{pod}-{a}", NodeKind.AGG, pod=pod, position=a))
        for t in range(half):
            for h in range(hosts_per_tor):
                host = topo.add_node(
                    Node(f"host-{pod}-{t}-{h}", NodeKind.HOST, pod=pod, position=h)
                )
                topo.add_link(host.name, f"tor-{pod}-{t}", LinkKind.HOST)
        for t in range(half):
            for a in range(half):
                topo.add_link(f"tor-{pod}-{t}", f"agg-{pod}-{a}", LinkKind.TOR_AGG)

    for group in range(half):
        for c in range(half):
            topo.add_node(
                Node(f"core-{group}-{c}", NodeKind.CORE, pod=group, position=c)
            )
    for group in range(half):
        for c in range(half):
            core = f"core-{group}-{c}"
            for pod in range(ports):
                topo.add_link(f"agg-{pod}-{group}", core, LinkKind.AGG_CORE)

    topo.validate_port_budget(ports, (NodeKind.TOR, NodeKind.AGG, NodeKind.CORE))
    return topo


def expected_fat_tree_counts(ports: int) -> dict:
    """Closed-form counts from Table I (fat tree row)."""
    return {
        "switches": 5 * ports * ports // 4,
        "hosts": ports ** 3 // 4,
        "pods": ports,
        "cores": (ports // 2) ** 2,
    }
