"""DCN address assignment, following Fig 3(d) of the paper.

The paper describes (from an interview with a top cloud provider) the
production convention our reproduction follows:

* every switch bundles all ports into **one** layer-3 interface with one IP;
* hosts in a rack share the ToR's ``/24`` subnet, which the ToR
  redistributes into the routing protocol;
* the **DCN prefix** (``10.11.0.0/16``) covers every host, and a one-bit
  shorter **covering prefix** (``10.10.0.0/15``) covers the DCN prefix —
  these two carry F²Tree's backup static routes.

Concretely (matching the figure): ToR *i* owns ``10.11.i.0/24`` with switch
IP ``10.11.i.1`` and hosts from ``.2``; aggregation switch *j* is
``10.12.j.1``; core *m* is ``10.13.m.1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..net.ip import IPv4Address, Prefix
from .graph import NodeKind, Topology, TopologyError

#: The prefix covering every host in the DCN (backup route #3 in Table II).
DCN_PREFIX = Prefix("10.11.0.0/16")
#: The shorter prefix covering the DCN prefix (backup route #4 in Table II).
COVERING_PREFIX = Prefix("10.10.0.0/15")

_AGG_BASE = IPv4Address("10.12.0.0")
_CORE_BASE = IPv4Address("10.13.0.0")


@dataclass
class AddressPlan:
    """The result of address assignment.

    All the maps are also written back onto the topology's nodes
    (``node.ip`` / ``node.subnet``) for convenient access.
    """

    dcn_prefix: Prefix = DCN_PREFIX
    covering_prefix: Prefix = COVERING_PREFIX
    switch_ips: Dict[str, IPv4Address] = field(default_factory=dict)
    host_ips: Dict[str, IPv4Address] = field(default_factory=dict)
    tor_subnets: Dict[str, Prefix] = field(default_factory=dict)
    #: reverse map, for trace readability
    by_ip: Dict[IPv4Address, str] = field(default_factory=dict)

    def ip_of(self, name: str) -> IPv4Address:
        ip = self.switch_ips.get(name) or self.host_ips.get(name)
        if ip is None:
            raise TopologyError(f"no address assigned to {name!r}")
        return ip

    def name_of(self, ip: IPv4Address) -> str:
        name = self.by_ip.get(ip)
        if name is None:
            raise TopologyError(f"unknown address {ip}")
        return name


def assign_addresses(topology: Topology) -> AddressPlan:
    """Assign addresses per the Fig 3(d) convention.

    ToRs (and Leaf-Spine leaves) get consecutive ``/24``s under the DCN
    prefix; aggregation/spine/intermediate and core switches get loopbacks
    under ``10.12.0.0/16`` and ``10.13.0.0/16`` respectively.
    """
    plan = AddressPlan()

    tors = topology.nodes_of_kind(NodeKind.TOR, NodeKind.LEAF)
    if len(tors) > 254:
        raise TopologyError(
            f"{len(tors)} racks exceed the /16 DCN prefix's 254 rack subnets"
        )
    for index, tor in enumerate(tors):
        subnet = Prefix(DCN_PREFIX.address(index * 256), 24)
        tor_ip = subnet.address(1)
        tor.ip = tor_ip
        tor.subnet = subnet
        plan.tor_subnets[tor.name] = subnet
        plan.switch_ips[tor.name] = tor_ip
        plan.by_ip[tor_ip] = tor.name
        hosts = topology.host_of_tor(tor.name)
        if len(hosts) > 252:
            raise TopologyError(f"too many hosts under {tor.name}")
        for offset, host in enumerate(hosts):
            host_ip = subnet.address(2 + offset)
            host.ip = host_ip
            plan.host_ips[host.name] = host_ip
            plan.by_ip[host_ip] = host.name

    middle = topology.nodes_of_kind(
        NodeKind.AGG, NodeKind.SPINE, NodeKind.INTERMEDIATE
    )
    for index, switch in enumerate(middle):
        ip = IPv4Address(_AGG_BASE.value + index * 256 + 1)
        switch.ip = ip
        plan.switch_ips[switch.name] = ip
        plan.by_ip[ip] = switch.name

    cores = topology.nodes_of_kind(NodeKind.CORE)
    for index, core in enumerate(cores):
        ip = IPv4Address(_CORE_BASE.value + index * 256 + 1)
        core.ip = ip
        plan.switch_ips[core.name] = ip
        plan.by_ip[ip] = core.name

    return plan
