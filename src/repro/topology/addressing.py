"""DCN address assignment, following Fig 3(d) of the paper.

The paper describes (from an interview with a top cloud provider) the
production convention our reproduction follows:

* every switch bundles all ports into **one** layer-3 interface with one IP;
* hosts in a rack share the ToR's ``/24`` subnet, which the ToR
  redistributes into the routing protocol;
* the **DCN prefix** (``10.11.0.0/16``) covers every host, and a one-bit
  shorter **covering prefix** (``10.10.0.0/15``) covers the DCN prefix —
  these two carry F²Tree's backup static routes.

Concretely (matching the figure): ToR *i* owns ``10.11.i.0/24`` with switch
IP ``10.11.i.1`` and hosts from ``.2``; aggregation switch *j* is
``10.12.j.1``; core *m* is ``10.13.m.1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..net.ip import IPv4Address, Prefix
from .graph import NodeKind, Topology, TopologyError

#: The prefix covering every host in the DCN (backup route #3 in Table II).
DCN_PREFIX = Prefix("10.11.0.0/16")
#: The shorter prefix covering the DCN prefix (backup route #4 in Table II).
COVERING_PREFIX = Prefix("10.10.0.0/15")

_AGG_BASE = IPv4Address("10.12.0.0")
_CORE_BASE = IPv4Address("10.13.0.0")

#: Wide layout for fabrics beyond the figure's scale (k=32 fat trees
#: have 512 racks and 512 aggregation switches): same shape — one /24
#: per rack under one DCN prefix, covered by a one-bit-shorter prefix,
#: /24-spaced loopback blocks for the middle and core layers — but the
#: blocks are spread across 10/8 so none can collide below 16384
#: switches per layer.  Fabrics that fit the paper's layout keep it
#: byte-identically.
_WIDE_DCN_BASE = IPv4Address("10.64.0.0")
_WIDE_AGG_BASE = IPv4Address("10.128.0.0")
_WIDE_CORE_BASE = IPv4Address("10.192.0.0")
_WIDE_LAYER_CAP = 16384


@dataclass
class AddressPlan:
    """The result of address assignment.

    All the maps are also written back onto the topology's nodes
    (``node.ip`` / ``node.subnet``) for convenient access.
    """

    dcn_prefix: Prefix = DCN_PREFIX
    covering_prefix: Prefix = COVERING_PREFIX
    switch_ips: Dict[str, IPv4Address] = field(default_factory=dict)
    host_ips: Dict[str, IPv4Address] = field(default_factory=dict)
    tor_subnets: Dict[str, Prefix] = field(default_factory=dict)
    #: reverse map, for trace readability
    by_ip: Dict[IPv4Address, str] = field(default_factory=dict)

    def ip_of(self, name: str) -> IPv4Address:
        ip = self.switch_ips.get(name) or self.host_ips.get(name)
        if ip is None:
            raise TopologyError(f"no address assigned to {name!r}")
        return ip

    def name_of(self, ip: IPv4Address) -> str:
        name = self.by_ip.get(ip)
        if name is None:
            raise TopologyError(f"unknown address {ip}")
        return name


def assign_addresses(topology: Topology) -> AddressPlan:
    """Assign addresses per the Fig 3(d) convention.

    ToRs (and Leaf-Spine leaves) get consecutive ``/24``s under the DCN
    prefix; aggregation/spine/intermediate and core switches get loopbacks
    under ``10.12.0.0/16`` and ``10.13.0.0/16`` respectively.
    """
    tors = topology.nodes_of_kind(NodeKind.TOR, NodeKind.LEAF)
    middle = topology.nodes_of_kind(
        NodeKind.AGG, NodeKind.SPINE, NodeKind.INTERMEDIATE
    )
    cores = topology.nodes_of_kind(NodeKind.CORE)
    wide = (
        len(tors) > 254
        or len(middle) > 256
        or len(cores) > 256
    )
    if wide:
        dcn_prefix, covering_prefix = _wide_prefixes(len(tors))
        agg_base, core_base = _WIDE_AGG_BASE, _WIDE_CORE_BASE
        if max(len(middle), len(cores)) > _WIDE_LAYER_CAP:
            raise TopologyError(
                f"{max(len(middle), len(cores))} switches in one layer "
                f"exceed the wide layout's {_WIDE_LAYER_CAP} loopback blocks"
            )
    else:
        dcn_prefix, covering_prefix = DCN_PREFIX, COVERING_PREFIX
        agg_base, core_base = _AGG_BASE, _CORE_BASE
    plan = AddressPlan(dcn_prefix=dcn_prefix, covering_prefix=covering_prefix)

    for index, tor in enumerate(tors):
        subnet = Prefix(dcn_prefix.address(index * 256), 24)
        tor_ip = subnet.address(1)
        tor.ip = tor_ip
        tor.subnet = subnet
        plan.tor_subnets[tor.name] = subnet
        plan.switch_ips[tor.name] = tor_ip
        plan.by_ip[tor_ip] = tor.name
        hosts = topology.host_of_tor(tor.name)
        if len(hosts) > 252:
            raise TopologyError(f"too many hosts under {tor.name}")
        for offset, host in enumerate(hosts):
            host_ip = subnet.address(2 + offset)
            host.ip = host_ip
            plan.host_ips[host.name] = host_ip
            plan.by_ip[host_ip] = host.name

    for index, switch in enumerate(middle):
        ip = IPv4Address(agg_base.value + index * 256 + 1)
        switch.ip = ip
        plan.switch_ips[switch.name] = ip
        plan.by_ip[ip] = switch.name

    for index, core in enumerate(cores):
        ip = IPv4Address(core_base.value + index * 256 + 1)
        core.ip = ip
        plan.switch_ips[core.name] = ip
        plan.by_ip[ip] = core.name

    return plan


def _wide_prefixes(racks: int) -> tuple:
    """(DCN prefix, covering prefix) sized for ``racks`` /24 subnets."""
    bits = 8
    while (1 << bits) - 2 < racks:
        bits += 1
    length = 24 - bits
    if length < 10:
        raise TopologyError(
            f"{racks} racks exceed the wide DCN layout "
            f"({(1 << 14) - 2} rack subnets)"
        )
    return (
        Prefix(_WIDE_DCN_BASE, length),
        Prefix(_WIDE_DCN_BASE, length - 1),
    )
