"""VL2 topology (Greenberg et al., SIGCOMM 2009; paper §V / Fig 7(b)).

VL2 is a 3-layer Clos: ``d_i`` aggregation switches connect in full
bipartite to ``d_a/2`` intermediate (core) switches, and every ToR has two
uplinks to two *adjacent* aggregation switches.  The denser agg↔intermediate
mesh means a downward intermediate→agg failure *does* have immediate
ECMP backups — but the paper observes that the **agg→ToR** downward links
still have none (each ToR is reachable from a given agg by exactly one
link), so those failures still wait on control-plane convergence.  The
F²Tree adaptation rings the aggregation layer.

Node names: ``int-<m>``, ``agg-<j>``, ``tor-<t>``, ``host-<t>-<h>``.
All aggregation switches share pod 0 (one ring); intermediates share pod 0
of their own kind.
"""

from __future__ import annotations

from .graph import LinkKind, Node, NodeKind, Topology, TopologyError


def vl2(d_a: int, d_i: int, hosts_per_tor: int = 2) -> Topology:
    """Build a VL2 fabric from ``d_a``-port agg and ``d_i``-port
    intermediate switches.

    Following the VL2 paper: ``d_a/2`` intermediates, ``d_i`` aggregation
    switches, ``d_a * d_i / 4`` ToRs, each ToR dual-homed to aggregation
    switches ``2t mod d_i`` and ``(2t+1) mod d_i``.
    """
    if d_a < 4 or d_a % 2 or d_i < 2 or d_i % 2:
        raise TopologyError(f"invalid VL2 degrees d_a={d_a}, d_i={d_i}")
    n_int = d_a // 2
    n_agg = d_i
    n_tor = d_a * d_i // 4

    topo = Topology(
        f"vl2-{d_a}x{d_i}",
        params={
            "d_a": d_a,
            "d_i": d_i,
            "hosts_per_tor": hosts_per_tor,
            "family": "vl2",
        },
    )
    for m in range(n_int):
        topo.add_node(Node(f"int-{m}", NodeKind.INTERMEDIATE, pod=0, position=m))
    for j in range(n_agg):
        topo.add_node(Node(f"agg-{j}", NodeKind.AGG, pod=0, position=j))
    for t in range(n_tor):
        topo.add_node(Node(f"tor-{t}", NodeKind.TOR, pod=0, position=t))
        for h in range(hosts_per_tor):
            host = topo.add_node(Node(f"host-{t}-{h}", NodeKind.HOST, pod=0, position=h))
            topo.add_link(host.name, f"tor-{t}", LinkKind.HOST)

    for j in range(n_agg):
        for m in range(n_int):
            topo.add_link(f"agg-{j}", f"int-{m}", LinkKind.AGG_CORE)

    for t in range(n_tor):
        first = (2 * t) % n_agg
        second = (2 * t + 1) % n_agg
        topo.add_link(f"tor-{t}", f"agg-{first}", LinkKind.TOR_AGG)
        topo.add_link(f"tor-{t}", f"agg-{second}", LinkKind.TOR_AGG)

    return topo
