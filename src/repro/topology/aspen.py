"""Aspen tree (Walraed-Sullivan et al., CoNEXT 2013) — Table I baseline.

An Aspen tree ``<f, 0>`` adds fault tolerance ``f`` between the aggregation
and core layers by connecting each core to every pod with ``f + 1``
*parallel* links instead of one.  The price is capacity: only ``N/(f+1)``
pods fit, so an ``N``-port Aspen tree supports ``N^3 / (4(f+1))`` hosts and
consumes ``5N^2 / (4(f+1))`` switches (Table I's Aspen row) — versus
F²Tree's low-order-term cost.

Structure for ``N``-port switches and tolerance ``f``:

* ``N/(f+1)`` pods, each with ``N/2`` ToRs and ``N/2`` aggs (full bipartite);
* ``N^2/(4(f+1))`` cores in ``N/2`` groups of ``N/(2(f+1))``;
* aggregation switch ``i`` of each pod connects to every core of group ``i``
  with ``f + 1`` parallel links.

``f = 0`` degenerates to the standard fat tree (up to node naming).
"""

from __future__ import annotations

from .graph import LinkKind, Node, NodeKind, Topology, TopologyError


def aspen_tree(ports: int, fault_tolerance: int, hosts_per_tor: int | None = None) -> Topology:
    """Build an ``<f, 0>`` Aspen tree from ``ports``-port switches."""
    f = fault_tolerance
    if f < 0:
        raise TopologyError(f"fault tolerance must be >= 0, got {f}")
    half = ports // 2
    if ports < 4 or ports % 2:
        raise TopologyError(f"aspen tree needs an even port count >= 4, got {ports}")
    if ports % (f + 1):
        raise TopologyError(
            f"ports ({ports}) must be divisible by f+1 ({f + 1})"
        )
    if half % (f + 1):
        raise TopologyError(
            f"ports/2 ({half}) must be divisible by f+1 ({f + 1})"
        )
    if hosts_per_tor is None:
        hosts_per_tor = half

    pods = ports // (f + 1)
    cores_per_group = half // (f + 1)

    topo = Topology(
        f"aspen-{ports}-f{f}",
        params={
            "ports": ports,
            "fault_tolerance": f,
            "hosts_per_tor": hosts_per_tor,
            "family": "aspen",
        },
    )

    for pod in range(pods):
        for t in range(half):
            topo.add_node(Node(f"tor-{pod}-{t}", NodeKind.TOR, pod=pod, position=t))
        for a in range(half):
            topo.add_node(Node(f"agg-{pod}-{a}", NodeKind.AGG, pod=pod, position=a))
        for t in range(half):
            for h in range(hosts_per_tor):
                host = topo.add_node(
                    Node(f"host-{pod}-{t}-{h}", NodeKind.HOST, pod=pod, position=h)
                )
                topo.add_link(host.name, f"tor-{pod}-{t}", LinkKind.HOST)
        for t in range(half):
            for a in range(half):
                topo.add_link(f"tor-{pod}-{t}", f"agg-{pod}-{a}", LinkKind.TOR_AGG)

    for group in range(half):
        for c in range(cores_per_group):
            topo.add_node(
                Node(f"core-{group}-{c}", NodeKind.CORE, pod=group, position=c)
            )
            for pod in range(pods):
                for _ in range(f + 1):
                    topo.add_link(
                        f"agg-{pod}-{group}", f"core-{group}-{c}", LinkKind.AGG_CORE
                    )

    topo.validate_port_budget(ports, (NodeKind.TOR, NodeKind.AGG, NodeKind.CORE))
    return topo


def expected_aspen_counts(ports: int, fault_tolerance: int) -> dict:
    """Closed-form counts from Table I (Aspen row)."""
    f1 = fault_tolerance + 1
    return {
        "switches": 5 * ports * ports // (4 * f1),
        "hosts": ports ** 3 // (4 * f1),
        "pods": ports // f1,
    }
