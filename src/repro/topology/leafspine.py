"""Two-layer Leaf-Spine topology (as in CONGA [17], paper §V / Fig 7(a)).

``n_leaf`` leaf switches connect in full bipartite to ``n_spine`` spine
switches; hosts hang off leaves.  Like the fat tree, a *downward* spine→leaf
link has no immediate backup (the spine has exactly one link toward each
leaf), so a downward failure must wait for control-plane convergence — which
is what the F²Tree adaptation (spine ring + backup routes) removes.

All leaves form one pod (they attach to the same subtree set), and all
spines form one pod, matching the paper's pod definition; the F²Tree
rewiring rings the spine layer.
"""

from __future__ import annotations

from .graph import LinkKind, Node, NodeKind, Topology, TopologyError


def leaf_spine(n_leaf: int, n_spine: int, hosts_per_leaf: int = 2) -> Topology:
    """Build a Leaf-Spine fabric.

    Node names: ``leaf-<i>``, ``spine-<j>``, ``host-<leaf>-<h>``.
    """
    if n_leaf < 2 or n_spine < 2:
        raise TopologyError("leaf-spine needs at least 2 leaves and 2 spines")
    topo = Topology(
        f"leaf-spine-{n_leaf}x{n_spine}",
        params={
            "n_leaf": n_leaf,
            "n_spine": n_spine,
            "hosts_per_leaf": hosts_per_leaf,
            "family": "leaf-spine",
        },
    )
    for j in range(n_spine):
        topo.add_node(Node(f"spine-{j}", NodeKind.SPINE, pod=0, position=j))
    for i in range(n_leaf):
        topo.add_node(Node(f"leaf-{i}", NodeKind.LEAF, pod=0, position=i))
        for h in range(hosts_per_leaf):
            host = topo.add_node(
                Node(f"host-{i}-{h}", NodeKind.HOST, pod=0, position=h)
            )
            topo.add_link(host.name, f"leaf-{i}", LinkKind.HOST)
    for i in range(n_leaf):
        for j in range(n_spine):
            topo.add_link(f"leaf-{i}", f"spine-{j}", LinkKind.LEAF_SPINE)
    return topo
