"""Topology descriptions and builders (fat tree, Leaf-Spine, VL2, Aspen)."""

from .addressing import COVERING_PREFIX, DCN_PREFIX, AddressPlan, assign_addresses
from .aspen import aspen_tree, expected_aspen_counts
from .fattree import expected_fat_tree_counts, fat_tree
from .graph import Link, LinkKind, Node, NodeKind, Topology, TopologyError
from .leafspine import leaf_spine
from .vl2 import vl2

__all__ = [
    "COVERING_PREFIX",
    "DCN_PREFIX",
    "AddressPlan",
    "assign_addresses",
    "aspen_tree",
    "expected_aspen_counts",
    "expected_fat_tree_counts",
    "fat_tree",
    "Link",
    "LinkKind",
    "Node",
    "NodeKind",
    "Topology",
    "TopologyError",
    "leaf_spine",
    "vl2",
]
