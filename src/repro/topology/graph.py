"""Topology graph model.

A :class:`Topology` is a *static description* of a network: typed nodes
(hosts, ToR / aggregation / core switches, ...) and links between them.  It
knows nothing about simulation; the data plane (:mod:`repro.dataplane`)
instantiates runtime objects from it, and the F²Tree rewiring algorithm
(:mod:`repro.core.f2tree`) transforms one topology description into another.

Parallel links between the same pair of nodes are allowed (Aspen trees use
them), so links carry unique integer ids and lookups by endpoint pair return
lists.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..net.ip import IPv4Address, Prefix


class NodeKind(enum.Enum):
    """Role of a node in the DCN."""

    HOST = "host"
    TOR = "tor"
    AGG = "agg"
    CORE = "core"
    LEAF = "leaf"
    SPINE = "spine"
    INTERMEDIATE = "intermediate"

    @property
    def is_switch(self) -> bool:
        return self is not NodeKind.HOST


class LinkKind(enum.Enum):
    """Role of a link — used by failure scenarios and the rewiring logic."""

    HOST = "host"  # host <-> ToR/leaf
    TOR_AGG = "tor-agg"
    AGG_CORE = "agg-core"
    LEAF_SPINE = "leaf-spine"
    ACROSS = "across"  # F^2Tree intra-pod ring link


class TopologyError(Exception):
    """Raised for inconsistent topology constructions."""


@dataclass
class Node:
    """A node in the topology description.

    ``pod`` groups switches that attach to the same subtree (paper §II-B,
    following Aspen's definition); for core switches it is the *ring group*
    (the set of cores attached to same-index aggregation switches).
    ``position`` is the left-to-right index inside the pod; across-link rings
    are built in ``position`` order.
    """

    name: str
    kind: NodeKind
    pod: Optional[int] = None
    position: Optional[int] = None
    ip: Optional[IPv4Address] = None
    subnet: Optional[Prefix] = None  # ToR/leaf host subnet

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass(frozen=True)
class Link:
    """An undirected link between two nodes."""

    link_id: int
    a: str
    b: str
    kind: LinkKind

    @property
    def key(self) -> Tuple[str, str]:
        """Canonical (sorted) endpoint pair."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def other(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"{node} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"{self.a}<->{self.b}"


class Topology:
    """A named collection of nodes and links."""

    def __init__(self, name: str, params: Optional[dict] = None) -> None:
        self.name = name
        self.params: dict = dict(params or {})
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[int, Link] = {}
        self._next_link_id = 0
        self._adjacency: Dict[str, List[int]] = {}

    # ---------------------------------------------------------------- build

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        self._adjacency[node.name] = []
        return node

    def add_link(self, a: str, b: str, kind: LinkKind) -> Link:
        if a not in self.nodes or b not in self.nodes:
            missing = a if a not in self.nodes else b
            raise TopologyError(f"link endpoint {missing!r} is not a node")
        if a == b:
            raise TopologyError(f"self-link on {a!r}")
        link = Link(self._next_link_id, a, b, kind)
        self._next_link_id += 1
        self.links[link.link_id] = link
        self._adjacency[a].append(link.link_id)
        self._adjacency[b].append(link.link_id)
        return link

    def remove_link(self, link: Link) -> None:
        """Remove a link (used by the rewiring algorithm)."""
        if self.links.get(link.link_id) is not link:
            raise TopologyError(f"link {link} is not in topology {self.name!r}")
        del self.links[link.link_id]
        self._adjacency[link.a].remove(link.link_id)
        self._adjacency[link.b].remove(link.link_id)

    # ---------------------------------------------------------------- query

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"no node named {name!r}") from None

    def links_of(self, name: str) -> List[Link]:
        """All links incident to a node (its degree = port usage)."""
        return [self.links[i] for i in self._adjacency[name]]

    def degree(self, name: str) -> int:
        return len(self._adjacency[name])

    def neighbors(self, name: str) -> List[str]:
        """Neighbor names (with multiplicity for parallel links)."""
        return [self.links[i].other(name) for i in self._adjacency[name]]

    def links_between(self, a: str, b: str) -> List[Link]:
        """All (possibly parallel) links joining ``a`` and ``b``."""
        return [
            self.links[i]
            for i in self._adjacency.get(a, ())
            if self.links[i].other(a) == b
        ]

    def link_between(self, a: str, b: str) -> Link:
        """The single link joining ``a`` and ``b`` (error if 0 or >1)."""
        found = self.links_between(a, b)
        if len(found) != 1:
            raise TopologyError(
                f"expected exactly one link {a}<->{b}, found {len(found)}"
            )
        return found[0]

    def nodes_of_kind(self, *kinds: NodeKind) -> List[Node]:
        """Nodes of the given kind(s), sorted by (pod, position, name) so
        that "leftmost" / "rightmost" in the paper's figures is well defined."""
        wanted = set(kinds)
        selected = [n for n in self.nodes.values() if n.kind in wanted]
        selected.sort(key=lambda n: (
            n.pod if n.pod is not None else -1,
            n.position if n.position is not None else -1,
            n.name,
        ))
        return selected

    def hosts(self) -> List[Node]:
        return self.nodes_of_kind(NodeKind.HOST)

    def switches(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.kind.is_switch]

    def tors(self) -> List[Node]:
        return self.nodes_of_kind(NodeKind.TOR, NodeKind.LEAF)

    def pod_members(self, kind: NodeKind, pod: int) -> List[Node]:
        """Members of one pod of the given kind, in ring (position) order."""
        members = [
            n for n in self.nodes.values() if n.kind is kind and n.pod == pod
        ]
        members.sort(key=lambda n: (n.position if n.position is not None else 0, n.name))
        return members

    def pods_of_kind(self, kind: NodeKind) -> List[int]:
        """Sorted distinct pod indices among nodes of ``kind``."""
        return sorted({
            n.pod for n in self.nodes.values() if n.kind is kind and n.pod is not None
        })

    def host_of_tor(self, tor: str) -> List[Node]:
        """Hosts attached to a ToR/leaf, in position order."""
        attached = [
            self.nodes[peer]
            for peer in self.neighbors(tor)
            if self.nodes[peer].kind is NodeKind.HOST
        ]
        attached.sort(key=lambda n: (n.position if n.position is not None else 0, n.name))
        return attached

    def tor_of_host(self, host: str) -> Node:
        """The ToR/leaf a host hangs off (hosts are single-homed)."""
        switches = [
            self.nodes[peer]
            for peer in self.neighbors(host)
            if self.nodes[peer].kind.is_switch
        ]
        if len(switches) != 1:
            raise TopologyError(f"host {host!r} has {len(switches)} switch links")
        return switches[0]

    # ----------------------------------------------------------- validation

    def validate_port_budget(self, ports: int, kinds: Iterable[NodeKind]) -> None:
        """Check that no switch of the given kinds exceeds its port count."""
        wanted = set(kinds)
        for node in self.nodes.values():
            if node.kind in wanted and self.degree(node.name) > ports:
                raise TopologyError(
                    f"{node.name} uses {self.degree(node.name)} ports "
                    f"but switches have only {ports}"
                )

    def connected_component(self, start: str) -> set[str]:
        """Names reachable from ``start`` (links assumed healthy)."""
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for peer in self.neighbors(current):
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return seen

    def __str__(self) -> str:
        return (
            f"Topology({self.name!r}: {len(self.nodes)} nodes, "
            f"{len(self.links)} links)"
        )
