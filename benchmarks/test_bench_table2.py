"""Table II: the routing table of an aggregation switch in a 6-port
F²Tree (Fig 3's S8), with the two backup static routes last.

Checks the paper's exact structure: OSPF routes for every rack subnet, a
``/16`` backup via the right across neighbor and a ``/15`` via the left,
present in the FIB *before* any failure.
"""

from __future__ import annotations

from repro.core.backup_routes import render_routing_table, ring_neighbors_of
from repro.core.f2tree import f2tree
from repro.experiments.common import build_bundle
from repro.topology.addressing import COVERING_PREFIX, DCN_PREFIX
from repro.topology.graph import NodeKind


def test_bench_table2(benchmark, emit):
    def build():
        topo = f2tree(6)
        bundle = build_bundle(topo)
        bundle.converge()
        agg = topo.pod_members(NodeKind.AGG, 0)[0].name
        return topo, bundle, agg, render_routing_table(bundle.network, agg)

    topo, bundle, agg, text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "Table II: routing table of the Fig 3 aggregation switch "
        f"({agg}) in a 6-port F2Tree\n\n{text}"
    )

    switch = bundle.network.switch(agg)
    neighbors = ring_neighbors_of(topo, agg)
    right_route = switch.fib.exact(DCN_PREFIX)
    left_route = switch.fib.exact(COVERING_PREFIX)
    assert right_route is not None and right_route.source == "static"
    assert left_route is not None and left_route.source == "static"
    assert right_route.next_hops == (neighbors.right,)
    assert left_route.next_hops == (neighbors.left,)
    # routing-protocol routes exist for every remote rack subnet
    linkstate_routes = [
        e for e in switch.fib.entries() if e.source == "linkstate"
    ]
    racks = len(topo.nodes_of_kind(NodeKind.TOR))
    assert len(linkstate_routes) >= racks - 2  # minus the two local racks
