"""Table I: scalability and deployment comparison.

Regenerates the paper's table for N = 8 (the emulation scale) and N = 128
(the paper's §II-D example), and cross-checks the closed forms against
actually constructed topologies.
"""

from __future__ import annotations

from repro.core.f2tree import f2tree
from repro.core.scalability import (
    f2tree_row,
    fat_tree_row,
    node_reduction_vs_fat_tree,
    render_table_one,
)
from repro.topology.fattree import fat_tree


def test_bench_table1(benchmark, emit):
    def build():
        lines = [render_table_one(8), "", render_table_one(128)]
        lines.append(
            f"\nF2Tree node reduction vs fat tree @N=128: "
            f"{node_reduction_vs_fat_tree(128):.1%} (paper: 'about 2%')"
        )
        # cross-check formulas against real constructions at N=8
        fat = fat_tree(8)
        f2 = f2tree(8)
        lines.append(
            f"constructed fat-tree(8): {len(fat.switches())} switches, "
            f"{len(fat.hosts())} hosts (formula: {fat_tree_row(8).switches}, "
            f"{fat_tree_row(8).nodes})"
        )
        lines.append(
            f"constructed f2tree(8):   {len(f2.switches())} switches, "
            f"{len(f2.hosts())} hosts (formula: {f2tree_row(8).switches}, "
            f"{f2tree_row(8).nodes})"
        )
        return "\n".join(lines), fat, f2

    text, fat, f2 = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(text)

    assert len(fat.switches()) == fat_tree_row(8).switches
    assert len(f2.switches()) == f2tree_row(8).switches
    assert len(f2.hosts()) == f2tree_row(8).nodes
    # §II-D: the loss is a low-order term
    assert node_reduction_vs_fat_tree(128) < 0.05
