"""Scale benchmark: recovery time vs fabric size.

The paper argues F²Tree's advantage *grows* with scale: OSPF convergence
slows down in larger networks while F²Tree's recovery stays pinned at the
failure-detection delay, independent of fabric size.  This benchmark runs
the single-downward-failure experiment across fabric sizes and asserts
the invariance.
"""

from __future__ import annotations

from repro.core.f2tree import f2tree
from repro.experiments.recovery import run_recovery
from repro.sim.units import milliseconds, seconds, to_milliseconds


def test_bench_scale_invariance(benchmark, emit):
    sizes = (6, 8, 10, 12)

    def run():
        rows = []
        for ports in sizes:
            result = run_recovery(
                f2tree(ports, hosts_per_tor=1), "udp",
                flow_duration=seconds(1.5), drain=milliseconds(500),
            )
            topo_switches = len(f2tree(ports, hosts_per_tor=1).switches())
            rows.append(
                (ports, topo_switches, to_milliseconds(result.connectivity_loss))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Scale: F2Tree recovery vs fabric size (paper: the advantage grows"
        " with scale because only the control plane slows down)",
        f"{'ports':>6} {'switches':>9} {'f2tree loss (ms)':>17}",
    ]
    for ports, switches, loss in rows:
        lines.append(f"{ports:>6} {switches:>9} {loss:>17.1f}")
    emit("\n".join(lines))

    losses = [loss for _, _, loss in rows]
    # recovery is the detection delay at every scale
    assert all(55 < loss < 75 for loss in losses)
    assert max(losses) - min(losses) < 5
