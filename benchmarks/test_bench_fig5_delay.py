"""Fig 5: end-to-end delay during recovery (C1, C4, C5, C7 + fat-tree C1).

Asserts the paper's numbers: ~100 us baseline; 117 us during C1's fast
reroute (one extra 17 us hop), more for the longer C4/C5 relays; a loss
window of ~60 ms for fast-rerouted conditions vs ~270 ms for fat tree and
C7; and a return to baseline after the control plane converges.
"""

from __future__ import annotations

import math

from repro.experiments.conditions import render_figure_five, run_figure_five


def test_bench_fig5_delay(benchmark, emit):
    profiles = benchmark.pedantic(run_figure_five, rounds=1, iterations=1)
    emit(render_figure_five(profiles))

    by_key = {(p.kind, p.label): p for p in profiles}

    c1 = by_key[("f2tree", "C1")]
    assert abs(c1.before_us - 102) < 4  # paper: "100 us"
    assert abs(c1.during_reroute_us - (c1.before_us + 17)) < 4  # paper: 117 us
    assert abs(c1.after_us - c1.before_us) < 4
    assert 55 < c1.loss_window_ms < 75

    c4 = by_key[("f2tree", "C4")]
    c5 = by_key[("f2tree", "C5")]
    assert c4.during_reroute_us > c1.during_reroute_us  # longer relay
    assert c5.during_reroute_us > c4.during_reroute_us

    c7 = by_key[("f2tree", "C7")]
    fat = by_key[("fat-tree", "C1")]
    assert c7.loss_window_ms > 250  # degrades to fat tree
    assert fat.loss_window_ms > 250
    # fat tree never fast-reroutes: its mid-outage window has no samples
    assert math.isnan(fat.during_reroute_us)
