"""Fig 7: the F²Tree scheme applied to Leaf-Spine and VL2 (§V).

A downward rack-link failure on each fabric: the original topologies wait
for control-plane convergence (~270 ms) while the F² adaptations reroute
locally within the detection delay (~60 ms).
"""

from __future__ import annotations

from repro.experiments.other_topologies import (
    render_figure_seven,
    run_figure_seven,
)


def test_bench_fig7_other_topologies(benchmark, emit):
    rows = benchmark.pedantic(run_figure_seven, rounds=1, iterations=1)
    emit(render_figure_seven(rows))

    by_kind = {r.kind: r for r in rows}
    for plain, adapted in (("leaf-spine", "f2-leaf-spine"), ("vl2", "f2-vl2")):
        assert by_kind[plain].connectivity_loss_ms > 250
        assert not by_kind[plain].fast_rerouted
        assert 55 < by_kind[adapted].connectivity_loss_ms < 75
        assert by_kind[adapted].fast_rerouted
        reduction = 1 - (
            by_kind[adapted].connectivity_loss_ms
            / by_kind[plain].connectivity_loss_ms
        )
        assert reduction > 0.7
