"""Fig 2 + Table III: the §III testbed experiment.

4-port fat tree vs the rewired F²Tree prototype; UDP and TCP flows; one
downward ToR<->agg link torn down mid-flow.  Regenerates the Fig 2
throughput time series (ASCII) and the Table III numbers, and asserts the
paper's shape: ~78 % shorter connectivity loss, ~75 % fewer packets lost,
TCP collapse cut from two RTOs to one.
"""

from __future__ import annotations

from repro.experiments.testbed import render_table_three, run_table_three, run_testbed
from repro.metrics.timeseries import render_throughput
from repro.sim.units import milliseconds


def test_bench_fig2_table3(benchmark, emit):
    rows = benchmark.pedantic(run_table_three, rounds=1, iterations=1)

    udp_fat = run_testbed("fat-tree", "udp")
    udp_f2 = run_testbed("f2tree", "udp")
    pieces = [render_table_three(rows), ""]
    for label, result in (("fat tree", udp_fat), ("F2Tree", udp_f2)):
        pieces.append(f"Fig 2(a)-style UDP receiving throughput, {label}:")
        window = [
            b for b in result.throughput
            if result.failure_time - milliseconds(200)
            <= b.start
            < result.failure_time + milliseconds(500)
        ]
        pieces.append(render_throughput(window, result.failure_time))
        pieces.append("")
    emit("\n".join(pieces))

    fat, f2 = rows["fat-tree"], rows["f2tree"]
    reduction = 1 - f2.connectivity_loss_us / fat.connectivity_loss_us
    assert 0.7 < reduction < 0.85  # paper: 78 %
    assert f2.packets_lost < fat.packets_lost / 3  # paper: -75 %
    assert f2.collapse_us < fat.collapse_us / 2  # paper: 220 vs 700 ms
