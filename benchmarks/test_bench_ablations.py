"""Ablation benchmarks for the design choices DESIGN.md calls out.

* SPF-timer sweep: fat tree's recovery tracks OSPF's initial SPF delay;
  F²Tree's does not (§III discussion — why "just lower the timer" loses).
* Detection-delay sweep: F²Tree's recovery *is* the detection delay.
* Four across ports: the §II-C extension survives C7.
* Prefix-length tie-break: the §II-B rule is loop-free under condition 2;
  the equal-prefix variant ping-pongs some flows.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    count_c4_loops,
    run_detection_delay_sweep,
    run_four_across_c7,
    run_spf_timer_sweep,
)


def test_bench_ablation_spf_timer(benchmark, emit):
    points = benchmark.pedantic(run_spf_timer_sweep, rounds=1, iterations=1)
    lines = [
        "Ablation: SPF initial-delay sweep (single downward failure)",
        f"{'spf delay (ms)':>15} {'fat-tree loss (ms)':>19} {'f2tree loss (ms)':>17}",
    ]
    for p in points:
        lines.append(
            f"{p.spf_initial_delay_ms:>15.0f} {p.fat_tree_loss_ms:>19.1f} "
            f"{p.f2tree_loss_ms:>17.1f}"
        )
    emit("\n".join(lines))

    # fat tree's loss rises ~1:1 with the timer; F2Tree's stays flat
    spread_fat = points[-1].fat_tree_loss_ms - points[0].fat_tree_loss_ms
    spread_f2 = abs(points[-1].f2tree_loss_ms - points[0].f2tree_loss_ms)
    assert spread_fat > 0.8 * (
        points[-1].spf_initial_delay_ms - points[0].spf_initial_delay_ms
    )
    assert spread_f2 < 10
    # F2Tree beats fat tree even at the shortest (unsafe) timer setting
    assert all(p.f2tree_loss_ms < p.fat_tree_loss_ms for p in points)


def test_bench_ablation_detection_delay(benchmark, emit):
    points = benchmark.pedantic(
        run_detection_delay_sweep, rounds=1, iterations=1
    )
    lines = [
        "Ablation: failure-detection delay sweep (F2Tree, single failure)",
        f"{'detection (ms)':>15} {'f2tree loss (ms)':>17}",
    ]
    for p in points:
        lines.append(f"{p.detection_delay_ms:>15.0f} {p.f2tree_loss_ms:>17.1f}")
    emit("\n".join(lines))

    for p in points:
        assert p.f2tree_loss_ms == pytest.approx(p.detection_delay_ms, abs=3)


def test_bench_ablation_four_across(benchmark, emit):
    two, four = benchmark.pedantic(run_four_across_c7, rounds=1, iterations=1)
    emit(
        "Ablation: C7 (condition 4) with 2 vs 4 across ports\n"
        f"  2 across ports: {two.connectivity_loss_ms:7.1f} ms "
        f"(fast reroute: {two.fast_rerouted})\n"
        f"  4 across ports: {four.connectivity_loss_ms:7.1f} ms "
        f"(fast reroute: {four.fast_rerouted})"
    )
    assert not two.fast_rerouted
    assert four.fast_rerouted


def test_bench_ablation_tie_break(benchmark, emit):
    def census():
        return count_c4_loops("prefix-length"), count_c4_loops("none")

    clean, flawed = benchmark.pedantic(census, rounds=1, iterations=1)
    emit(
        "Ablation: backup-route prefix-length tie-break under C4\n"
        f"  prefix-length rule: {clean.flows_looping}/{clean.flows_traced} "
        f"flows loop\n"
        f"  equal-prefix ECMP:  {flawed.flows_looping}/{flawed.flows_traced} "
        f"flows loop"
    )
    assert clean.flows_looping == 0
    assert flawed.flows_looping > 0
