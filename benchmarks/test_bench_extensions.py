"""Extension benchmarks: the §V claims and the stated future work, measured.

* BGP-style routing: fat tree's recovery grows with the MRAI (path
  hunting burns advertisement rounds); F²Tree stays at detection.
* Centralized (SDN) routing: fat tree's recovery includes the
  report→compute→push loop and grows with controller latency; F²Tree
  bridges the window locally (the gap the paper predicts grows with
  scale).
* Unidirectional failures: F²Tree needs *local* detection — with
  BFD-style sessions it fast-reroutes, with interface-only detection the
  sender never notices and recovery degrades to the control plane.
"""

from __future__ import annotations

from repro.experiments.extensions import (
    render_routing_comparison,
    render_unidirectional,
    run_centralized_comparison,
    run_pathvector_comparison,
    run_unidirectional,
)


def test_bench_ext_pathvector(benchmark, emit):
    rows = benchmark.pedantic(run_pathvector_comparison, rounds=1, iterations=1)
    emit(
        render_routing_comparison(
            "Extension: BGP-style (path-vector, valley-free) routing, "
            "single downward failure",
            rows,
        )
    )
    # fat tree's loss grows ~1:1 with MRAI; F2Tree's stays at detection
    assert rows[-1].fat_tree_loss_ms > rows[0].fat_tree_loss_ms + 200
    assert all(55 < r.f2tree_loss_ms < 75 for r in rows)
    assert all(r.reduction > 0.3 for r in rows)


def test_bench_ext_centralized(benchmark, emit):
    rows = benchmark.pedantic(run_centralized_comparison, rounds=1, iterations=1)
    emit(
        render_routing_comparison(
            "Extension: centralized (SDN-style) routing, "
            "single downward failure",
            rows,
        )
    )
    # the benefit grows with the control loop's length (the paper's
    # "especially in a large scale network")
    assert rows[-1].fat_tree_loss_ms > rows[0].fat_tree_loss_ms + 30
    assert all(55 < r.f2tree_loss_ms < 75 for r in rows)
    reductions = [r.reduction for r in rows]
    assert reductions == sorted(reductions)


def test_bench_ext_unidirectional(benchmark, emit):
    def run_both():
        return [run_unidirectional("bfd"), run_unidirectional("interface")]

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(render_unidirectional(outcomes))
    bfd, interface = outcomes
    assert bfd.fast_rerouted
    assert not interface.fast_rerouted
    assert interface.connectivity_loss_ms > bfd.connectivity_loss_ms * 3
