"""Table IV + Fig 4: recovery under failure conditions C1-C7.

8-port fat tree vs F²Tree: UDP connectivity loss and packet loss, TCP
throughput collapse, for every Table IV scenario.  Asserts the paper's
shape: F²Tree holds at ~60 ms (detection) for C1-C6 and degrades to the
fat-tree ~270 ms only under C7.
"""

from __future__ import annotations

from repro.experiments.conditions import (
    plan_scenario,
    conditions_topology,
    render_figure_four,
    run_figure_four,
)
from repro.failures.scenarios import render_table_four, all_scenarios


def test_bench_fig4_conditions(benchmark, emit):
    rows = benchmark.pedantic(run_figure_four, rounds=1, iterations=1)

    topo = conditions_topology("f2tree")
    _scenario, path = plan_scenario(topo, "C1")
    table_four = render_table_four(all_scenarios(topo, path))
    emit(
        "Table IV (instantiated against the measured flow path):\n"
        + table_four
        + "\n\n"
        + render_figure_four(rows)
    )

    by_key = {(r.label, r.kind): r for r in rows}
    for label in ("C1", "C2", "C3", "C4", "C5", "C6"):
        f2 = by_key[(label, "f2tree")]
        assert 55 <= f2.connectivity_loss_ms <= 75, label  # detection-bound
    for label in ("C1", "C4", "C5"):
        fat = by_key[(label, "fat-tree")]
        f2 = by_key[(label, "f2tree")]
        assert fat.connectivity_loss_ms > 250, label  # control-plane-bound
        assert f2.packets_lost < fat.packets_lost / 3, label
        assert f2.collapse_ms < fat.collapse_ms / 2, label
    # C7: the condition-4 pattern defeats the 2-port design
    assert by_key[("C7", "f2tree")].connectivity_loss_ms > 250
