"""Microbenchmarks of the simulator substrate itself.

Not paper artifacts — these track the throughput of the hot paths that
every experiment's wall-clock time is made of (event loop, FIB lookups,
ECMP hashing, end-to-end packet forwarding), so performance regressions
in the substrate are visible.  These use real repetitions (unlike the
single-shot experiment benchmarks).
"""

from __future__ import annotations

from repro.core.f2tree import f2tree
from repro.experiments.common import build_bundle, leftmost_host, rightmost_host
from repro.net.ecmp import select_next_hop
from repro.net.fib import Fib, FibEntry
from repro.net.ip import IPv4Address, Prefix
from repro.sim.engine import Simulator
from repro.sim.units import microseconds, milliseconds
from repro.transport.udp import UdpSender, UdpSink


def test_bench_event_loop(benchmark):
    """Schedule+execute 10k no-op events."""

    def run() -> int:
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i, lambda: None)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 10_000


def test_bench_fib_lookup(benchmark):
    """LPM over a realistically-sized DCN FIB (64 racks + backups)."""
    fib = Fib()
    for i in range(64):
        fib.install(
            FibEntry(Prefix(IPv4Address(f"10.11.{i}.0"), 24), (f"nh{i}",))
        )
    fib.install(FibEntry(Prefix("10.11.0.0/16"), ("right",), source="static"))
    fib.install(FibEntry(Prefix("10.10.0.0/15"), ("left",), source="static"))
    probes = [IPv4Address(f"10.11.{i % 64}.{i % 200 + 2}") for i in range(512)]

    def run() -> int:
        hits = 0
        for address in probes:
            if fib.lookup(address) is not None:
                hits += 1
        return hits

    assert benchmark(run) == 512


def test_bench_ecmp_hash(benchmark):
    candidates = ["a", "b", "c", "d"]
    flows = [(i, i * 7, 17, 10_000 + i, 20_000 + i) for i in range(512)]

    def run() -> int:
        return sum(
            1 for flow in flows if select_next_hop(candidates, flow, 3) in candidates
        )

    assert benchmark(run) == 512


def test_bench_end_to_end_forwarding(benchmark):
    """Full-stack packets/second: a converged 8-port F²Tree carrying a
    10 ms CBR burst (100 packets through 6 hops each)."""
    bundle = build_bundle(f2tree(8, hosts_per_tor=1))
    bundle.converge()
    topo = bundle.topology
    src = bundle.network.host(leftmost_host(topo))
    dst = bundle.network.host(rightmost_host(topo))
    sink = UdpSink(bundle.sim, dst, 7000)

    def run() -> int:
        before = sink.received
        start = bundle.sim.now
        sender = UdpSender(
            bundle.sim, src, dst.ip, 7000, interval=microseconds(100)
        )
        sender.start(at=start, stop_at=start + milliseconds(10))
        bundle.sim.run(until=start + milliseconds(15))
        return sink.received - before

    delivered = benchmark(run)
    assert delivered == 100
