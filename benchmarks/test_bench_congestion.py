"""Critical-evaluation benchmark: backup-path congestion under fast reroute.

Not a paper figure — the paper treats across links purely as backup
capacity.  This measures the limitation: rerouted load beyond one link's
rate drops until the control plane re-spreads the flows.
"""

from __future__ import annotations

from repro.experiments.congestion import render_congestion, run_congestion_sweep


def test_bench_congestion(benchmark, emit):
    results = benchmark.pedantic(run_congestion_sweep, rounds=1, iterations=1)
    emit(render_congestion(results))

    light, full, over = results
    # under the across link's capacity: loss-free fast reroute
    assert light.reroute_delivery_ratio > 0.99
    assert light.across_queue_drops == 0
    assert full.reroute_delivery_ratio > 0.99
    # over capacity: the across link saturates and drops the excess...
    assert over.across_utilization > 0.98
    assert over.reroute_delivery_ratio < 0.85
    assert over.across_queue_drops > 0
    # ...until convergence re-spreads the flows over the healthy aggs
    assert over.post_convergence_delivery_ratio > 0.99
