"""Campaign-runner benchmark: deterministic sharding at speed.

Runs the SPF-timer sweep twice — serial (``workers=1``) and fanned out
over ``min(4, cpu_count)`` worker processes — and checks the two promises
of :mod:`repro.campaign`:

* **determinism**: the deterministic JSON reports are byte-identical;
* **speedup**: whenever the hardware has more than one core the parallel
  run must actually be faster — >= 1.5x on four or more cores, >= 1.15x
  on two or three (chunked dispatch + warm workers are what make small
  grids clear the bar instead of losing to pool overhead).

The measurement is recorded in ``BENCH_campaign.json`` at the repo root
so CI runs leave an auditable record of the hardware they measured on.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.campaign import run_campaign
from repro.campaign.sweeps import spf_timer_specs

BENCH_FILE = pathlib.Path(__file__).parent.parent / "BENCH_campaign.json"

#: required speedup (serial / parallel wall-clock) by available cores;
#: enforced whenever cpu_count > 1
SPEEDUP_REQUIRED_4PLUS = 1.5
SPEEDUP_REQUIRED_SMALL = 1.15


def required_speedup(cpu_count: int) -> float:
    """The speedup bar this hardware must clear (0.0 = unenforceable)."""
    if cpu_count >= 4:
        return SPEEDUP_REQUIRED_4PLUS
    if cpu_count > 1:
        return SPEEDUP_REQUIRED_SMALL
    return 0.0


def test_bench_campaign_parallel_speedup(benchmark, emit):
    cpu_count = os.cpu_count() or 1
    workers = min(4, cpu_count)
    specs = spf_timer_specs()

    t0 = time.monotonic()
    serial = run_campaign(specs, name="spf-timer", workers=1)
    serial_s = time.monotonic() - t0

    def parallel_run():
        t = time.monotonic()
        report = run_campaign(specs, name="spf-timer", workers=workers)
        return report, time.monotonic() - t

    parallel, parallel_s = benchmark.pedantic(
        parallel_run, rounds=1, iterations=1
    )

    serial_json = serial.to_json()
    identical = serial_json == parallel.to_json()
    speedup = serial_s / parallel_s if parallel_s else 0.0

    record = {
        "campaign": "spf-timer",
        "trials": len(specs),
        "cpu_count": cpu_count,
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "identical": identical,
        "speedup_bar": required_speedup(cpu_count),
        "speedup_bar_enforced": cpu_count > 1,
    }
    BENCH_FILE.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    emit(
        "Campaign runner: SPF-timer sweep, serial vs parallel\n"
        f"  trials:   {len(specs)} (f2tree + fat-tree x 4 SPF delays)\n"
        f"  cores:    {cpu_count} (using {workers} workers)\n"
        f"  serial:   {serial_s:7.1f} s\n"
        f"  parallel: {parallel_s:7.1f} s  ({speedup:.2f}x)\n"
        f"  reports byte-identical: {identical}"
    )

    assert serial.require_success() and parallel.require_success()
    assert identical, "parallel report diverged from serial"
    bar = required_speedup(cpu_count)
    if bar:
        assert speedup >= bar, (
            f"expected >= {bar}x speedup on {cpu_count} cores "
            f"with {workers} workers, got {speedup:.2f}x"
        )
