"""§II-C robustness census benchmark.

Enumerates *every* k-subset of the links relevant to a rack (its downward
links plus the pod's across ring) and classifies each — proving the
paper's claim that any <= 2 concurrent failures are fast-rerouted, and
quantifying how rare the condition-4 patterns are at k >= 3.
"""

from __future__ import annotations

from repro.analysis.census import exhaustive_condition_census, render_census
from repro.core.f2tree import f2tree
from repro.core.failure_analysis import FailureCondition
from repro.topology.graph import NodeKind


def test_bench_census(benchmark, emit):
    topo = f2tree(8)
    tor = topo.pod_members(NodeKind.TOR, 0)[-1].name

    def run():
        return [
            exhaustive_condition_census(topo, tor, k) for k in (1, 2, 3, 4)
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_census(results))

    one, two, three, four = results
    # the paper's claim, proved by enumeration
    assert one.degraded == 0 and one.survival_ratio == 1.0
    assert two.degraded == 0 and two.survival_ratio == 1.0
    # condition 4 first appears at k = 3, and stays the minority
    assert three.by_condition[FailureCondition.CONDITION_4] > 0
    assert three.survival_ratio > 0.75
    # deeper failures degrade more (sanity of the trend)
    assert four.survival_ratio < three.survival_ratio
