"""Baseline benchmark: Aspen tree <1,0> vs F²Tree (§VI / Table I critique).

Asserts the paper's related-work argument as measurements: Aspen's
parallel links protect only the agg<->core layer, rack-link failures
still pay the full control-plane price, and the capacity cost is half
the fabric (vs F²Tree's low-order term).
"""

from __future__ import annotations

from repro.core.scalability import aspen_row, f2tree_row, fat_tree_row
from repro.experiments.aspen import render_aspen_comparison, run_aspen_comparison


def test_bench_aspen_baseline(benchmark, emit):
    rows = benchmark.pedantic(run_aspen_comparison, rounds=1, iterations=1)
    capacity = (
        f"\nTable I @N=16: fat tree {fat_tree_row(16).nodes} hosts, "
        f"aspen<1,0> {aspen_row(16, 1).nodes}, f2tree {f2tree_row(16).nodes}"
    )
    emit(render_aspen_comparison(rows) + capacity)

    by_key = {(r.topology.split("-")[0], r.failure): r for r in rows}
    aspen_core = by_key[("aspen", "one parallel agg<->core link")]
    aspen_rack = by_key[("aspen", "rack (ToR<->agg) link")]
    f2_core = by_key[("f2tree", "agg<->core link")]
    f2_rack = by_key[("f2tree", "rack (ToR<->agg) link")]

    assert aspen_core.fast_recovery  # the fault-tolerant layer works...
    assert not aspen_rack.fast_recovery  # ...but only that layer
    assert f2_core.fast_recovery and f2_rack.fast_recovery
    # capacity: Aspen halves the fabric, F2Tree loses a low-order term
    assert aspen_row(16, 1).nodes == fat_tree_row(16).nodes // 2
    assert f2tree_row(16).nodes > 0.7 * fat_tree_row(16).nodes
