"""Hot-path throughput: the PR-level acceptance bars, recorded.

Runs :func:`repro.bench.run_hotpath_bench` (the same harness behind
``repro bench``) and enforces the optimization floor as **ratios**
against the in-harness naive reference implementations — the former
dataclass event loop, the uncached per-packet resolve, the per-query
Dijkstra, and the PR 5 memoized-full-SPF cache — so the bars mean the
same thing on any hardware:

* event loop dispatch:      >= 3x the naive loop,
* per-packet resolution:    >= 3x the naive walk,
* memoized SPF oracle:      >= 3x recomputing Dijkstra,
* incremental SPF churn:    >= 3x the memoized-full-SPF cache,
* same-timestamp batching:  >= 1.8x the naive loop (lower floor by
  construction: timestamp ties cost the optimized list entries extra
  element compares while the dataclass reference always paid full
  tuple construction — see ``bench_event_batch``'s docstring),
* vectorized fair share:    >= 5x the pure-python water-filling
  reference at bench scale (>= 10k flows; the engines agree bitwise,
  so this is pure speed),
* fluid backend at k=48:    >= 10x the packet backend's extrapolated
  cost (the ISSUE's scale-win acceptance bar; the extrapolation is
  deliberately conservative — see ``bench_flow_backend``'s docstring),
  and the k=48 fluid trial itself must finish inside its absolute
  wall-clock budget.

The absolute events/packets/tables per second land in
``BENCH_hotpath.json`` at the repo root — the committed copy is the
baseline the CI perf-smoke gate (``repro bench --quick --baseline``)
compares fresh ratios against.
"""

from __future__ import annotations

import json
import pathlib

from repro.bench import GATED_SECTIONS, run_hotpath_bench, to_json

BENCH_FILE = pathlib.Path(__file__).parent.parent / "BENCH_hotpath.json"

#: default acceptance floor on every optimized/naive ratio
RATIO_FLOOR = 3.0

#: per-section overrides of the default floor
RATIO_FLOORS = {
    "event_batch": 1.8,
    "fairshare_vector": 5.0,
    "flow_backend": 10.0,
}

#: a section below the floor is re-measured this many extra times (a
#: noisy-neighbor CI box can depress one sample; a real regression
#: cannot pass repeatedly)
RETRIES = 2


def _floor(section: str) -> float:
    return RATIO_FLOORS.get(section, RATIO_FLOOR)


def test_bench_hotpath(emit):
    result = run_hotpath_bench(quick=False, campaign=False)
    for _ in range(RETRIES):
        if all(
            result[section].get("ratio", 0.0) >= _floor(section)
            for section in GATED_SECTIONS
        ):
            break
        retry = run_hotpath_bench(quick=False, campaign=False)
        for section in GATED_SECTIONS:
            if retry[section].get("ratio", 0.0) > result[section].get("ratio", 0.0):
                result[section] = retry[section]

    BENCH_FILE.write_text(to_json(result))

    ev, eb, fw, spf, inc, fair, flow = (
        result["event_loop"], result["event_batch"], result["forwarding"],
        result["spf"], result["spf_incremental"],
        result["fairshare_vector"], result["flow_backend"],
    )
    assert fair.get("numpy"), (
        "fairshare_vector: numpy unavailable — the recorded baseline "
        "must include the vector engine's ratio"
    )
    emit(
        "Hot-path throughput (optimized vs in-harness naive reference):\n"
        f"  event loop: {ev['optimized_eps']:>10,} events/s  "
        f"naive {ev['naive_eps']:>9,}/s  -> {ev['ratio']:.1f}x\n"
        f"  batching:   {eb['optimized_eps']:>10,} events/s  "
        f"naive {eb['naive_eps']:>9,}/s  -> {eb['ratio']:.1f}x "
        f"({eb['batch_ratio']:.2f}x over unbatched)\n"
        f"  forwarding: {fw['optimized_pps']:>10,} packets/s "
        f"naive {fw['naive_pps']:>9,}/s  -> {fw['ratio']:.1f}x "
        f"(chain cache {fw['cache']['hit_rate']:.1%} hits)\n"
        f"  SPF oracle: {spf['optimized_sps']:>10,} tables/s  "
        f"naive {spf['naive_sps']:>9,}/s  -> {spf['ratio']:.1f}x\n"
        f"  SPF churn:  {inc['optimized_sps']:>10,} tables/s  "
        f"full-SPF {inc['naive_sps']:>7,}/s  -> {inc['ratio']:.1f}x "
        f"({inc['incremental_updates']:,} incremental, "
        f"{inc['full_computes']:,} full)\n"
        f"  fair share: {fair['optimized_fps']:>10,} flows/s  "
        f"python {fair['naive_fps']:>8,}/s  -> {fair['ratio']:.1f}x "
        f"at {fair['flows']:,} flows\n"
        f"  fluid k={flow['target_ports']}: {flow['flow_s']:.1f}s measured vs "
        f"{flow['projected_packet_s']:.0f}s projected packet "
        f"-> {flow['ratio']:.1f}x "
        f"(events^{flow['fit_exponent']:.2f} fit, "
        f"budget {flow['budget_s']:.0f}s)\n"
        f"  recorded in {BENCH_FILE.name}"
    )

    for section in GATED_SECTIONS:
        assert result[section].get("ratio", 0.0) >= _floor(section), (
            f"{section}: {result[section].get('ratio', 0.0):.2f}x is below "
            f"the {_floor(section)}x acceptance floor\n"
            + json.dumps(result[section], indent=2)
        )
    assert flow["within_budget"], (
        f"flow_backend: the k={flow['target_ports']} fluid trial took "
        f"{flow['flow_s']}s, over the {flow['budget_s']}s budget"
    )
