"""Benchmark-suite plumbing.

Every benchmark regenerates one table or figure of the paper, prints the
rendered artifact, saves it under ``benchmarks/results/`` and asserts the
paper's qualitative shape (who wins, by roughly what factor).  Timing is
measured with ``benchmark.pedantic(rounds=1)`` — these are end-to-end
simulations, not microbenchmarks, so repetition buys nothing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def emit(request):
    """Print an artifact and persist it under benchmarks/results/."""

    def _emit(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _emit
