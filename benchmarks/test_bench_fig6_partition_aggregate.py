"""Fig 6: partition-aggregate workload under random failures.

8-port fat tree vs F²Tree; fan-out-8 requests with 2 KB responses plus
log-normal background flows; random log-normal link failures at average
concurrency 1 and 5.  Asserts the paper's headline: F²Tree cuts the
250 ms-deadline miss ratio by >90 % (paper: 100 % at 1 CF, 96.25 % at 5).

Default is a 1/10-scale run (60 s, 300 requests — same arrival rates);
set ``REPRO_FULL_SCALE=1`` for the paper's 600 s / 3000-request sizing.
Note the scaled run keeps the paper's failure *count* (~40 / ~100), so its
failure density — and hence both systems' absolute miss ratios — is ~10x
the paper's; the reduction ratio is the reproduced quantity.
"""

from __future__ import annotations

from repro.experiments.partition_aggregate import (
    render_figure_six,
    run_figure_six,
)


def test_bench_fig6_partition_aggregate(benchmark, emit):
    def run_both():
        return [run_figure_six(1), run_figure_six(5)]

    data = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(render_figure_six(data))

    one_cf, five_cf = data
    # fat tree misses deadlines under failures; F2Tree barely does
    assert one_cf.fat_tree.deadline_miss_ratio > 0
    assert one_cf.miss_reduction > 0.9  # paper: 100 %
    assert five_cf.miss_reduction > 0.9  # paper: 96.25 %
    # more concurrent failures hurt fat tree more
    assert (
        five_cf.fat_tree.deadline_miss_ratio
        >= one_cf.fat_tree.deadline_miss_ratio
    )
    # the failure processes were calibrated as intended
    assert 0.5 <= one_cf.fat_tree.average_concurrency <= 2.5
    assert 2.5 <= five_cf.fat_tree.average_concurrency <= 9.0
